"""Derive the Count-Sketch-Reset freshness cutoff f(k) experimentally.

Section IV-A of the paper chooses the cutoff "based on data summarised in
Figure 6": simulate a converged network, inspect the distribution of
freshness counters per bit index, bound each distribution with high
probability, and fit a line through the bounds.  This example repeats that
derivation at three network sizes and prints:

* the per-bit counter CDFs (the content of Figure 6);
* the fitted linear bound next to the paper's f(k) = 7 + k/4;
* what happens to the fitted bound if the gossip uses push only (no pull
  response) — slower spreading needs a more generous cutoff.

Run it with::

    python examples/counter_distribution.py
"""

from repro.analysis import fit_linear_cutoff, render_table
from repro.experiments import render_fig6, run_fig6
from repro.simulator.vectorized import VectorizedCountSketchReset

SIZES = (500, 2000, 8000)


def fit_without_pull(size: int) -> tuple:
    """Fit the counter bound for push-only gossip at the given size."""
    kernel = VectorizedCountSketchReset(size, bins=32, bits=20, seed=1, pull=False)
    kernel.step_many(30)
    counters_by_bit = {
        bit: kernel.counter_values_for_bit(bit)
        for bit in range(20)
        if kernel.counter_values_for_bit(bit).size >= 10
    }
    fit = fit_linear_cutoff(counters_by_bit)
    return fit.intercept, fit.slope


def main() -> None:
    result = run_fig6(sizes=SIZES, bins=32, bits=20, convergence_rounds=30, seed=1)
    print(render_fig6(result))

    rows = []
    for size in SIZES:
        push_only = fit_without_pull(size)
        push_pull = result.fits[size]
        rows.append(
            [
                f"{size} hosts",
                round(push_pull.intercept, 2),
                round(push_pull.slope, 3),
                round(push_only[0], 2),
                round(push_only[1], 3),
            ]
        )
    print(
        "\nEffect of the pull response on the required cutoff "
        "(push/pull spreads counters faster, so the bound is tighter):\n"
    )
    print(
        render_table(
            ["network", "push/pull intercept", "slope", "push-only intercept", "slope"], rows
        )
    )
    print(
        "\nThe paper's uniform-gossip cutoff f(k) = 7 + k/4 sits just above the "
        "fitted push/pull bounds at every size — the bound is independent of the "
        "network size, which is exactly what lets Count-Sketch-Reset run without "
        "knowing how many hosts exist."
    )


if __name__ == "__main__":
    main()
