"""Vehicular road-hazard monitoring (the paper's introduction scenario).

GPS units monitor car-mounted sensors for hazards (slippery road, heavy
traffic) and share what they see with nearby vehicles.  Each car maintains
a running estimate of the *network-wide hazard sum* using Invert-Average:
Count-Sketch-Reset estimates how many cars are participating, while
Push-Sum-Revert estimates the average hazard reading, and their product
estimates the total amount of hazard being observed.

The twist that motivates dynamic aggregation: cars that drive out of the
area take their readings with them, silently.  Half-way through this
simulation, the cars reporting the highest hazard levels leave (they were
all stuck in the same flooded underpass and got rerouted) — a correlated
departure that a static protocol never notices.

Run it with::

    python examples/road_hazard.py
"""

import numpy as np

from repro import InvertAverage, Simulation, UniformEnvironment
from repro.analysis import render_series_table
from repro.baselines import SketchCount
from repro.failures import CorrelatedFailure, FailureEvent
from repro.workloads import zipf_values

N_CARS = 400
ROUNDS = 60
DEPARTURE_ROUND = 25


def hazard_readings() -> list:
    """Per-car hazard scores: mostly small, a heavy tail of severe reports."""
    return [min(50.0, value) for value in zipf_values(N_CARS, exponent=1.6, seed=3)]


def run(protocol, values, events):
    simulation = Simulation(
        protocol,
        UniformEnvironment(N_CARS),
        values,
        seed=3,
        mode="exchange",
        events=list(events),
    )
    return simulation.run(ROUNDS)


def main() -> None:
    values = hazard_readings()
    events = [
        FailureEvent(round=DEPARTURE_ROUND, model=CorrelatedFailure(0.3, highest=True))
    ]

    dynamic = run(InvertAverage(0.05, bins=32, bits=18), values, events)
    static = run(SketchCount(bins=32, bits=24, value_as_identifiers=True), values, events)

    print(
        f"{N_CARS} cars sharing hazard readings over vehicle-to-vehicle gossip.\n"
        f"At round {DEPARTURE_ROUND} the 30% of cars with the worst readings leave the area.\n"
        f"True hazard sum before: {static.rounds[DEPARTURE_ROUND - 1].truth:.0f}; "
        f"after: {static.rounds[-1].truth:.0f}.\n"
    )
    print(
        render_series_table(
            "round",
            dynamic.round_indices(),
            {
                "true hazard sum": dynamic.truths(),
                "invert-average estimate": dynamic.mean_estimates(),
                "static sketch-sum estimate": static.mean_estimates(),
            },
            every=5,
        )
    )
    dynamic_error = abs(dynamic.mean_estimate() - dynamic.final_truth())
    static_error = abs(static.mean_estimate() - static.final_truth())
    print(
        "\nAfter the correlated departure the static multiple-insertion sketch keeps "
        f"reporting the old total (final absolute error {static_error:.0f}), while "
        f"Invert-Average tracks the surviving cars (final absolute error {dynamic_error:.0f}).\n"
        "Invert-Average also sends far less data per round: two floats for the averaging "
        "half, with one counting sketch amortised across every statistic being tracked."
    )


if __name__ == "__main__":
    main()
