"""Vehicular road-hazard monitoring (the paper's introduction scenario).

GPS units monitor car-mounted sensors for hazards (slippery road, heavy
traffic) and share what they see with nearby vehicles.  Each car maintains
a running estimate of the *network-wide hazard sum* using Invert-Average:
Count-Sketch-Reset estimates how many cars are participating, while
Push-Sum-Revert estimates the average hazard reading, and their product
estimates the total amount of hazard being observed.

The twist that motivates dynamic aggregation: cars that drive out of the
area take their readings with them, silently.  Half-way through this
simulation, the cars reporting the highest hazard levels leave (they were
all stuck in the same flooded underpass and got rerouted) — a correlated
departure that a static protocol never notices.

Both runs are declared as :class:`repro.ScenarioSpec` objects — the same
workload (a clamped Zipf tail of hazard severities), the same environment
and the same departure event, differing only in the protocol under test —
and executed together by :class:`repro.SweepRunner`.

Run it with::

    python examples/road_hazard.py
"""

from repro import ScenarioSpec, SweepRunner
from repro.analysis import render_series_table

N_CARS = 400
ROUNDS = 60
DEPARTURE_ROUND = 25

#: Everything about the run except the protocol under test.
BASE = ScenarioSpec(
    protocol="invert-average",
    protocol_params={"reversion": 0.05, "bins": 32, "bits": 18},
    environment="uniform",
    # Per-car hazard scores: mostly small, a heavy tail of severe reports.
    workload="zipf",
    workload_params={"exponent": 1.6, "seed": 3, "clamp": 50.0},
    n_hosts=N_CARS,
    rounds=ROUNDS,
    mode="exchange",
    seed=3,
    events=(
        {"event": "failure", "round": DEPARTURE_ROUND, "model": "correlated",
         "fraction": 0.3, "highest": True},
    ),
)

SPECS = [
    BASE.replace(name="invert-average"),
    BASE.replace(
        name="static-sketch-sum",
        protocol="sketch-count",
        protocol_params={"bins": 32, "bits": 24, "value_as_identifiers": True},
    ),
]


def main() -> None:
    dynamic, static = SweepRunner().run(SPECS).results

    print(
        f"{N_CARS} cars sharing hazard readings over vehicle-to-vehicle gossip.\n"
        f"At round {DEPARTURE_ROUND} the 30% of cars with the worst readings leave the area.\n"
        f"True hazard sum before: {static.rounds[DEPARTURE_ROUND - 1].truth:.0f}; "
        f"after: {static.rounds[-1].truth:.0f}.\n"
    )
    print(
        render_series_table(
            "round",
            dynamic.round_indices(),
            {
                "true hazard sum": dynamic.truths(),
                "invert-average estimate": dynamic.mean_estimates(),
                "static sketch-sum estimate": static.mean_estimates(),
            },
            every=5,
        )
    )
    dynamic_error = abs(dynamic.mean_estimate() - dynamic.final_truth())
    static_error = abs(static.mean_estimate() - static.final_truth())
    print(
        "\nAfter the correlated departure the static multiple-insertion sketch keeps "
        f"reporting the old total (final absolute error {static_error:.0f}), while "
        f"Invert-Average tracks the surviving cars (final absolute error {dynamic_error:.0f}).\n"
        "Invert-Average also sends far less data per round: two floats for the averaging "
        "half, with one counting sketch amortised across every statistic being tracked."
    )


if __name__ == "__main__":
    main()
