"""Quickstart: dynamic averaging that survives a correlated mass departure.

This script walks through the library's core workflow:

1. build a population of hosts with local values;
2. run the static baseline (Push-Sum) and the paper's Push-Sum-Revert over
   a uniform gossip environment;
3. silently remove the highest-valued half of the hosts mid-run (the
   worst case for a static protocol: the true average changes but no
   message ever says so);
4. compare how the two protocols track the new true average.

Run it with::

    python examples/quickstart.py
"""

from repro import PushSumRevert, Simulation, UniformEnvironment
from repro.analysis import render_series_table
from repro.failures import CorrelatedFailure, FailureEvent
from repro.workloads import uniform_values

N_HOSTS = 1000
ROUNDS = 50
FAILURE_ROUND = 20


def run_variant(reversion: float) -> list:
    """Run Push-Sum-Revert with the given reversion constant; λ=0 is Push-Sum."""
    events = [FailureEvent(round=FAILURE_ROUND, model=CorrelatedFailure(0.5, highest=True))]
    simulation = Simulation(
        protocol=PushSumRevert(reversion),
        environment=UniformEnvironment(N_HOSTS),
        values=uniform_values(N_HOSTS, seed=42),
        seed=42,
        mode="exchange",
        events=events,
    )
    return simulation.run(ROUNDS)


def main() -> None:
    static = run_variant(0.0)
    dynamic = run_variant(0.1)

    print(
        f"{N_HOSTS} hosts with values uniform on [0, 100); the highest-valued half "
        f"silently departs after round {FAILURE_ROUND}.\n"
        f"True average before the departure: {static.rounds[FAILURE_ROUND - 1].truth:.1f}; "
        f"after: {static.rounds[-1].truth:.1f}.\n"
    )
    table = render_series_table(
        "round",
        static.round_indices(),
        {
            "true average": static.truths(),
            "static push-sum error": static.errors(),
            "push-sum-revert (lambda=0.1) error": dynamic.errors(),
        },
        every=5,
    )
    print(table)
    print(
        "\nThe static protocol keeps reporting the pre-departure average forever; "
        f"its final error is {static.final_error():.1f}. Push-Sum-Revert re-converges "
        f"to the survivors' average with a final error of {dynamic.final_error():.1f}."
    )


if __name__ == "__main__":
    main()
