"""Quickstart: dynamic averaging that survives a correlated mass departure.

This script walks through the library's core workflow both ways:

1. declare the run as a :class:`repro.ScenarioSpec` — every component
   (protocol, environment, workload, failure) named by its registry key —
   and execute it with :func:`repro.run_scenario`.  The spec's
   ``backend="auto"`` resolves to the vectorised NumPy kernels here
   (uniform gossip + Push-Sum-Revert has one); pin ``backend="agent"`` or
   ``backend="vectorized"`` to choose explicitly;
2. build the same :class:`repro.Simulation` imperatively and check it
   matches the spec run on the ``"agent"`` backend exactly;
3. sweep the reversion constant λ over the same scenario to compare how
   the static baseline (λ=0) and Push-Sum-Revert track the new true
   average after the highest-valued half of the hosts silently departs;
4. re-run the same gossip over a *lossy* network (``repro.network``):
   one in five messages vanishes, yet reversion keeps re-minting the
   lost mass and the estimate stays useful;
5. re-run the λ sweep against a :class:`repro.ResultStore` — the second
   pass executes zero cells and returns a bit-identical table straight
   from the content-addressed cache (``repro.store``, DESIGN.md §9);
6. restrict gossip to a *random-geometric* wireless topology — the spec
   still resolves to the vectorised backend under ``backend="auto"``
   (the kernels sample peers through a sparse CSR adjacency, DESIGN.md
   §10), so graph-restricted sweeps run at kernel speed too;
7. drop the lockstep-round assumption entirely: ``engine="events"``
   runs the same protocol on the continuous-time event engine
   (``repro.events``, DESIGN.md §11), where every host gossips on its
   own clock — here half the population runs 8× slower than the rest,
   over a latency network, in exchange mode (a combination the round
   engine rejects) — and the result gains a simulated-time axis;
8. let the population itself move: churn (departures plus arrivals every
   round) grows and masks the kernel arrays in place, and a synthetic
   contact trace replays as a time-varying CSR with group-relative error
   (DESIGN.md §12) — both still at kernel speed under ``backend="auto"``;
9. watch a run from the inside: attach a :class:`repro.TraceRecorder`
   and a :class:`repro.MetricsRegistry` (``repro.obs``, DESIGN.md §13)
   to the churn scenario, prove the instrumented run is bit-identical to
   the bare one, and render the recorded phase-time/per-round breakdown
   — the CLI equivalents are ``run --trace out.jsonl --metrics`` and
   ``repro-aggregate obs report out.jsonl``;
10. scale the asynchronous scenario to n = 10⁴ on the *bucketed
    vectorised calendar* (``repro.events.vectorized``, DESIGN.md §14):
    ``backend="auto"`` resolves ``engine="events"`` to the vectorised
    backend for Push-Sum-Revert over uniform gossip, draining the event
    calendar per time bucket through whole-subset kernel calls — the
    population the agent calendar crawls through runs in seconds.

The spec also round-trips through JSON, which is exactly what
``repro-aggregate run --config`` and ``repro-aggregate sweep`` consume.
Time the two backends against each other with ``repro-aggregate bench``
(the committed trajectory lives in ``BENCH_core.json``).

Run it with::

    python examples/quickstart.py
"""

import tempfile
import time

from repro import (
    CorrelatedFailure,
    FailureEvent,
    MetricsRegistry,
    MultiProbe,
    PushSumRevert,
    ResultStore,
    ScenarioSpec,
    Simulation,
    Sweep,
    SweepRunner,
    TraceRecorder,
    UniformEnvironment,
    render_report,
    run_scenario,
)
from repro.analysis import render_series_table
from repro.workloads import uniform_values

N_HOSTS = 1000
ROUNDS = 50
FAILURE_ROUND = 20

#: The whole experiment as one declarative, JSON-serialisable object.
SPEC = ScenarioSpec(
    name="quickstart-correlated-failure",
    protocol="push-sum-revert",
    protocol_params={"reversion": 0.1},
    environment="uniform",
    workload="uniform",
    n_hosts=N_HOSTS,
    rounds=ROUNDS,
    mode="exchange",
    seed=42,
    events=(
        {"event": "failure", "round": FAILURE_ROUND, "model": "correlated",
         "fraction": 0.5, "highest": True},
    ),
)


def run_imperatively():
    """The same run, hand-wired through the constructor path."""
    simulation = Simulation(
        protocol=PushSumRevert(0.1),
        environment=UniformEnvironment(N_HOSTS),
        values=uniform_values(N_HOSTS, seed=42),
        seed=42,
        mode="exchange",
        events=[FailureEvent(round=FAILURE_ROUND, model=CorrelatedFailure(0.5, highest=True))],
    )
    return simulation.run(ROUNDS)


def main() -> None:
    # Path 1: declarative.  The spec survives a JSON round-trip unchanged
    # and runs on the vectorised backend ("auto" resolves to it here).
    assert SPEC == ScenarioSpec.from_json(SPEC.to_json())
    assert SPEC.resolved_backend() == "vectorized"
    dynamic = run_scenario(SPEC)

    # Path 2: imperative.  Same components, same seed — identical to the
    # spec executed on the per-host "agent" backend.  (The vectorised run
    # above agrees statistically, not bit-for-bit: see DESIGN.md §7.)
    by_hand = run_imperatively()
    agent = run_scenario(SPEC.replace(backend="agent"))
    assert agent.errors() == by_hand.errors(), "spec and constructor paths must agree"
    assert abs(dynamic.final_error() - agent.final_error()) < 2.0

    # Path 3: sweep λ over the same scenario (λ=0 is static Push-Sum).
    sweep = Sweep.over(SPEC, **{"protocol_params.reversion": [0.0, 0.1]})
    static, _dynamic_again = SweepRunner().run(sweep).results

    print(
        f"{N_HOSTS} hosts with values uniform on [0, 100); the highest-valued half "
        f"silently departs after round {FAILURE_ROUND}.\n"
        f"True average before the departure: {static.rounds[FAILURE_ROUND - 1].truth:.1f}; "
        f"after: {static.rounds[-1].truth:.1f}.\n"
    )
    table = render_series_table(
        "round",
        static.round_indices(),
        {
            "true average": static.truths(),
            "static push-sum error": static.errors(),
            "push-sum-revert (lambda=0.1) error": dynamic.errors(),
        },
        every=5,
    )
    print(table)
    print(
        "\nThe static protocol keeps reporting the pre-departure average forever; "
        f"its final error is {static.final_error():.1f}. Push-Sum-Revert re-converges "
        f"to the survivors' average with a final error of {dynamic.final_error():.1f}."
    )

    # Path 4: the same gossip on a lossy radio.  A network model named in
    # the spec (repro.network) drops 20% of all pushed messages; the lost
    # mass leaves the system for good, and only the reversion step's
    # continual re-injection keeps the estimate anchored.  This is the
    # dynamic condition the paper's protocols were designed for but its
    # evaluation (perfect delivery) never exercised.
    lossy = run_scenario(SPEC.replace(
        mode="push",  # push gossip: a lost message truly destroys its mass
        protocol_params={"reversion": 0.05},  # push mixes slower than push/pull
        network="bernoulli-loss",
        network_params={"p": 0.2},
        events=(),
    ))
    print(
        f"\nOn a 20%-lossy network (no failures), Push-Sum-Revert still tracks the "
        f"average: final error {lossy.final_error():.1f} "
        f"(vs {dynamic.final_error():.1f} after the correlated departure above)."
    )

    # Path 5: never compute the same scenario twice.  A ResultStore
    # (repro.store) addresses results by the spec's canonical hash
    # (spec.key()), so re-running an identical sweep serves every cell
    # from the cache, bit-identically — the CLI equivalent is
    # `repro-aggregate sweep --config … --cache-dir .repro-cache`.
    with tempfile.TemporaryDirectory() as cache_dir:
        store = ResultStore(cache_dir)
        start = time.perf_counter()
        cold = SweepRunner(store=store).run(sweep)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = SweepRunner(store=store).run(sweep)
        warm_seconds = time.perf_counter() - start
        assert warm.cache_hits() == len(warm) and warm.executed() == 0
        assert warm.rows == cold.rows and warm.render() == cold.render()
        print(
            f"\nResult store: cold sweep ran {cold.executed()} cells in "
            f"{cold_seconds * 1000:.0f} ms; warm re-run served {warm.cache_hits()}/"
            f"{len(warm)} from cache in {warm_seconds * 1000:.0f} ms, bit-identical."
        )

    # Path 6: topology-restricted gossip at kernel speed.  Hosts only reach
    # peers within wireless range (a random-geometric graph, seeded by
    # graph_seed, identical on every backend); "auto" still picks the
    # vectorised backend because the kernels sample peers through a sparse
    # CSR adjacency instead of the whole population.  The same works for
    # "ring", "grid", "erdos-renyi" and "spatial-grid" (the paper's
    # Section IV-A 1/d² spatial gossip) — see examples/specs/
    # geometric_sweep.json for the CLI-ready sweep.
    geometric = SPEC.replace(
        name="quickstart-wireless-range",
        environment="random-geometric",
        environment_params={"radius": 0.08, "graph_seed": 7},
    )
    assert geometric.resolved_backend() == "vectorized"
    result = run_scenario(geometric)
    print(
        f"\nRandom-geometric topology (radius 0.08, n={N_HOSTS}) on the "
        f"{result.metadata['backend']} backend: final error "
        f"{result.final_error():.2f} vs truth {result.final_truth():.2f}."
    )

    # Path 7: asynchronous gossip on the event engine (repro.events).
    # Hosts tick on their own clocks — half at 1 Hz, half at 0.125 Hz —
    # messages take 0–2 simulated seconds, and push/pull exchanges are
    # realised as request/reply event pairs, which is why latency ×
    # exchange is legal here and rejected under engine="rounds".  Records
    # now carry `time` (seconds), sampled once per second; mass
    # conservation is checked at every sample.
    asynchronous = SPEC.replace(
        name="quickstart-asynchronous-gossip",
        engine="events",
        engine_params={
            "synchronized": False,
            "rates": {"distribution": "heterogeneous",
                      "fast": 1.0, "slow": 0.125, "fast_fraction": 0.5},
        },
        network="latency",
        network_params={"distribution": "uniform", "low": 0, "high": 2},
        events=(),
    )
    # This combination has a vectorised calendar too (path 10); pin the
    # agent realisation here to show the reference event loop first.
    assert asynchronous.resolved_backend() == "vectorized"
    clocked = run_scenario(asynchronous.replace(backend="agent"))
    print(
        f"\nEvent engine, heterogeneous clocks (half the hosts 8x slower) over a "
        f"0-2 s latency network: error {clocked.final_error():.2f} at "
        f"t={clocked.times()[-1]:.0f} s (vs {dynamic.final_error():.2f} for "
        f"lockstep rounds).  Example spec: examples/specs/heterogeneous_rates.json."
    )

    # Path 8: dynamic membership at kernel speed (DESIGN.md §12).  Churn —
    # a failure draw plus fresh arrivals every round — now masks and grows
    # the kernel arrays directly, and a contact trace compiles into a
    # time-varying CSR whose union-window components define group-relative
    # truth.  Both resolve to the vectorised backend under "auto".
    churning = SPEC.replace(
        name="quickstart-churn",
        events=(
            {"event": "churn", "start": 10, "stop": 40, "model": "uncorrelated",
             "fraction": 0.01, "arrivals_per_round": 8},
        ),
    )
    assert churning.resolved_backend() == "vectorized"
    churned = run_scenario(churning)
    replaying = ScenarioSpec(
        name="quickstart-trace-replay",
        protocol="push-sum-revert",
        protocol_params={"reversion": 0.05},
        environment="trace",
        environment_params={"devices": 64, "hours": 2.0},
        workload="uniform",
        n_hosts=64,
        rounds=120,
        mode="exchange",
        group_relative=True,
        seed=7,
    )
    assert replaying.resolved_backend() == "vectorized"
    replayed = run_scenario(replaying)
    print(
        f"\nDynamic membership on the kernels: churn (1% leaves, 8 join, every "
        f"round 10-40) ends at {churned.alive_counts()[-1]} hosts with error "
        f"{churned.final_error():.2f}; a 64-device synthetic contact trace "
        f"replays with mean group-relative error {replayed.final_error():.2f} "
        f"(mean group size {replayed.group_size_series()[-1]:.1f}).  Example "
        f"spec: examples/specs/trace_churn.json."
    )

    # Path 9: observe a run without perturbing it (repro.obs, DESIGN.md
    # §13).  Probes record phase spans (sampling, matching, scatter, CSR
    # rebuilds), per-round delivery counters and membership events — but
    # never draw from the RNG streams, so the traced run is bit-identical
    # to the bare one.  The CLI spelling is
    # `repro-aggregate run --config … --trace out.jsonl --metrics` and
    # `repro-aggregate obs report out.jsonl`.
    trace = TraceRecorder()
    metrics = MetricsRegistry()
    traced = run_scenario(churning, probe=MultiProbe(trace, metrics))
    assert traced.to_payload() == churned.to_payload(), "probes must not change results"
    print(
        f"\nObservability: the traced churn run recorded {len(trace)} structured "
        f"records and stayed bit-identical to the bare run.\n"
    )
    print(render_report(trace.records, every=10))

    # Path 10: the same asynchronous scenario, ten times the population,
    # on the bucketed vectorised calendar (repro.events.vectorized,
    # DESIGN.md §14).  "auto" resolves engine="events" to the vectorised
    # backend here, so the calendar drains per time bucket through
    # whole-subset kernel calls instead of one Python callback per event.
    big_async = asynchronous.replace(
        name="quickstart-fast-asynchronous-sweep", n_hosts=10_000,
    )
    assert big_async.resolved_backend() == "vectorized"
    start = time.perf_counter()
    fast = run_scenario(big_async)
    fast_seconds = time.perf_counter() - start
    print(
        f"\nBucketed vectorised calendar: the heterogeneous-clock latency "
        f"scenario at n=10,000 finished in {fast_seconds:.1f} s on the "
        f"{fast.metadata['backend']} backend (error {fast.final_error():.2f} "
        f"at t={fast.times()[-1]:.0f} s)."
    )


if __name__ == "__main__":
    main()
