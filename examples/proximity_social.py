"""Proximity-aware social networking (the paper's motivating application).

Wireless media players export the owner's average song rating.  As people
move around — forming small groups at work, dispersing at night, gathering
for events — each device maintains two running estimates *about its current
group*:

* the group's average song rating (Push-Sum-Revert), which a stationary
  device (a bar, a store) could use to pick ambient music;
* the group's size (Count-Sketch-Reset with 100 identifiers per device),
  which a social application could use to steer users towards busy areas.

Mobility is driven by a synthetic Haggle-like contact trace (9 devices over
a couple of days); errors are measured against each device's own group,
exactly as in the paper's Figure 11.

Run it with::

    python examples/proximity_social.py
"""

import numpy as np

from repro import CountSketchReset, PushSumRevert, Simulation, TraceEnvironment
from repro.analysis import render_series_table
from repro.mobility import generate_haggle_like_trace
from repro.workloads import clustered_values

N_DEVICES = 9
TRACE_HOURS = 36.0
ROUND_SECONDS = 30.0


def hourly(series, rounds_per_hour):
    """Aggregate a per-round series into hourly means."""
    values = np.asarray(series, dtype=float)
    return [
        float(np.nanmean(values[start : start + rounds_per_hour]))
        for start in range(0, len(values), rounds_per_hour)
    ]


def run(protocol, trace, values, rounds):
    environment = TraceEnvironment(trace, round_seconds=ROUND_SECONDS)
    simulation = Simulation(
        protocol, environment, values, seed=7, mode="exchange", group_relative=True
    )
    return simulation.run(rounds)


def main() -> None:
    trace = generate_haggle_like_trace(
        N_DEVICES, duration_hours=TRACE_HOURS, seed=11, community_size=3
    )
    # Song ratings cluster by taste community: some groups love their library,
    # others are lukewarm.
    ratings = clustered_values(N_DEVICES, cluster_means=(35.0, 60.0, 85.0), std=5.0, seed=11)
    rounds = int(trace.duration // ROUND_SECONDS)
    rounds_per_hour = int(3600 / ROUND_SECONDS)

    rating_static = run(PushSumRevert(0.0), trace, ratings, rounds)
    rating_dynamic = run(PushSumRevert(0.01), trace, ratings, rounds)
    size_dynamic = run(
        CountSketchReset(bins=32, bits=16, identifiers_per_host=100), trace, ratings, rounds
    )

    hours = list(range(len(hourly(rating_static.errors(), rounds_per_hour))))
    group_size = hourly(
        [r.group_sizes if r.group_sizes is not None else float("nan") for r in rating_static.rounds],
        rounds_per_hour,
    )

    print(
        f"{N_DEVICES} media players carried for {TRACE_HOURS:.0f} hours "
        f"(synthetic Haggle-like trace, gossip every {ROUND_SECONDS:.0f} s).\n"
        "Errors are relative to each device's CURRENT group (10-minute contact union).\n"
    )
    print(
        render_series_table(
            "hour",
            hours,
            {
                "avg group size": group_size,
                "rating error, static push-sum": hourly(rating_static.errors(), rounds_per_hour),
                "rating error, push-sum-revert": hourly(rating_dynamic.errors(), rounds_per_hour),
                "group-size error, count-sketch-reset": hourly(
                    size_dynamic.errors(), rounds_per_hour
                ),
            },
            every=2,
        )
    )
    print(
        "\nMean group-relative error over the whole trace:\n"
        f"  static push-sum rating estimate     : {np.nanmean(rating_static.errors()):6.2f}\n"
        f"  push-sum-revert rating estimate     : {np.nanmean(rating_dynamic.errors()):6.2f}\n"
        f"  count-sketch-reset group-size error : {np.nanmean(size_dynamic.errors()):6.2f}\n"
        "\nThe reverting protocol keeps tracking whichever group the device is in; "
        "the static protocol keeps averaging over everyone it has ever met."
    )


if __name__ == "__main__":
    main()
