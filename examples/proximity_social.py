"""Proximity-aware social networking (the paper's motivating application).

Wireless media players export the owner's average song rating.  As people
move around — forming small groups at work, dispersing at night, gathering
for events — each device maintains two running estimates *about its current
group*:

* the group's average song rating (Push-Sum-Revert), which a stationary
  device (a bar, a store) could use to pick ambient music;
* the group's size (Count-Sketch-Reset with 100 identifiers per device),
  which a social application could use to steer users towards busy areas.

Mobility is driven by a synthetic Haggle-like contact trace (9 devices over
a couple of days); errors are measured against each device's own group,
exactly as in the paper's Figure 11.  The three runs — static baseline,
reverting averager, group-size sketch — are the *same* declarative
scenario with the protocol swapped out, executed as one batch by
:class:`repro.SweepRunner`.

Run it with::

    python examples/proximity_social.py
"""

import numpy as np

from repro import ScenarioSpec, SweepRunner
from repro.analysis import render_series_table

N_DEVICES = 9
TRACE_HOURS = 36.0
ROUND_SECONDS = 30.0
ROUNDS = int(TRACE_HOURS * 3600 // ROUND_SECONDS)
ROUNDS_PER_HOUR = int(3600 / ROUND_SECONDS)

#: Everything about the run except the protocol: a 36-hour synthetic trace
#: with 3-person taste communities, song ratings clustered by community.
BASE = ScenarioSpec(
    protocol="push-sum-revert",
    environment="trace",
    environment_params={
        "devices": N_DEVICES,
        "hours": TRACE_HOURS,
        "trace_seed": 11,
        "community_size": 3,
        "round_seconds": ROUND_SECONDS,
    },
    # Song ratings cluster by taste community: some groups love their
    # library, others are lukewarm.
    workload="clustered",
    workload_params={"cluster_means": (35.0, 60.0, 85.0), "std": 5.0, "seed": 11},
    n_hosts=N_DEVICES,
    rounds=ROUNDS,
    mode="exchange",
    seed=7,
    group_relative=True,
)

SPECS = [
    BASE.replace(name="static push-sum", protocol_params={"reversion": 0.0}),
    BASE.replace(name="push-sum-revert", protocol_params={"reversion": 0.01}),
    BASE.replace(
        name="count-sketch-reset",
        protocol="count-sketch-reset",
        protocol_params={"bins": 32, "bits": 16, "identifiers_per_host": 100},
    ),
]


def hourly(series):
    """Aggregate a per-round series into hourly means."""
    values = np.asarray(series, dtype=float)
    return [
        float(np.nanmean(values[start : start + ROUNDS_PER_HOUR]))
        for start in range(0, len(values), ROUNDS_PER_HOUR)
    ]


def main() -> None:
    rating_static, rating_dynamic, size_dynamic = SweepRunner().run(SPECS).results

    hours = list(range(len(hourly(rating_static.errors()))))
    group_size = hourly(
        [r.group_sizes if r.group_sizes is not None else float("nan") for r in rating_static.rounds]
    )

    print(
        f"{N_DEVICES} media players carried for {TRACE_HOURS:.0f} hours "
        f"(synthetic Haggle-like trace, gossip every {ROUND_SECONDS:.0f} s).\n"
        "Errors are relative to each device's CURRENT group (10-minute contact union).\n"
    )
    print(
        render_series_table(
            "hour",
            hours,
            {
                "avg group size": group_size,
                "rating error, static push-sum": hourly(rating_static.errors()),
                "rating error, push-sum-revert": hourly(rating_dynamic.errors()),
                "group-size error, count-sketch-reset": hourly(size_dynamic.errors()),
            },
            every=2,
        )
    )
    print(
        "\nMean group-relative error over the whole trace:\n"
        f"  static push-sum rating estimate     : {np.nanmean(rating_static.errors()):6.2f}\n"
        f"  push-sum-revert rating estimate     : {np.nanmean(rating_dynamic.errors()):6.2f}\n"
        f"  count-sketch-reset group-size error : {np.nanmean(size_dynamic.errors()):6.2f}\n"
        "\nThe reverting protocol keeps tracking whichever group the device is in; "
        "the static protocol keeps averaging over everyone it has ever met."
    )


if __name__ == "__main__":
    main()
