"""Benchmark: Figure 10 — dynamic averaging under correlated failures.

Paper setup: as Figure 8 but the highest-valued half of the hosts fails
(true average 50 → 25).  Panel (a) is basic Push-Sum-Revert; panel (b) adds
the Full-Transfer optimisation (N=4 parcels, T=3 round history).  Paper
headline numbers for panel (b): λ=0.5 converges in <10 rounds at σ≈2.13;
λ=0.1 takes ≈35 rounds but reaches σ≈0.694.
"""

import pytest

from repro.experiments.fig10_correlated import render_fig10, run_fig10

N_HOSTS = 5000
ROUNDS = 60
FAILURE_ROUND = 20


@pytest.mark.benchmark(group="fig10")
def test_fig10_correlated_failures(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_fig10,
        kwargs={"n_hosts": N_HOSTS, "rounds": ROUNDS, "failure_round": FAILURE_ROUND, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_fig10(result)
    save_rendering("fig10", rendering)
    print("\n" + rendering)

    # Panel (a): the static protocol (lambda=0) never recovers.
    assert result.plateau(0.0) > 17.0
    # Larger lambda recovers faster but plateaus higher than lambda=0.1.
    assert result.recovery_rounds(0.5, threshold=15.0) is not None
    assert result.plateau(0.5) > result.plateau(0.1)

    # Panel (b): Full-Transfer lowers the plateau for the same lambda and
    # lands near the paper's headline numbers (2.13 at 0.5, 0.694 at 0.1).
    assert result.plateau(0.5, full_transfer=True) < result.plateau(0.5)
    assert result.plateau(0.1, full_transfer=True) < result.plateau(0.1)
    assert result.plateau(0.1, full_transfer=True) < 2.0
    assert result.plateau(0.5, full_transfer=True) < 6.0
    recovery = result.recovery_rounds(0.5, threshold=5.0, full_transfer=True)
    assert recovery is not None and recovery <= 15
