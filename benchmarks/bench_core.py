"""Standalone runner for the core backend benchmark.

Times identical declarative scenarios on the agent and vectorised
execution backends and writes the repo's perf trajectory file::

    python benchmarks/bench_core.py             # full run, writes BENCH_core.json
    python benchmarks/bench_core.py --smoke     # seconds-long CI configuration

Equivalent to ``repro-aggregate bench`` / ``python -m repro bench``; see
:mod:`repro.perf` for the implementation.  (Named without the ``test_``
prefix on purpose: pytest must not collect a wall-clock benchmark.)
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.perf import main  # noqa: E402  (path bootstrap must run first)

if __name__ == "__main__":
    sys.exit(main())
