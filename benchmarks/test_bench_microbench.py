"""Micro-benchmarks of the simulation substrate itself.

These are genuine pytest-benchmark timings (many iterations) of the hot
paths: one agent-engine gossip round, one vectorised kernel step, one
counter-matrix merge and one FM-sketch estimate.  They exist so performance
regressions in the substrate are visible independently of the figure
experiments.
"""

import pytest

from repro.baselines import PushSum
from repro.core import CountSketchReset, PushSumRevert
from repro.environments import UniformEnvironment
from repro.simulator import Simulation
from repro.simulator.vectorized import VectorizedCountSketchReset, VectorizedPushSumRevert
from repro.sketches import CounterMatrix, FMSketch
from repro.workloads import uniform_values


@pytest.mark.benchmark(group="micro-engine")
def test_engine_round_push_sum_exchange(benchmark):
    values = uniform_values(500, seed=1)
    simulation = Simulation(
        PushSumRevert(0.01), UniformEnvironment(500), values, seed=1, mode="exchange"
    )
    benchmark(simulation.step)


@pytest.mark.benchmark(group="micro-engine")
def test_engine_round_push_sum_push_mode(benchmark):
    values = uniform_values(500, seed=1)
    simulation = Simulation(PushSum(), UniformEnvironment(500), values, seed=1, mode="push")
    benchmark(simulation.step)


@pytest.mark.benchmark(group="micro-engine")
def test_engine_round_count_sketch_reset(benchmark):
    simulation = Simulation(
        CountSketchReset(bins=32, bits=20),
        UniformEnvironment(200),
        [1.0] * 200,
        seed=1,
        mode="exchange",
    )
    benchmark(simulation.step)


@pytest.mark.benchmark(group="micro-vectorized")
def test_vectorized_push_sum_step(benchmark):
    kernel = VectorizedPushSumRevert(uniform_values(50000, seed=1), 0.01, seed=1)
    benchmark(kernel.step)


@pytest.mark.benchmark(group="micro-vectorized")
def test_vectorized_count_sketch_step(benchmark):
    kernel = VectorizedCountSketchReset(20000, bins=32, bits=20, seed=1)
    benchmark(kernel.step)


@pytest.mark.benchmark(group="micro-sketch")
def test_counter_matrix_merge(benchmark):
    a = CounterMatrix.for_value("a", 50, bins=64, bits=24)
    b = CounterMatrix.for_value("b", 50, bins=64, bits=24)
    a.increment()
    b.increment()
    benchmark(a.merge_min, b)


@pytest.mark.benchmark(group="micro-sketch")
def test_fm_sketch_estimate(benchmark):
    sketch = FMSketch(bins=64, bits=24)
    sketch.insert_many(("item", i) for i in range(2000))
    benchmark(sketch.estimate)
