"""Benchmarks for the extension experiments (DESIGN.md §6 and §8)."""

import pytest

from repro.experiments.extensions import (
    render_departure_comparison,
    render_extrema_comparison,
    render_loss_sweep,
    render_rate_heterogeneity_sweep,
    run_departure_comparison,
    run_extrema_comparison,
    run_loss_sweep,
    run_rate_heterogeneity_sweep,
)


@pytest.mark.benchmark(group="extensions")
def test_extension_graceful_vs_silent_departure(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_departure_comparison,
        kwargs={"n_hosts": 400, "rounds": 50, "departure_round": 15, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_departure_comparison(result)
    save_rendering("extension_departure", rendering)
    print("\n" + rendering)
    # Graceful sign-off never hurts, and it rescues the protocols that cannot
    # forget on their own.
    static = result.final_errors["push-sum (static)"]
    sketch = result.final_errors["count-sketch-reset"]
    assert sketch["graceful"] <= sketch["silent"] + 1e-6
    # The reverting protocol recovers either way.
    revert = result.final_errors["push-sum-revert (lambda=0.1)"]
    assert revert["silent"] < static["silent"]


@pytest.mark.benchmark(group="extensions")
def test_extension_extrema_freshness(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_extrema_comparison,
        kwargs={"n_hosts": 300, "rounds": 60, "departure_round": 15, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_extrema_comparison(result)
    save_rendering("extension_extrema", rendering)
    print("\n" + rendering)
    # The static maximum survives its owner's departure forever; the
    # freshness-limited variant re-converges to the surviving maximum.
    assert result.static_final() > 0.0
    assert result.reset_final() < result.static_final()


@pytest.mark.benchmark(group="extensions")
def test_extension_loss_rate_sweep(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_loss_sweep,
        kwargs={"n_hosts": 400, "rounds": 50, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_loss_sweep(result)
    save_rendering("extension_loss_sweep", rendering)
    print("\n" + rendering)
    psr = result.relative_plateau["push-sum-revert"]
    sketch = result.relative_plateau["count-sketch-reset"]
    # Loss hurts both protocols monotonically (small sampling wiggles aside).
    assert psr[0.5] > psr[0.0]
    assert sketch[0.5] > sketch[0.0]
    # The crossing the paper never measured: Count-Sketch-Reset is the more
    # accurate protocol on a mildly lossy network (identifiers re-announce
    # every round), but once loss slows propagation past its freshness
    # cutoff the estimate collapses, while Push-Sum-Revert's reversion keeps
    # re-minting lost mass and degrades gracefully.
    assert sketch[0.0] < psr[0.0]
    assert sketch[0.5] > psr[0.5]


@pytest.mark.benchmark(group="extensions")
def test_extension_rate_heterogeneity(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_rate_heterogeneity_sweep,
        kwargs={"n_hosts": 400, "duration": 60.0, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_rate_heterogeneity_sweep(result)
    save_rendering("extension_rate_heterogeneity", rendering)
    print("\n" + rendering)
    psr = result.convergence_seconds["push-sum-revert"]
    sketch = result.convergence_seconds["count-sketch-reset"]
    # Every ratio converges within the horizon for both protocols: slow
    # hosts initiate exchanges rarely, but fast initiators keep sampling
    # them as responders, so heterogeneity slows mixing without stopping it.
    assert all(value is not None for value in psr.values())
    assert all(value is not None for value in sketch.values())
    # Convergence time stretches with heterogeneity, yet far less than the
    # slow hosts' gossip period alone would suggest (16x slower clocks do
    # not cost 16x the homogeneous convergence time).
    assert psr[16.0] > psr[1.0]
    assert sketch[16.0] > sketch[1.0]
    assert psr[16.0] < 16.0 * psr[1.0]
    assert sketch[16.0] < 16.0 * sketch[1.0]
