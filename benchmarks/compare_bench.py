#!/usr/bin/env python
"""Compare two benchmark payloads and fail on per-record regressions.

The CI ``bench-gate`` job runs the smoke benchmark and checks it against
the committed baseline::

    repro-aggregate bench --smoke --output BENCH_new.json
    python benchmarks/compare_bench.py BENCH_core.json BENCH_new.json

Records are matched on (protocol, backend, n_hosts, rounds) and compared
by mean time; a matched record slower than ``--threshold`` (default 2x)
fails the gate, sub-``--min-seconds`` cells are reported but treated as
timer noise, and cells present on only one side (the smoke run times a
subset of the committed sizes) never gate.  Exit codes: 0 ok, 1 at least
one regression, 2 usage / unreadable payloads / no overlapping records.

The comparison logic lives in :mod:`repro.perf` (``compare_benchmarks``)
and is unit-tested in ``tests/test_bench_compare.py``.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.perf import add_compare_arguments, run_compare_command  # noqa: E402  (path bootstrap must run first)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare_bench",
        description="Fail when a benchmark record regressed past the threshold",
    )
    add_compare_arguments(parser)
    return run_compare_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
