"""Benchmark: Figure 8 — dynamic averaging under uncorrelated failures.

Paper setup: 100 000 hosts, values U[0, 100), push/pull uniform gossip,
50 % random hosts removed after 20 rounds, λ ∈ {0, 0.001, 0.01, 0.1, 0.5}.
Scaled setup here: 5 000 hosts (the shape is size-independent; see
DESIGN.md §4).  Expected shape: every λ rides through the failure without
any lasting error increase.
"""

import pytest

from repro.experiments.fig8_uncorrelated import render_fig8, run_fig8

N_HOSTS = 5000
ROUNDS = 60
FAILURE_ROUND = 20


@pytest.mark.benchmark(group="fig8")
def test_fig8_uncorrelated_failures(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_fig8,
        kwargs={"n_hosts": N_HOSTS, "rounds": ROUNDS, "failure_round": FAILURE_ROUND, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_fig8(result)
    save_rendering("fig8", rendering)
    print("\n" + rendering)

    # Shape checks: uncorrelated failures do not hurt any reversion constant.
    for reversion, errors in result.errors.items():
        assert errors[-1] <= errors[FAILURE_ROUND - 2] + 5.0, (
            f"lambda={reversion} degraded after an uncorrelated failure"
        )
    # The static protocol and small lambdas end essentially converged.
    assert result.final_error(0.0) < 2.0
    assert result.final_error(0.001) < 2.0
    assert result.final_error(0.01) < 3.0
