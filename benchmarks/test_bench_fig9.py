"""Benchmark: Figure 9 — dynamic sketch counting under failure.

Paper setup: 100 000 hosts each holding 1, half removed after 20 rounds;
naive sketch counting versus Count-Sketch-Reset with cutoff 7 + k/4.
Scaled setup: 5 000 hosts, 32 bins.  Expected shape: the naive sketch's
error jumps to ≈ the removed population and stays there; Count-Sketch-Reset
returns to a small error within ~10 rounds.
"""

import pytest

from repro.experiments.fig9_counting_failure import render_fig9, run_fig9

N_HOSTS = 5000
ROUNDS = 40
FAILURE_ROUND = 20


@pytest.mark.benchmark(group="fig9")
def test_fig9_counting_under_failure(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_fig9,
        kwargs={
            "n_hosts": N_HOSTS,
            "rounds": ROUNDS,
            "failure_round": FAILURE_ROUND,
            "bins": 32,
            "bits": 20,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    rendering = render_fig9(result)
    save_rendering("fig9", rendering)
    print("\n" + rendering)

    removed = N_HOSTS // 2
    # Naive counting never forgets the failed half.
    assert result.naive_final_error() > 0.5 * removed
    # Count-Sketch-Reset recovers to well under the removed population…
    assert result.limited_final_error() < 0.2 * removed
    # …within roughly ten rounds of the failure (paper: "within 10 rounds").
    recovery = result.recovery_rounds(0.2 * removed)
    assert recovery is not None and recovery <= 15
