"""Benchmarks for the DESIGN.md §6 design-choice ablations."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_adaptive_lambda_ablation,
    run_cutoff_slope_ablation,
    run_full_transfer_parameter_ablation,
    run_push_vs_pushpull_ablation,
    run_summation_cost_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_push_vs_pushpull(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_push_vs_pushpull_ablation,
        kwargs={"n_hosts": 4000, "rounds": 40, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_rendering("ablation_push_vs_pushpull", result.render())
    print("\n" + result.render())
    # Push/pull converges at least as fast as push-only (paper: ~2x faster).
    assert result.outcomes["pushpull"] <= result.outcomes["push"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_adaptive_lambda(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_adaptive_lambda_ablation,
        kwargs={"n_hosts": 4000, "rounds": 60, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_rendering("ablation_adaptive_lambda", result.render())
    print("\n" + result.render())
    assert set(result.outcomes) == {"fixed", "adaptive"}


@pytest.mark.benchmark(group="ablations")
def test_ablation_full_transfer_parameters(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_full_transfer_parameter_ablation,
        kwargs={"n_hosts": 3000, "rounds": 60, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_rendering("ablation_full_transfer_parameters", result.render())
    print("\n" + result.render())
    # A longer estimation history lowers the plateau for the same parcels.
    assert result.outcomes["N=4, T=3"] <= result.outcomes["N=4, T=1"] + 0.5


@pytest.mark.benchmark(group="ablations")
def test_ablation_cutoff_slope(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_cutoff_slope_ablation,
        kwargs={"n_hosts": 3000, "rounds": 40, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_rendering("ablation_cutoff_slope", result.render())
    print("\n" + result.render())
    assert all(np.isfinite(value) for value in result.outcomes.values())


@pytest.mark.benchmark(group="ablations")
def test_ablation_summation_cost(benchmark, save_rendering):
    result = benchmark.pedantic(run_summation_cost_ablation, rounds=1, iterations=1)
    save_rendering("ablation_summation_cost", result.render())
    print("\n" + result.render())
    # Invert-Average is cheaper per sum once the sketch is amortised.
    assert result.outcomes["ratio"] > 1.0
