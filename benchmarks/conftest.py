"""Shared fixtures for the benchmark harness.

Every figure benchmark runs the corresponding experiment once (via
``benchmark.pedantic`` — the experiments are seconds-long simulations, not
micro-benchmarks), checks the qualitative shape the paper reports, renders
the same rows/series the paper's figure plots, and writes that rendering to
``benchmarks/output/``.  EXPERIMENTS.md records the committed numbers.
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir():
    """Directory where rendered figure tables are written."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_rendering(output_dir):
    """Callable that writes a rendered table to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
