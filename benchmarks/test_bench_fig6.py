"""Benchmark: Figure 6 — bit-counter distributions of converged networks.

Paper setup: fully converged Count-Sketch-Reset networks of 10³/10⁴/10⁵
hosts; per-bit CDFs of the counter values; the high-probability bound is
size-independent and fits f(k) ≈ 7 + k/4.  Scaled setup: 10³/4·10³/10⁴
hosts with 32 bins.
"""

import pytest

from repro.experiments.fig6_counter_cdf import render_fig6, run_fig6

SIZES = (1000, 4000, 10000)


@pytest.mark.benchmark(group="fig6")
def test_fig6_counter_distributions(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_fig6,
        kwargs={"sizes": SIZES, "bins": 32, "bits": 20, "convergence_rounds": 30, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rendering = render_fig6(result)
    save_rendering("fig6", rendering)
    print("\n" + rendering)

    # The distribution of low-bit counters is (nearly) size-independent.
    import numpy as np

    for bit in (0, 1, 2):
        medians = [float(np.median(result.counters[size][bit])) for size in SIZES]
        assert max(medians) - min(medians) <= 3.0
    # The fitted bound is linear with a shallow slope, like the paper's 7+k/4.
    assert 0.1 < result.pooled_fit.slope < 0.6
    assert 3.0 < result.pooled_fit.intercept < 12.0
