"""Benchmark: Figure 11 — trace-driven dynamic averaging and summation.

Paper setup: the three CRAWDAD Cambridge/Haggle traces (9/12/41 devices),
one gossip round per 30 s, group-relative errors, λ ∈ {0, 0.001, 0.01} for
averaging and cutoff off/on/slow for the size estimate (100 identifiers per
device).  This benchmark replays the synthetic stand-in traces for datasets
1 and 2 over their first 24 hours (full-length runs for all three datasets
are available through ``python -m repro experiments --profile full``).

Expected shape: reversion-enabled variants track the running group
aggregate with bounded error; the reversion-free variants drift.
"""

import pytest

from repro.experiments.fig11_traces import render_fig11, run_fig11

DATASETS = (1, 2)
MAX_HOURS = 24.0


@pytest.mark.benchmark(group="fig11")
def test_fig11_trace_driven_aggregation(benchmark, save_rendering):
    result = benchmark.pedantic(
        run_fig11,
        kwargs={
            "datasets": DATASETS,
            "max_hours": MAX_HOURS,
            "bins": 32,
            "bits": 16,
            "identifiers_per_host": 100,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    rendering = render_fig11(result)
    save_rendering("fig11", rendering)
    print("\n" + rendering)

    for dataset in DATASETS:
        data = result.datasets[dataset]
        # Reversion tracks the group average at least as well as static
        # Push-Sum over the whole trace (Fig 11's headline comparison).
        assert data.mean_error("lambda=0.01") <= data.mean_error("lambda=0") + 0.5
        # The cutoff-enabled size estimate tracks the group size better than
        # the cutoff-free (static) sketch.
        assert data.mean_error("reversion on", size=True) <= data.mean_error(
            "reversion off", size=True
        ) + 0.1
        # The size estimate stays within about half the correct value on
        # average (paper: "remains within half of the correct value").
        mean_group_size = sum(data.group_size) / len(data.group_size)
        assert data.mean_error("reversion on", size=True) <= max(1.0, mean_group_size)
