"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs are unavailable) can still do ``pip install -e . --no-use-pep517``
or ``python setup.py develop``.
"""

from setuptools import setup

setup()
