"""Tests for the paper's dynamic protocols (the core contribution)."""

import numpy as np
import pytest

from repro.core import (
    CountSketchReset,
    FullTransferPushSumRevert,
    InvertAverage,
    PushSumRevert,
    default_cutoff,
    linear_cutoff,
    no_decay_cutoff,
    scaled_cutoff,
)
from repro.environments import UniformEnvironment
from repro.failures import CorrelatedFailure, FailureEvent, UncorrelatedFailure
from repro.simulator import Simulation
from repro.workloads import uniform_values


@pytest.fixture
def rng():
    return np.random.default_rng(2)


class TestCutoffFunctions:
    def test_default_cutoff_matches_paper(self):
        assert default_cutoff(0) == 7.0
        assert default_cutoff(4) == 8.0
        assert default_cutoff(8) == 9.0

    def test_linear_cutoff(self):
        cutoff = linear_cutoff(5.0, 0.5)
        assert cutoff(0) == 5.0
        assert cutoff(10) == 10.0
        with pytest.raises(ValueError):
            linear_cutoff(-1.0, 0.5)

    def test_scaled_cutoff(self):
        cutoff = scaled_cutoff(2.0)
        assert cutoff(0) == 14.0
        assert cutoff(4) == 16.0
        with pytest.raises(ValueError):
            scaled_cutoff(0.0)

    def test_no_decay_cutoff_is_huge_but_excludes_unheard(self):
        from repro.sketches.counter_matrix import INFINITY

        assert no_decay_cutoff(0) < INFINITY
        assert no_decay_cutoff(0) > 1e6


class TestPushSumRevertUnit:
    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            PushSumRevert(-0.1)
        with pytest.raises(ValueError):
            PushSumRevert(1.1)

    def test_lambda_zero_is_plain_push_sum(self, rng):
        protocol = PushSumRevert(0.0)
        state = protocol.create_state(0, 10.0, rng)
        protocol.integrate(state, [(0.5, 20.0)], rng)
        protocol.finalize_round(state, 1, rng)
        assert state.weight == 0.5
        assert state.total == 20.0

    def test_revert_pulls_mass_towards_initial_value(self, rng):
        protocol = PushSumRevert(0.5)
        state = protocol.create_state(0, 10.0, rng)
        protocol.integrate(state, [(1.0, 100.0)], rng)
        protocol.finalize_round(state, 1, rng)
        assert state.weight == pytest.approx(0.5 * 1.0 + 0.5 * 1.0)
        assert state.total == pytest.approx(0.5 * 10.0 + 0.5 * 100.0)

    def test_adaptive_lambda_scales_with_indegree(self, rng):
        protocol = PushSumRevert(0.2, adaptive=True)
        # One message received (including self) -> lambda/2.
        assert protocol._effective_lambda(1) == pytest.approx(0.1)
        # Two messages -> exactly lambda.
        assert protocol._effective_lambda(2) == pytest.approx(0.2)
        # Many messages -> capped at 1.
        assert protocol._effective_lambda(100) == 1.0

    def test_revert_step_conserves_total_mass_over_population(self, rng):
        """The Section III conservation argument: summing the revert step over
        an unchanged population leaves total mass unchanged."""
        protocol = PushSumRevert(0.3)
        states = [protocol.create_state(i, float(i), rng) for i in range(10)]
        # Simulate an arbitrary redistribution that conserves mass.
        total_before = sum(s.total for s in states)
        weight_before = sum(s.weight for s in states)
        shuffled = np.random.default_rng(0).permutation(10)
        for state, source in zip(states, shuffled):
            state.total = float(source)
            state.weight = 1.0
        for state in states:
            protocol.finalize_round(state, 1, rng)
        assert sum(s.total for s in states) == pytest.approx(total_before)
        assert sum(s.weight for s in states) == pytest.approx(weight_before)

    def test_describe_reports_lambda(self):
        description = PushSumRevert(0.05, adaptive=True).describe()
        assert description["reversion"] == 0.05
        assert description["adaptive"] is True


class TestPushSumRevertIntegration:
    def _run(self, reversion, events=None, rounds=50, n=300, mode="exchange"):
        values = uniform_values(n, seed=6)
        sim = Simulation(
            PushSumRevert(reversion),
            UniformEnvironment(n),
            values,
            seed=6,
            mode=mode,
            events=events or [],
        )
        return sim.run(rounds)

    def test_converges_without_failures(self):
        result = self._run(0.01, rounds=30)
        assert result.final_error() < 3.0

    def test_static_protocol_never_recovers_from_correlated_failure(self):
        events = [FailureEvent(round=15, model=CorrelatedFailure(0.5, highest=True))]
        result = self._run(0.0, events=events, rounds=50)
        # Truth dropped to ~25; static estimate stays near 50.
        assert result.final_error() > 15.0

    def test_reversion_recovers_from_correlated_failure(self):
        events = [FailureEvent(round=15, model=CorrelatedFailure(0.5, highest=True))]
        result = self._run(0.3, events=events, rounds=60)
        # The pre-recovery error is ~25 (old average 50 vs new truth 25); a
        # reverting protocol must get well below that, if not to zero.
        assert result.final_error() < 12.0

    def test_larger_lambda_recovers_faster(self):
        events = [FailureEvent(round=15, model=CorrelatedFailure(0.5, highest=True))]
        slow = self._run(0.01, events=events, rounds=40)
        fast = self._run(0.5, events=events, rounds=40)
        assert fast.error_at(25) < slow.error_at(25)

    def test_uncorrelated_failure_harmless(self):
        events = [FailureEvent(round=15, model=UncorrelatedFailure(0.5))]
        result = self._run(0.01, events=events, rounds=40)
        assert result.final_error() < 5.0

    def test_push_mode_also_works(self):
        result = self._run(0.05, rounds=40, mode="push")
        assert result.final_error() < 10.0


class TestFullTransfer:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FullTransferPushSumRevert(0.1, parcels=0)
        with pytest.raises(ValueError):
            FullTransferPushSumRevert(0.1, history=0)

    def test_fanout_matches_parcels(self):
        assert FullTransferPushSumRevert(0.1, parcels=6).fanout == 6

    def test_exchange_mode_unsupported(self, rng):
        protocol = FullTransferPushSumRevert(0.1)
        a = protocol.create_state(0, 1.0, rng)
        b = protocol.create_state(1, 2.0, rng)
        with pytest.raises(NotImplementedError):
            protocol.exchange(a, b, rng)

    def test_payloads_export_entire_mass(self, rng):
        protocol = FullTransferPushSumRevert(0.0, parcels=4)
        state = protocol.create_state(0, 8.0, rng)
        payloads = protocol.make_payloads(state, [1, 2, 3, 4], rng)
        assert len(payloads) == 4
        assert all(dest in (1, 2, 3, 4) for dest, _ in payloads)
        total_weight = sum(weight for _, (weight, _) in payloads)
        total_value = sum(value for _, (_, value) in payloads)
        assert total_weight == pytest.approx(1.0)
        assert total_value == pytest.approx(8.0)

    def test_payloads_apply_reversion_on_send(self, rng):
        protocol = FullTransferPushSumRevert(0.5, parcels=2)
        state = protocol.create_state(0, 10.0, rng)
        state.weight, state.total = 2.0, 40.0
        payloads = protocol.make_payloads(state, [1, 2], rng)
        total_weight = sum(weight for _, (weight, _) in payloads)
        total_value = sum(value for _, (_, value) in payloads)
        assert total_weight == pytest.approx(0.5 * 2.0 + 0.5)
        assert total_value == pytest.approx(0.5 * 40.0 + 0.5 * 10.0)

    def test_isolated_host_keeps_reverted_mass(self, rng):
        protocol = FullTransferPushSumRevert(0.5, parcels=4)
        state = protocol.create_state(0, 10.0, rng)
        payloads = protocol.make_payloads(state, [], rng)
        assert len(payloads) == 1
        assert payloads[0][0] is None

    def test_history_window_bounds_length(self, rng):
        protocol = FullTransferPushSumRevert(0.1, parcels=2, history=3)
        state = protocol.create_state(0, 10.0, rng)
        for _ in range(6):
            protocol.integrate(state, [(0.5, 5.0)], rng)
            protocol.finalize_round(state, 1, rng)
        assert len(state.history) == 3

    def test_empty_round_skipped_in_history(self, rng):
        protocol = FullTransferPushSumRevert(0.1, parcels=2, history=3)
        state = protocol.create_state(0, 10.0, rng)
        protocol.integrate(state, [], rng)
        protocol.finalize_round(state, 0, rng)
        assert state.history == []
        # Estimate falls back to last well-defined value (the initial value).
        assert protocol.estimate(state) == 10.0

    def test_estimate_averages_history(self, rng):
        protocol = FullTransferPushSumRevert(0.0, parcels=2, history=3)
        state = protocol.create_state(0, 10.0, rng)
        for value in (10.0, 20.0, 30.0):
            protocol.integrate(state, [(1.0, value)], rng)
            protocol.finalize_round(state, 1, rng)
        assert protocol.estimate(state) == pytest.approx(20.0)

    def test_full_transfer_beats_basic_after_correlated_failure(self):
        n = 400
        values = uniform_values(n, seed=3)
        events = [FailureEvent(round=15, model=CorrelatedFailure(0.5, highest=True))]

        def run(protocol, mode):
            sim = Simulation(
                protocol, UniformEnvironment(n), values, seed=3, mode=mode, events=list(events)
            )
            return sim.run(60).plateau_error(tail=5)

        basic = run(PushSumRevert(0.1), "exchange")
        full = run(FullTransferPushSumRevert(0.1, parcels=4, history=3), "push")
        assert full < basic


class TestCountSketchResetUnit:
    def test_counting_state(self, rng):
        protocol = CountSketchReset(bins=8, bits=16)
        state = protocol.create_state(0, 123.0, rng)
        assert state.own_identifiers == 1
        assert len(state.matrix.owned) == 1

    def test_sum_mode_state(self, rng):
        protocol = CountSketchReset(bins=8, bits=16, value_as_identifiers=True)
        state = protocol.create_state(0, 6.0, rng)
        assert state.own_identifiers == 6
        assert protocol.aggregate == "sum"

    def test_sum_mode_rejects_negative(self, rng):
        protocol = CountSketchReset(bins=8, bits=16, value_as_identifiers=True)
        with pytest.raises(ValueError):
            protocol.create_state(0, -1.0, rng)

    def test_begin_round_increments_counters(self, rng):
        protocol = CountSketchReset(bins=4, bits=8)
        state = protocol.create_state(0, 1.0, rng)
        owned = next(iter(state.matrix.owned))
        protocol.begin_round(state, 0, rng)
        assert state.matrix.counters[owned] == 0

    def test_exchange_is_symmetric_min(self, rng):
        protocol = CountSketchReset(bins=4, bits=8)
        a = protocol.create_state(0, 1.0, rng)
        b = protocol.create_state(1, 1.0, rng)
        protocol.begin_round(a, 0, rng)
        protocol.begin_round(b, 0, rng)
        protocol.exchange(a, b, rng)
        owned_a = next(iter(a.matrix.owned))
        owned_b = next(iter(b.matrix.owned))
        assert b.matrix.counters[owned_a] == 0
        assert a.matrix.counters[owned_b] == 0

    def test_no_peers_produces_no_payloads(self, rng):
        protocol = CountSketchReset(bins=4, bits=8)
        state = protocol.create_state(0, 1.0, rng)
        assert protocol.make_payloads(state, [], rng) == []

    def test_identifiers_per_host_validation(self):
        with pytest.raises(ValueError):
            CountSketchReset(identifiers_per_host=0)

    def test_describe_mentions_cutoff(self):
        assert "cutoff" in CountSketchReset().describe()


class TestCountSketchResetIntegration:
    def _run(self, protocol, n, rounds, events=None):
        sim = Simulation(
            protocol,
            UniformEnvironment(n),
            [1.0] * n,
            seed=9,
            mode="exchange",
            events=events or [],
        )
        return sim.run(rounds)

    def test_estimates_population(self):
        result = self._run(CountSketchReset(bins=32, bits=18), 300, 15)
        assert 0.5 * 300 < result.mean_estimate() < 2.0 * 300

    def test_recovers_after_failure(self):
        events = [FailureEvent(round=12, model=UncorrelatedFailure(0.5))]
        result = self._run(CountSketchReset(bins=16, bits=18), 200, 40, events)
        final = result.mean_estimate()
        before = result.rounds[11].mean_estimate
        assert final < 0.75 * before

    def test_no_decay_variant_does_not_recover(self):
        events = [FailureEvent(round=12, model=UncorrelatedFailure(0.5))]
        result = self._run(
            CountSketchReset(bins=16, bits=18, cutoff=no_decay_cutoff), 200, 40, events
        )
        final = result.mean_estimate()
        before = result.rounds[11].mean_estimate
        assert final >= before * 0.95


class TestInvertAverage:
    def test_state_contains_both_halves(self, rng):
        protocol = InvertAverage(0.01, bins=8, bits=12)
        state = protocol.create_state(0, 5.0, rng)
        assert state.count_state.own_identifiers == 1
        assert state.average_state.initial_value == 5.0

    def test_estimate_is_product_of_halves(self, rng):
        protocol = InvertAverage(0.01, bins=8, bits=12)
        state = protocol.create_state(0, 5.0, rng)
        assert protocol.estimate(state) == pytest.approx(
            protocol.size_estimate(state) * protocol.average_estimate(state)
        )

    def test_sum_estimate_on_uniform_network(self):
        n = 200
        values = uniform_values(n, seed=4)
        sim = Simulation(
            InvertAverage(0.01, bins=32, bits=18),
            UniformEnvironment(n),
            values,
            seed=4,
            mode="exchange",
        )
        result = sim.run(20)
        truth = sum(values)
        assert 0.5 * truth < result.mean_estimate() < 2.0 * truth

    def test_push_mode_payloads_carry_both_parts(self, rng):
        protocol = InvertAverage(0.01, bins=4, bits=8)
        state = protocol.create_state(0, 5.0, rng)
        payloads = protocol.make_payloads(state, [3], rng)
        destinations = {dest for dest, _ in payloads}
        assert destinations == {None, 3}
        for dest, (count_part, average_part) in payloads:
            if dest == 3:
                assert count_part is not None
            assert average_part is not None

    def test_rebase_updates_average_half(self, rng):
        protocol = InvertAverage(0.01, bins=4, bits=8)
        state = protocol.create_state(0, 5.0, rng)
        protocol.rebase(state, 9.0)
        assert state.average_state.initial_value == 9.0

    def test_exchange_size_combines_both_halves(self, rng):
        protocol = InvertAverage(0.01, bins=4, bits=8)
        a = protocol.create_state(0, 5.0, rng)
        b = protocol.create_state(1, 7.0, rng)
        assert protocol.exchange_size(a, b) > 16

    def test_tracks_sum_after_failure(self):
        n = 200
        values = uniform_values(n, seed=4)
        events = [FailureEvent(round=12, model=UncorrelatedFailure(0.5))]
        sim = Simulation(
            InvertAverage(0.05, bins=16, bits=18),
            UniformEnvironment(n),
            values,
            seed=4,
            mode="exchange",
            events=events,
        )
        result = sim.run(45)
        before = result.rounds[11].mean_estimate
        after = result.mean_estimate()
        assert after < 0.8 * before
