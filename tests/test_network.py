"""Tests for the network layer (`repro.network`, DESIGN.md §8).

Covers the ISSUE-3 acceptance surface: determinism of every model,
bit-identity of the zero-loss path with the perfect network, the
mass-conservation invariant under loss/latency for the Push-Sum family,
agent-versus-vectorised agreement for Bernoulli loss, every eager
validation error path, and the committed loss-sweep golden numbers.
"""

import pathlib

import numpy as np
import pytest

from repro.api import NETWORKS, ScenarioSpec, resolve_backend, run_scenario
from repro.baselines import PushSum
from repro.cli import main as cli_main
from repro.core import PushSumRevert
from repro.environments import UniformEnvironment
from repro.experiments.extensions import run_loss_sweep
from repro.network import (
    BandwidthCapNetwork,
    BernoulliLossNetwork,
    DeliveryQueue,
    InFlightMessage,
    LatencyNetwork,
    MassConservationError,
    MassLedger,
    PerfectNetwork,
    StackedNetwork,
)
from repro.simulator import Simulation
from repro.simulator.vectorized import VectorizedPushSumRevert
from repro.workloads import uniform_values

N_HOSTS = 48

#: One spec-kwargs fragment per registered network model (push mode).
NETWORK_CONFIGS = [
    ("perfect", {}),
    ("bernoulli-loss", {"p": 0.25}),
    ("latency", {"distribution": "fixed", "delay": 2}),
    ("latency", {"distribution": "uniform", "low": 0, "high": 3}),
    ("latency", {"distribution": "lognormal", "mean": 0.3, "sigma": 0.6, "max_delay": 8}),
    ("bandwidth-cap", {"bytes_per_round": 16}),
    (
        "stacked",
        {"layers": [{"model": "bernoulli-loss", "p": 0.1},
                    {"model": "latency", "distribution": "fixed", "delay": 1}]},
    ),
]
CONFIG_IDS = [
    f"{name}:{params.get('distribution', '')}" if name == "latency" else name
    for name, params in NETWORK_CONFIGS
]


def _spec(network, network_params, *, mode="push", backend="agent", **overrides):
    kwargs = dict(
        protocol="push-sum-revert",
        protocol_params={"reversion": 0.05},
        n_hosts=N_HOSTS,
        rounds=25,
        mode=mode,
        seed=3,
        network=network,
        network_params=network_params,
        backend=backend,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestRegistry:
    def test_models_are_registered(self):
        for name in ("perfect", "bernoulli-loss", "latency", "bandwidth-cap", "stacked"):
            assert name in NETWORKS

    def test_network_round_trips_through_json(self):
        spec = _spec("bernoulli-loss", {"p": 0.2})
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.network == "bernoulli-loss"
        assert restored.network_params == {"p": 0.2}

    def test_build_network_returns_fresh_instances(self):
        spec = _spec("bandwidth-cap", {"bytes_per_round": 64})
        first, second = spec.build_network(), spec.build_network()
        assert first is not second
        assert isinstance(first, BandwidthCapNetwork)


class TestDeterminism:
    """Equal seed ⇒ bit-identical results for every network model."""

    @pytest.mark.parametrize("name, params", NETWORK_CONFIGS, ids=CONFIG_IDS)
    def test_agent_runs_are_bit_identical(self, name, params):
        first = run_scenario(_spec(name, params))
        second = run_scenario(_spec(name, params))
        assert first.errors() == second.errors()
        assert first.truths() == second.truths()
        assert first.lost_per_round() == second.lost_per_round()
        assert first.in_flight_per_round() == second.in_flight_per_round()

    def test_vectorized_lossy_runs_are_bit_identical(self):
        spec = _spec("bernoulli-loss", {"p": 0.3}, backend="vectorized")
        assert run_scenario(spec).errors() == run_scenario(spec).errors()


class TestPerfectEquivalence:
    """Zero loss and the perfect model reproduce the legacy engine bit for bit."""

    @pytest.mark.parametrize("mode", ["push", "exchange"])
    def test_zero_loss_matches_perfect_on_agent(self, mode):
        perfect = run_scenario(_spec("perfect", {}, mode=mode))
        zero_loss = run_scenario(_spec("bernoulli-loss", {"p": 0.0}, mode=mode))
        assert zero_loss.errors() == perfect.errors()
        assert zero_loss.truths() == perfect.truths()
        assert zero_loss.total_lost() == 0

    def test_zero_loss_matches_perfect_on_vectorized(self):
        perfect = run_scenario(_spec("perfect", {}, backend="vectorized"))
        zero_loss = run_scenario(
            _spec("bernoulli-loss", {"p": 0.0}, backend="vectorized")
        )
        assert zero_loss.errors() == perfect.errors()

    def test_perfect_model_instance_matches_no_model(self):
        values = uniform_values(N_HOSTS, seed=3)

        def run(network):
            return Simulation(
                PushSumRevert(0.05), UniformEnvironment(N_HOSTS), values,
                seed=3, mode="push", network=network,
            ).run(25)

        assert run(PerfectNetwork()).errors() == run(None).errors()

    def test_zero_fixed_delay_matches_perfect(self):
        perfect = run_scenario(_spec("perfect", {}))
        zero_delay = run_scenario(_spec("latency", {"distribution": "fixed", "delay": 0}))
        assert zero_delay.errors() == perfect.errors()


class TestMassConservation:
    """Mass at hosts + in flight + lost − injected == initial, every round."""

    def _simulation(self, protocol, network, *, mode="push", events=None, seed=7):
        return Simulation(
            protocol,
            UniformEnvironment(N_HOSTS),
            uniform_values(N_HOSTS, seed=seed),
            seed=seed,
            mode=mode,
            events=events,
            network=network,
        )

    def test_pure_push_sum_bleeds_exactly_the_lost_mass(self):
        sim = self._simulation(PushSum(), BernoulliLossNetwork(0.3))
        sim.run(30)
        # λ=0: no reversion, so the only mass movement out of the system is
        # loss.  The books must balance to float precision.
        assert sim.mass_ledger.lost > 0.0
        assert sim.mass_ledger.injected == pytest.approx(0.0, abs=1e-9)
        remaining = sim._total_state_mass() + sim._in_flight.in_flight_mass
        assert remaining == pytest.approx(N_HOSTS - sim.mass_ledger.lost, abs=1e-6)

    def test_reversion_injects_mass_and_books_balance(self):
        sim = self._simulation(PushSumRevert(0.1), BernoulliLossNetwork(0.2))
        sim.run(30)  # the engine asserts the ledger internally every round
        assert sim.mass_ledger.injected != 0.0
        assert sim.mass_ledger.lost > 0.0

    def test_latency_and_failures_keep_the_books(self):
        from repro.failures import CorrelatedFailure, FailureEvent

        network = StackedNetwork([
            BernoulliLossNetwork(0.15),
            LatencyNetwork(distribution="uniform", low=0, high=4),
        ])
        sim = self._simulation(
            PushSum(),
            network,
            events=[FailureEvent(round=10, model=CorrelatedFailure(0.5, highest=True))],
        )
        result = sim.run(30)
        # In-flight mass existed at some point, and the stranded mass at the
        # departed hosts still counts towards the host-side total.
        assert max(result.in_flight_per_round()) > 0
        remaining = sim._total_state_mass() + sim._in_flight.in_flight_mass
        assert remaining == pytest.approx(N_HOSTS - sim.mass_ledger.lost, abs=1e-6)

    def test_exchange_loss_never_destroys_mass(self):
        sim = self._simulation(PushSum(), BernoulliLossNetwork(0.5), mode="exchange")
        result = sim.run(25)
        assert result.total_lost() > 0  # exchanges were dropped...
        assert sim.mass_ledger.lost == 0.0  # ...but atomically: no mass at risk
        assert sim._total_state_mass() == pytest.approx(N_HOSTS, abs=1e-6)

    def test_vectorized_kernel_accounts_lost_mass(self):
        kernel = VectorizedPushSumRevert(
            uniform_values(256, seed=1), 0.0, mode="push", loss=0.3, seed=1
        )
        kernel.step_many(20)
        assert kernel.mass_lost > 0.0
        assert kernel.weight.sum() + kernel.mass_lost == pytest.approx(256.0, abs=1e-6)

    def test_vectorized_pushpull_loss_conserves_mass(self):
        kernel = VectorizedPushSumRevert(
            uniform_values(256, seed=1), 0.0, mode="pushpull", loss=0.4, seed=1
        )
        kernel.step_many(20)
        assert kernel.mass_lost == 0.0
        assert kernel.weight.sum() == pytest.approx(256.0, abs=1e-6)

    def test_ledger_raises_on_imbalance(self):
        ledger = MassLedger()
        ledger.open(100.0)
        ledger.record_lost(10.0)
        ledger.check(90.0, round_index=0)  # balanced
        with pytest.raises(MassConservationError, match="round 3"):
            ledger.check(95.0, round_index=3)


class TestDeliveryQueue:
    def test_messages_mature_in_sending_order(self):
        queue = DeliveryQueue()
        for i in range(3):
            queue.schedule(InFlightMessage(i, i + 1, f"payload-{i}", 0, 2, mass=1.0))
        queue.schedule(InFlightMessage(9, 9, "other-round", 0, 3))
        assert len(queue) == 4
        assert queue.in_flight_mass == pytest.approx(3.0)
        matured = queue.due(2)
        assert [item.payload for item in matured] == ["payload-0", "payload-1", "payload-2"]
        assert len(queue) == 1
        assert queue.due(2) == []

    def test_rejects_non_future_delivery(self):
        queue = DeliveryQueue()
        with pytest.raises(ValueError, match="strictly after"):
            queue.schedule(InFlightMessage(0, 1, "x", 5, 5))


class TestDeliveryAccounting:
    def test_latency_counters_add_up(self):
        result = run_scenario(_spec("latency", {"distribution": "uniform", "low": 0, "high": 3}))
        delivered = sum(result.delivered_per_round())
        lost = result.total_lost()
        backlog = result.in_flight_per_round()[-1]
        # Uniform gossip: every live host pushes one non-self message per
        # round; every one of them is delivered, lost, or still in flight.
        sent = sum(record.n_alive for record in result.rounds)
        assert delivered + lost + backlog == sent
        assert max(result.in_flight_per_round()) > 0

    def test_bandwidth_cap_drops_over_budget_messages(self):
        generous = run_scenario(_spec("bandwidth-cap", {"bytes_per_round": 1024}))
        tight = run_scenario(_spec("bandwidth-cap", {"bytes_per_round": 8}))
        assert generous.total_lost() == 0
        # Push-Sum payloads are 16 bytes; an 8-byte budget drops every one.
        assert tight.total_lost() == sum(record.n_alive for record in tight.rounds)

    def test_lost_exchanges_still_cost_radio_bytes(self):
        # The initiator's transmitted half is spent whether or not the link
        # delivers — consistent with push mode, where lost payloads stay on
        # the bandwidth meter too.
        result = run_scenario(_spec("bernoulli-loss", {"p": 1.0}, mode="exchange"))
        assert result.total_lost() > 0
        assert sum(result.delivered_per_round()) == 0
        assert result.total_bytes() > 0

    def test_lossy_metadata_records_the_model(self):
        result = run_scenario(_spec("bernoulli-loss", {"p": 0.25}))
        assert result.metadata["network"] == {"name": "bernoulli-loss", "p": 0.25}


class TestAgentVectorizedEquivalence:
    """Bernoulli loss: the two engines agree in distribution."""

    @pytest.mark.parametrize("mode", ["exchange", "push"])
    def test_seed_averaged_estimates_agree(self, mode):
        kwargs = dict(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=64,
            rounds=30,
            mode=mode,
            network="bernoulli-loss",
            network_params={"p": 0.3},
        )
        summaries = {}
        for backend in ("agent", "vectorized"):
            estimates, truths = [], []
            for seed in range(8):
                result = run_scenario(ScenarioSpec(seed=seed, backend=backend, **kwargs))
                assert result.metadata["backend"] == backend
                estimates.append(result.mean_estimate())
                truths.append(result.final_truth())
            summaries[backend] = (float(np.mean(estimates)), float(np.mean(truths)))
        agent_mean, truth = summaries["agent"]
        vector_mean, _ = summaries["vectorized"]
        scale = max(abs(truth), 1.0)
        assert abs(agent_mean - truth) <= 0.15 * scale
        assert abs(vector_mean - truth) <= 0.15 * scale
        assert abs(vector_mean - agent_mean) <= 0.2 * scale

    def test_auto_picks_the_lossy_kernel(self):
        spec = _spec("bernoulli-loss", {"p": 0.2}, backend="auto")
        assert resolve_backend(spec) == "vectorized"
        assert run_scenario(spec).metadata["backend"] == "vectorized"

    def test_auto_falls_back_for_unvectorised_models(self):
        for name, params in (("latency", {"distribution": "fixed", "delay": 1}),
                             ("bandwidth-cap", {"bytes_per_round": 64})):
            spec = _spec(name, params, backend="auto")
            assert resolve_backend(spec) == "agent"


class TestSweepIntegration:
    def test_loss_rate_is_a_sweep_axis(self):
        from repro.api import Sweep, SweepRunner

        base = _spec("bernoulli-loss", {"p": 0.0}, backend="auto", rounds=8)
        sweep = Sweep.over(base, **{"network_params.p": [0.0, 0.2, 0.4]})
        result = SweepRunner(parallel=False).run(sweep)
        assert len(result.results) == 3
        losses = [run.total_lost() for run in result.results]
        assert losses[0] == 0
        assert losses[1] > 0 and losses[2] > losses[1]


class TestEagerValidation:
    """Every bad network request fails at spec construction, actionably."""

    def test_unknown_network_lists_known_models(self):
        with pytest.raises(KeyError, match="unknown network 'wifi'.*bernoulli-loss"):
            _spec("wifi", {})

    def test_missing_loss_probability(self):
        with pytest.raises(ValueError, match="invalid parameters for network 'bernoulli-loss'"):
            _spec("bernoulli-loss", {})

    def test_out_of_range_loss_probability(self):
        with pytest.raises(ValueError, match="p must be in \\[0, 1\\]"):
            _spec("bernoulli-loss", {"p": 1.5})

    def test_unknown_network_parameter(self):
        with pytest.raises(ValueError, match="invalid parameters for network"):
            _spec("bernoulli-loss", {"probability": 0.2})

    def test_unknown_delay_distribution(self):
        with pytest.raises(ValueError, match="unknown delay distribution 'pareto'"):
            _spec("latency", {"distribution": "pareto"})

    def test_negative_fixed_delay(self):
        with pytest.raises(ValueError, match="non-negative integer"):
            _spec("latency", {"distribution": "fixed", "delay": -1})

    def test_bad_uniform_delay_bounds(self):
        with pytest.raises(ValueError, match="low <= high"):
            _spec("latency", {"distribution": "uniform", "low": 5, "high": 2})

    def test_non_positive_bandwidth_budget(self):
        with pytest.raises(ValueError, match="positive integer"):
            _spec("bandwidth-cap", {"bytes_per_round": 0})

    def test_stacked_needs_layers(self):
        with pytest.raises(ValueError, match="non-empty 'layers'"):
            _spec("stacked", {"layers": []})

    def test_stacked_layer_needs_a_model_name(self):
        with pytest.raises(ValueError, match="naming a registered 'model'"):
            _spec("stacked", {"layers": [{"p": 0.1}]})

    def test_stacked_rejects_nesting(self):
        with pytest.raises(ValueError, match="cannot nest"):
            _spec("stacked", {"layers": [{"model": "stacked", "layers": []}]})

    def test_exchange_mode_rejects_latency(self):
        with pytest.raises(ValueError, match="atomic push/pull.*round\\s+engine cannot defer"):
            _spec("latency", {"distribution": "fixed", "delay": 2}, mode="exchange")

    def test_exchange_mode_rejects_stacked_latency(self):
        layers = {"layers": [{"model": "bernoulli-loss", "p": 0.1},
                             {"model": "latency", "distribution": "fixed", "delay": 1}]}
        with pytest.raises(ValueError, match="round\\s+engine cannot defer"):
            _spec("stacked", layers, mode="exchange")

    def test_exchange_mode_allows_loss_only_models(self):
        _spec("bernoulli-loss", {"p": 0.2}, mode="exchange")
        _spec("bandwidth-cap", {"bytes_per_round": 64}, mode="exchange")
        _spec("latency", {"distribution": "fixed", "delay": 0}, mode="exchange")

    def test_engine_rejects_latency_in_exchange_mode_too(self):
        with pytest.raises(ValueError, match="round engine cannot\\s+defer"):
            Simulation(
                PushSumRevert(0.1), UniformEnvironment(8), [1.0] * 8,
                mode="exchange", network=LatencyNetwork(distribution="fixed", delay=1),
            )

    def test_vectorized_backend_rejects_unvectorised_models(self):
        with pytest.raises(ValueError, match="network model 'latency' is not vectorised"):
            _spec("latency", {"distribution": "fixed", "delay": 1}, backend="vectorized")

    def test_vectorized_backend_rejects_lossy_sketch(self):
        with pytest.raises(ValueError, match="requires\\s+the agent engine"):
            _spec(
                "bernoulli-loss", {"p": 0.2}, backend="vectorized",
                protocol="count-sketch-reset",
                protocol_params={"bins": 8, "bits": 12},
                workload="constant",
            )


class TestCLI:
    """The ISSUE-3 acceptance command works end-to-end on both backends."""

    @pytest.mark.parametrize("backend", ["agent", "vectorized"])
    def test_run_with_network_flags(self, backend, capsys):
        code = cli_main([
            "run", "--protocol", "push-sum-revert", "--hosts", "64", "--rounds", "10",
            "--mode", "push", "--backend", backend,
            "--network", "bernoulli-loss", "--network-params", '{"p": 0.2}',
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "network=bernoulli-loss" in out
        assert f"backend={backend}" in out

    def test_bad_network_params_json_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main([
                "run", "--protocol", "push-sum-revert",
                "--network", "bernoulli-loss", "--network-params", "not-json",
            ])

    def test_unknown_network_is_a_clean_cli_error(self, capsys):
        code = cli_main(["run", "--protocol", "push-sum-revert", "--network", "wifi"])
        assert code == 2
        assert "unknown network" in capsys.readouterr().err

    def test_list_shows_network_models(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "network" in out
        assert "bernoulli-loss" in out


class TestLossSweepGolden:
    """The committed loss-sweep table reproduces (a slice re-run)."""

    GOLDEN = (
        pathlib.Path(__file__).resolve().parents[1]
        / "benchmarks" / "output" / "extension_loss_sweep.txt"
    )

    def test_committed_numbers_reproduce(self):
        if not self.GOLDEN.exists():  # pragma: no cover - broken checkout only
            pytest.skip(f"committed output {self.GOLDEN} is missing")
        rows = {}
        for line in self.GOLDEN.read_text().splitlines():
            cells = [cell.strip() for cell in line.split("|")]
            if len(cells) == 3 and cells[0] not in ("loss rate", "") and "-" not in cells[0][:1]:
                try:
                    rows[float(cells[0])] = (float(cells[1]), float(cells[2]))
                except ValueError:
                    continue
        assert set(rows) == {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}, "golden table lost rows"
        # Each (protocol, rate) cell is an independent seed-pinned run, so a
        # two-rate slice reproduces exactly those columns.
        rerun = run_loss_sweep(n_hosts=400, rounds=50, seed=0, loss_rates=(0.0, 0.3))
        for rate in (0.0, 0.3):
            psr, sketch = rows[rate]
            assert 100.0 * rerun.relative_plateau["push-sum-revert"][rate] == pytest.approx(
                psr, rel=0.02, abs=0.01
            )
            assert 100.0 * rerun.relative_plateau["count-sketch-reset"][rate] == pytest.approx(
                sketch, rel=0.02, abs=0.01
            )
