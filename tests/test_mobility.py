"""Tests for contact traces, synthetic Haggle generation and mobility models."""

import numpy as np
import pytest

from repro.mobility import (
    ContactRecord,
    ContactTrace,
    HAGGLE_DATASET_SIZES,
    RandomWaypointModel,
    average_degree_series,
    average_group_size_series,
    contact_duration_stats,
    generate_haggle_like_trace,
    haggle_dataset,
    intercontact_time_stats,
)


class TestContactRecord:
    def test_normalises_device_order(self):
        record = ContactRecord(5, 2, 0.0, 10.0)
        assert (record.a, record.b) == (2, 5)

    def test_rejects_self_contact(self):
        with pytest.raises(ValueError):
            ContactRecord(1, 1, 0.0, 10.0)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            ContactRecord(0, 1, 10.0, 10.0)

    def test_duration_and_activity(self):
        record = ContactRecord(0, 1, 10.0, 20.0)
        assert record.duration == 10.0
        assert record.active_at(10.0)
        assert record.active_at(19.9)
        assert not record.active_at(20.0)
        assert record.overlaps(15.0, 30.0)
        assert not record.overlaps(20.0, 30.0)


class TestContactTrace:
    def _trace(self):
        return ContactTrace(
            3,
            [
                ContactRecord(0, 1, 0.0, 100.0),
                ContactRecord(0, 1, 200.0, 300.0),
                ContactRecord(1, 2, 50.0, 150.0),
            ],
        )

    def test_duration(self):
        assert self._trace().duration == 300.0
        assert ContactTrace(2, []).duration == 0.0

    def test_rejects_out_of_range_devices(self):
        with pytest.raises(ValueError):
            ContactTrace(2, [ContactRecord(0, 5, 0.0, 1.0)])

    def test_adjacency_at(self):
        trace = self._trace()
        assert trace.adjacency_at(60.0)[0] == {1}
        assert trace.adjacency_at(60.0)[1] == {0, 2}
        assert trace.adjacency_at(175.0)[0] == set()
        assert trace.adjacency_at(250.0)[0] == {1}

    def test_adjacency_between_union(self):
        trace = self._trace()
        union = trace.adjacency_between(120.0, 220.0)
        assert union[1] == {0, 2}
        assert trace.adjacency_between(150.0, 199.0)[0] == set()

    def test_groups_at_respects_window(self):
        trace = self._trace()
        groups = trace.groups_at(300.0, window=600.0)
        assert {0, 1, 2} in groups
        groups_small_window = trace.groups_at(175.0, window=10.0)
        assert sorted(len(g) for g in groups_small_window) == [1, 1, 1]

    def test_overlapping_records_are_merged(self):
        trace = ContactTrace(
            2, [ContactRecord(0, 1, 0.0, 50.0), ContactRecord(0, 1, 25.0, 80.0)]
        )
        assert len(trace.records) == 1
        assert trace.records[0].start == 0.0
        assert trace.records[0].end == 80.0

    def test_from_snapshots_round_trip(self):
        snapshots = [
            (0.0, {0: {1}, 1: {0}, 2: set()}),
            (30.0, {0: {1}, 1: {0}, 2: set()}),
            (60.0, {0: set(), 1: {2}, 2: {1}}),
        ]
        trace = ContactTrace.from_snapshots(snapshots, 3, snapshot_length=30.0)
        assert trace.adjacency_at(10.0)[0] == {1}
        assert trace.adjacency_at(70.0)[1] == {2}
        assert trace.adjacency_at(70.0)[0] == set()
        # The 0-1 contact spans the first two snapshots and closes at 60 s.
        zero_one = [r for r in trace.records if {r.a, r.b} == {0, 1}][0]
        assert zero_one.start == 0.0
        assert zero_one.end == 60.0

    def test_csv_round_trip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(str(path))
        loaded = ContactTrace.from_csv(str(path), n_devices=3)
        assert len(loaded) == len(trace)
        assert loaded.adjacency_at(60.0) == trace.adjacency_at(60.0)

    def test_restricted_to_renumbers(self):
        trace = self._trace()
        sub = trace.restricted_to([1, 2])
        assert sub.n_devices == 2
        assert len(sub) == 1
        assert sub.adjacency_at(100.0)[0] == {1}

    def test_snapshots_iteration(self):
        trace = self._trace()
        snaps = list(trace.snapshots(step=100.0))
        assert len(snaps) == 4
        times = [t for t, _ in snaps]
        assert times == [0.0, 100.0, 200.0, 300.0]


class TestSyntheticHaggle:
    def test_dataset_sizes_match_paper(self):
        assert HAGGLE_DATASET_SIZES == {1: 9, 2: 12, 3: 41}

    def test_generator_validates_inputs(self):
        with pytest.raises(ValueError):
            generate_haggle_like_trace(0)
        with pytest.raises(ValueError):
            generate_haggle_like_trace(5, duration_hours=-1)

    def test_generated_trace_shape(self):
        trace = generate_haggle_like_trace(9, duration_hours=24.0, seed=1)
        assert trace.n_devices == 9
        assert trace.duration <= 24.0 * 3600.0 + 1.0
        assert len(trace) > 0

    def test_generated_trace_is_reproducible(self):
        a = generate_haggle_like_trace(9, duration_hours=12.0, seed=3)
        b = generate_haggle_like_trace(9, duration_hours=12.0, seed=3)
        assert len(a) == len(b)
        assert a.adjacency_at(3600.0) == b.adjacency_at(3600.0)

    def test_different_seeds_differ(self):
        a = generate_haggle_like_trace(9, duration_hours=12.0, seed=3)
        b = generate_haggle_like_trace(9, duration_hours=12.0, seed=4)
        assert any(
            a.adjacency_at(t) != b.adjacency_at(t) for t in (1800.0, 3600.0, 7200.0, 14400.0)
        )

    def test_groups_are_small_and_transient(self):
        trace = generate_haggle_like_trace(12, duration_hours=48.0, seed=2)
        _, sizes = average_group_size_series(trace, step_seconds=3600.0)
        assert max(sizes) <= 12
        assert min(sizes) >= 1
        # Group sizes must actually vary over time (a static clique would not).
        assert max(sizes) - min(sizes) > 0.5

    def test_dataset_presets(self):
        trace = haggle_dataset(1)
        assert trace.n_devices == 9
        with pytest.raises(ValueError):
            haggle_dataset(4)

    def test_diurnal_cycle_present(self):
        trace = generate_haggle_like_trace(20, duration_hours=48.0, seed=5, community_size=5)
        _, degrees = average_degree_series(trace, step_seconds=3600.0)
        # Peak activity should clearly exceed the overnight trough.
        assert max(degrees) > 2.0 * (min(degrees) + 0.05)


class TestTraceStats:
    def test_contact_duration_stats(self):
        trace = ContactTrace(
            2, [ContactRecord(0, 1, 0, 100), ContactRecord(0, 1, 200, 250)]
        )
        stats = contact_duration_stats(trace)
        assert stats["count"] == 2
        assert stats["mean"] == pytest.approx(75.0)
        assert stats["max"] == 100.0

    def test_contact_duration_stats_empty(self):
        assert contact_duration_stats(ContactTrace(2, []))["count"] == 0

    def test_intercontact_time_stats(self):
        trace = ContactTrace(
            2, [ContactRecord(0, 1, 0, 100), ContactRecord(0, 1, 400, 500)]
        )
        stats = intercontact_time_stats(trace)
        assert stats["count"] == 1
        assert stats["mean"] == pytest.approx(300.0)

    def test_intercontact_time_stats_empty(self):
        assert intercontact_time_stats(ContactTrace(2, []))["count"] == 0


class TestRandomWaypoint:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(5, speed_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointModel(5, arena_size=-1.0)

    def test_positions_stay_in_arena(self):
        model = RandomWaypointModel(10, arena_size=100.0, seed=1)
        for _ in range(20):
            model.advance(30.0)
        positions = model.positions()
        assert positions.shape == (10, 2)
        assert (positions >= -1e-9).all() and (positions <= 100.0 + 1e-9).all()

    def test_nodes_actually_move(self):
        model = RandomWaypointModel(5, arena_size=100.0, seed=1, pause_range=(0.0, 0.0))
        before = model.positions().copy()
        model.advance(60.0)
        after = model.positions()
        assert not np.allclose(before, after)

    def test_adjacency_radius(self):
        model = RandomWaypointModel(5, arena_size=10.0, radius=100.0, seed=1)
        graph = model.adjacency()
        assert all(len(neighbors) == 4 for neighbors in graph.values())
        sparse = model.adjacency(radius=0.0)
        assert all(len(neighbors) == 0 for neighbors in sparse.values())

    def test_to_trace(self):
        model = RandomWaypointModel(6, arena_size=200.0, radius=80.0, seed=2)
        trace = model.to_trace(duration_seconds=600.0, sample_interval=30.0)
        assert trace.n_devices == 6
        assert trace.duration <= 600.0 + 30.0 + 1e-6
