"""Integration tests pinning the paper's qualitative claims.

Each test corresponds to a statement in the paper's evaluation (Section V)
and checks the *shape* of the reproduced result: who wins, in which
direction, and roughly by how much.  Absolute numbers use scaled-down
populations, so tolerances are generous; the point is that the qualitative
conclusion of each figure holds in this implementation.
"""

import numpy as np
import pytest

from repro.experiments import run_fig10, run_fig6, run_fig8, run_fig9
from repro.metrics.convergence import reconvergence_round


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(n_hosts=1500, rounds=60, failure_round=20, seed=0)


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(n_hosts=1500, rounds=40, failure_round=20, bins=16, bits=18, seed=0)


@pytest.fixture(scope="module")
def fig10():
    return run_fig10(n_hosts=1500, rounds=60, failure_round=20, seed=0)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(sizes=(500, 2000, 5000), bins=16, bits=20, convergence_rounds=30, seed=0)


class TestSectionVAClaims:
    def test_uncorrelated_failures_have_no_adverse_effect(self, fig8):
        """Fig 8: 'massive uncorrelated node failures have no direct adverse
        effects on any instance of Push-Sum-Revert'."""
        for reversion, errors in fig8.errors.items():
            error_before = errors[18]
            error_after_recovery = errors[-1]
            # No curve should end dramatically worse than its pre-failure level.
            assert error_after_recovery <= error_before + 5.0

    def test_correlated_failures_break_static_push_sum(self, fig10):
        """Fig 10(a): the lambda=0 curve (static Push-Sum) never recovers —
        its error remains at the size of the shift in the true average."""
        static_plateau = fig10.plateau(0.0)
        assert static_plateau > 0.7 * 25.0

    def test_higher_lambda_faster_convergence_but_larger_error(self, fig10):
        """Fig 10(a): 'higher values of lambda result in faster convergence
        but result in greater error once the system has converged'."""
        recovery_05 = reconvergence_round(
            fig10.basic_errors[0.5], 15.0, disturbance_round=fig10.failure_round
        )
        recovery_01 = reconvergence_round(
            fig10.basic_errors[0.1], 15.0, disturbance_round=fig10.failure_round
        )
        assert recovery_05 is not None
        assert recovery_01 is None or recovery_05 <= recovery_01
        # ...but lambda=0.5 plateaus above lambda=0.1.
        assert fig10.plateau(0.5) > fig10.plateau(0.1)

    def test_full_transfer_reduces_plateau_error(self, fig10):
        """Fig 10(b): Full-Transfer lowers the converged error for the same
        lambda (paper: 2.13 at lambda=0.5, 0.694 at lambda=0.1)."""
        for reversion in (0.1, 0.5):
            assert fig10.plateau(reversion, full_transfer=True) < fig10.plateau(reversion)
        # Within scaled tolerances, the paper's headline numbers hold: the
        # lambda=0.1 plateau is small in absolute terms (paper: ~0.7 on a true
        # average of 25, i.e. under ~3), lambda=0.5 is a few times larger.
        assert fig10.plateau(0.1, full_transfer=True) < 3.0
        assert fig10.plateau(0.5, full_transfer=True) < 8.0

    def test_full_transfer_converges_quickly_at_high_lambda(self, fig10):
        """Fig 10(b): with lambda=0.5 the protocol converges within ~10 rounds
        of the failure."""
        recovery = reconvergence_round(
            fig10.full_transfer_errors[0.5], 5.0, disturbance_round=fig10.failure_round
        )
        assert recovery is not None
        assert recovery <= 15


class TestSectionVBClaims:
    def test_naive_sketch_counting_cannot_recover(self, fig9):
        """Fig 9: without propagation limiting the estimate increases
        monotonically, so after the failure the error stays at roughly the
        removed population."""
        removed = fig9.n_hosts * fig9.failure_fraction
        assert fig9.naive_final_error() > 0.5 * removed

    def test_count_sketch_reset_recovers_within_about_ten_rounds(self, fig9):
        """Fig 9: the algorithm 'reverts to its original state within 10
        rounds of a massive node failure'."""
        pre_failure_error = fig9.limited_errors[18]
        recovery = fig9.recovery_rounds(max(2.0 * pre_failure_error, 0.2 * fig9.n_hosts))
        assert recovery is not None
        assert recovery <= 15

    def test_counter_distribution_is_size_agnostic(self, fig6):
        """Fig 6: 'as the size of the network increases, the distribution of
        counter values (save for a tail at the high indices) remains
        constant' — compare the bit-0 and bit-2 medians across sizes."""
        for bit in (0, 2):
            medians = [
                float(np.median(fig6.counters[size][bit]))
                for size in fig6.sizes
                if bit in fig6.counters[size]
            ]
            assert max(medians) - min(medians) <= 3.0

    def test_counter_bound_is_roughly_linear_with_quarter_slope(self, fig6):
        """Fig 6 / Section IV-A: the high-probability bound grows linearly in
        the bit index with a shallow slope (paper fit: 7 + k/4)."""
        fit = fig6.pooled_fit
        assert 0.05 < fit.slope < 0.8
        assert 2.0 < fit.intercept < 14.0

    def test_expected_sketch_error_with_64_bins(self):
        """Section V-B: '64 buckets for an expected error of 9.7%'."""
        from repro.sketches.fm_sketch import expected_relative_error

        assert expected_relative_error(64) == pytest.approx(0.0975, abs=0.002)
