"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.profile == "quick"
        assert args.only is None

    def test_experiments_only_list(self):
        args = build_parser().parse_args(["experiments", "--only", "fig8", "fig9"])
        assert args.only == ["fig8", "fig9"]

    def test_demo_arguments(self):
        args = build_parser().parse_args(["demo", "--hosts", "50", "--reversion", "0.2"])
        assert args.hosts == 50
        assert args.reversion == 0.2

    def test_trace_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--dataset", "9"])


class TestCommands:
    def test_demo_runs_and_prints(self, capsys):
        exit_code = main(["demo", "--hosts", "60", "--rounds", "12", "--failure-round", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Push-Sum-Revert demo" in captured.out
        assert "stddev error" in captured.out

    def test_trace_summary_runs(self, capsys):
        exit_code = main(["trace", "--devices", "6", "--hours", "6", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "devices" in captured.out
        assert "avg group size" in captured.out

    def test_trace_csv_output(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        exit_code = main(
            ["trace", "--devices", "5", "--hours", "4", "--seed", "2", "--csv", str(path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        assert path.exists()
        assert path.read_text().startswith("device_a")

    def test_experiments_subset_writes_output(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(
            [
                "experiments",
                "--only",
                "fig9",
                "--no-ablations",
                "--output",
                str(output),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 9" in captured.out
        assert output.exists()
        assert "Figure 9" in output.read_text()


class TestRunCommand:
    def test_run_from_flags(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol", "push-sum-revert",
                "--hosts", "80",
                "--rounds", "10",
                "--seed", "3",
                "-P", "reversion=0.1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "push-sum-revert" in captured.out
        assert "stddev error" in captured.out
        assert "final error" in captured.out

    def test_run_from_config_with_flag_override(self, tmp_path, capsys):
        import json

        config = tmp_path / "spec.json"
        config.write_text(
            json.dumps(
                {
                    "protocol": "push-sum-revert",
                    "protocol_params": {"reversion": 0.1},
                    "n_hosts": 60,
                    "rounds": 8,
                    "seed": 1,
                    "events": [
                        {"event": "failure", "round": 4, "model": "uncorrelated",
                         "fraction": 0.5}
                    ],
                }
            )
        )
        exit_code = main(["run", "--config", str(config), "--rounds", "5", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["spec"]["rounds"] == 5  # flag overrode the config
        assert len(payload["result"]["rounds"]) == 5

    def test_run_requires_a_protocol(self):
        with pytest.raises(SystemExit):
            main(["run", "--hosts", "10"])

    def test_run_rejects_malformed_param(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "push-sum", "-P", "oops"])


class TestSweepCommand:
    def test_sweep_runs_grid_and_renders_table(self, tmp_path, capsys):
        import json

        config = tmp_path / "sweep.json"
        config.write_text(
            json.dumps(
                {
                    "base": {"protocol": "push-sum-revert", "n_hosts": 50, "rounds": 6},
                    "axes": {
                        "protocol": ["push-sum-revert", "push-sum"],
                        "environment": ["uniform", "ring"],
                        "seed": [0, 1, 2],
                    },
                }
            )
        )
        exit_code = main(["sweep", "--config", str(config), "--workers", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "12 runs (parallel)" in captured.out
        assert "final_error" in captured.out
        assert "push-sum-revert" in captured.out

    def test_sweep_serial_with_output_file(self, tmp_path, capsys):
        import json

        config = tmp_path / "sweep.json"
        config.write_text(
            json.dumps(
                {
                    "base": {"protocol": "push-sum-revert", "n_hosts": 40, "rounds": 5},
                    "axes": {"seed": [0, 1]},
                }
            )
        )
        output = tmp_path / "table.txt"
        exit_code = main(
            ["sweep", "--config", str(config), "--serial", "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2 runs (serial)" in captured.out
        assert "final_error" in output.read_text()


class TestCacheFlags:
    """The result-store surface: run/sweep --cache-dir and the cache subcommand."""

    def sweep_config(self, tmp_path):
        import json

        config = tmp_path / "sweep.json"
        config.write_text(
            json.dumps(
                {
                    "base": {"protocol": "push-sum-revert", "n_hosts": 40, "rounds": 5},
                    "axes": {"seed": [0, 1, 2]},
                }
            )
        )
        return str(config)

    def test_run_cache_hit_keeps_stdout_identical(self, tmp_path, capsys):
        argv = [
            "run", "--protocol", "push-sum-revert", "--hosts", "40", "--rounds", "5",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "cache miss (stored)" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "cache hit" in warm.err
        assert warm.out == cold.out

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        argv = [
            "run", "--protocol", "push-sum-revert", "--hosts", "40", "--rounds", "5",
            "--cache-dir", str(tmp_path / "cache"), "--no-cache",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "cache" not in captured.err
        assert not (tmp_path / "cache").exists()

    def test_sweep_warm_rerun_reports_all_cached_and_matches(self, tmp_path, capsys):
        config = self.sweep_config(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold_out, warm_out = tmp_path / "cold.txt", tmp_path / "warm.txt"
        base = ["sweep", "--config", config, "--serial", "--cache-dir", cache_dir]

        assert main(base + ["--output", str(cold_out)]) == 0
        cold = capsys.readouterr()
        assert "cache: 0/3 cells cached, 3 executed" in cold.out

        assert main(base + ["--output", str(warm_out)]) == 0
        warm = capsys.readouterr()
        assert "cache: 3/3 cells cached, 0 executed" in warm.out
        # The written table is bit-identical between cold and warm runs.
        assert warm_out.read_bytes() == cold_out.read_bytes()

    def test_cache_stats_prune_clear(self, tmp_path, capsys):
        config = self.sweep_config(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "--config", config, "--serial", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = capsys.readouterr().out
        assert "entries" in stats and "push-sum-revert" in stats

        assert main(["cache", "prune", "--cache-dir", cache_dir]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out

        assert main(["cache", "prune", "--cache-dir", cache_dir, "--older-than", "0"]) == 0
        assert "pruned 3 entries" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 0 entries" in capsys.readouterr().out

    def test_cache_prune_rejects_negative_age(self, tmp_path, capsys):
        exit_code = main(
            ["cache", "prune", "--cache-dir", str(tmp_path / "c"), "--older-than", "-1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "older_than_days" in captured.err

    def test_experiments_accept_cache_dir(self, tmp_path, capsys):
        argv = [
            "experiments", "--profile", "quick", "--only", "fig9", "--no-ablations",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        from repro.store import ResultStore

        assert len(ResultStore(str(tmp_path / "cache"))) == 2  # fig9's two variants


class TestListCommand:
    def test_list_prints_registries(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for expected in ("protocol", "environment", "failure", "workload",
                         "push-sum-revert", "count-sketch-reset", "uniform"):
            assert expected in captured.out


class TestCliErrorPaths:
    def test_run_build_time_error_is_clean(self, capsys):
        # Trace device-count mismatch only surfaces at build(); the CLI must
        # still render it as an error line, not a traceback.
        exit_code = main(
            ["run", "--protocol", "push-sum-revert", "--environment", "trace",
             "-E", "dataset=1", "--hosts", "10", "--rounds", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err
        assert "devices" in captured.err

    def test_sweep_axis_typo_is_clean(self, tmp_path, capsys):
        import json

        config = tmp_path / "sweep.json"
        config.write_text(
            json.dumps(
                {
                    "base": {"protocol": "push-sum-revert", "n_hosts": 20, "rounds": 2},
                    "axes": {"host": [10, 20]},
                }
            )
        )
        exit_code = main(["sweep", "--config", str(config)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown axis" in captured.err


class TestBackendFlag:
    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "push-sum-revert",
                                       "--backend", "gpu"])

    @pytest.mark.parametrize("backend", ["agent", "vectorized", "auto"])
    def test_run_with_explicit_backend(self, backend, capsys):
        exit_code = main(
            ["run", "--protocol", "push-sum-revert", "--hosts", "60",
             "--rounds", "6", "--backend", backend, "-P", "reversion=0.1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        resolved = "vectorized" if backend == "auto" else backend
        assert f"backend={resolved}" in captured.out

    def test_vectorized_backend_rejects_unsupported_scenario(self, capsys):
        exit_code = main(
            ["run", "--protocol", "invert-average", "--environment", "uniform",
             "--hosts", "60", "--rounds", "6", "--backend", "vectorized"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no vectorised kernel" in captured.err

    def test_vectorized_backend_runs_topology_scenario(self, capsys):
        exit_code = main(
            ["run", "--protocol", "push-sum-revert", "--environment", "ring",
             "--hosts", "60", "--rounds", "6", "--backend", "vectorized"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "backend: vectorized" in captured.out or "vectorized" in captured.out

    def test_experiments_backend_flag_parses(self):
        args = build_parser().parse_args(["experiments", "--backend", "agent"])
        assert args.backend == "agent"


class TestBenchCommand:
    def test_bench_smoke_writes_payload(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_core.json"
        exit_code = main(
            ["bench", "--sizes", "48", "96", "--rounds", "3", "--repeats", "1",
             "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "speedup" in captured.out
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "core-backends"
        backends = {record["backend"] for record in payload["records"]}
        assert backends == {"agent", "vectorized"}
        assert payload["speedups"]["push-sum-revert"]["48"] > 0
        # Every record carries throughput fields for the perf trajectory.
        for record in payload["records"]:
            assert record["ms_per_round"] > 0
            assert record["host_rounds_per_second"] > 0

    def test_bench_rejects_bad_sizes(self, capsys):
        exit_code = main(["bench", "--sizes", "1", "--repeats", "1"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_bench_unwritable_output_reports_cleanly(self, capsys):
        exit_code = main(["bench", "--sizes", "32", "--rounds", "2", "--repeats", "1",
                          "--output", "/nonexistent-dir/BENCH.json"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error: cannot write" in captured.err
        # The timings themselves were still printed before the failure.
        assert "speedup" in captured.out


class TestObsCommands:
    RUN_FLAGS = ["run", "--protocol", "push-sum-revert", "--hosts", "60",
                 "--rounds", "6", "--seed", "3"]

    def test_run_trace_flag_keeps_stdout_identical(self, tmp_path, capsys):
        assert main(list(self.RUN_FLAGS)) == 0
        bare = capsys.readouterr().out
        trace_path = tmp_path / "run.jsonl"
        assert main([*self.RUN_FLAGS, "--trace", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == bare  # all obs output goes to stderr
        assert "trace:" in captured.err
        assert trace_path.exists()

    def test_run_metrics_flag_prints_phase_table_to_stderr(self, capsys):
        assert main([*self.RUN_FLAGS, "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "phase" in captured.err and "total ms" in captured.err
        assert "phase" not in captured.out

    def test_obs_report_renders_recorded_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main([*self.RUN_FLAGS, "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(trace_path), "--every", "2"]) == 0
        out = capsys.readouterr().out
        assert "Phase-time breakdown" in out
        assert "Per-round counters" in out
        assert "messages_delivered" in out

    def test_obs_report_missing_file_is_clean(self, capsys):
        assert main(["obs", "report", "/nonexistent/trace.jsonl"]) == 2
        assert "error: cannot read" in capsys.readouterr().err

    def test_sweep_progress_and_trace(self, tmp_path, capsys):
        import json as json_module

        config = tmp_path / "sweep.json"
        config.write_text(json_module.dumps({
            "base": {"protocol": "push-sum-revert", "n_hosts": 50, "rounds": 5},
            "axes": {"seed": [0, 1]},
        }))
        trace_path = tmp_path / "sweep.jsonl"
        exit_code = main(["sweep", "--config", str(config), "--serial",
                          "--progress", "--trace", str(trace_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        heartbeats = [line for line in captured.err.splitlines()
                      if line.startswith("[sweep")]
        assert len(heartbeats) == 2 and "executed" in heartbeats[0]
        assert trace_path.exists()
