"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.profile == "quick"
        assert args.only is None

    def test_experiments_only_list(self):
        args = build_parser().parse_args(["experiments", "--only", "fig8", "fig9"])
        assert args.only == ["fig8", "fig9"]

    def test_demo_arguments(self):
        args = build_parser().parse_args(["demo", "--hosts", "50", "--reversion", "0.2"])
        assert args.hosts == 50
        assert args.reversion == 0.2

    def test_trace_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--dataset", "9"])


class TestCommands:
    def test_demo_runs_and_prints(self, capsys):
        exit_code = main(["demo", "--hosts", "60", "--rounds", "12", "--failure-round", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Push-Sum-Revert demo" in captured.out
        assert "stddev error" in captured.out

    def test_trace_summary_runs(self, capsys):
        exit_code = main(["trace", "--devices", "6", "--hours", "6", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "devices" in captured.out
        assert "avg group size" in captured.out

    def test_trace_csv_output(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        exit_code = main(
            ["trace", "--devices", "5", "--hours", "4", "--seed", "2", "--csv", str(path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        assert path.exists()
        assert path.read_text().startswith("device_a")

    def test_experiments_subset_writes_output(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(
            [
                "experiments",
                "--only",
                "fig9",
                "--no-ablations",
                "--output",
                str(output),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 9" in captured.out
        assert output.exists()
        assert "Figure 9" in output.read_text()
