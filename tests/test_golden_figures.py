"""Golden regression tests: the committed figure numbers must reproduce.

``benchmarks/output/fig{6,8,9,10,11}.txt`` hold the rendered tables of the
paper-reproduction figures at their committed configurations and seeds.
These tests re-run (cheap slices of) the same configurations and compare
against the numbers parsed from the committed files, so a backend rewiring
or kernel change cannot silently drift the reproduction.  Tolerances are
tight — the runs are seed-stable, so only float-rounding in the rendered
tables (3 decimals) and platform arithmetic differences are absorbed.

The slices exploit that every figure runs its variants independently:
``run_fig8(lambdas=(0.0, 0.1))`` reproduces exactly the ``lambda=0`` and
``lambda=0.1`` columns of the full table, and a ``max_hours``-truncated
Figure 11 reproduces the full run's early hours.
"""

import pathlib
import re

import pytest

from repro.experiments.fig6_counter_cdf import run_fig6
from repro.experiments.fig8_uncorrelated import run_fig8
from repro.experiments.fig9_counting_failure import run_fig9
from repro.experiments.fig10_correlated import run_fig10
from repro.experiments.fig11_traces import run_fig11

OUTPUT_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "output"

#: Rendered tables round to 3 decimals; allow that plus a little platform slack.
TOL = dict(rel=0.02, abs=6e-3)


def _load(name: str) -> str:
    path = OUTPUT_DIR / f"{name}.txt"
    if not path.exists():  # pragma: no cover - broken checkout only
        pytest.skip(f"committed figure output {path} is missing")
    return path.read_text()


def _parse_table(block: str):
    """Parse one rendered series table into {row key: {column: value}}."""
    lines = [line for line in block.splitlines() if "|" in line]
    lines = [line for line in lines if set(line.replace("|", "").strip()) != {"-"}]
    header = [cell.strip() for cell in lines[0].split("|")]
    rows = {}
    for line in lines[1:]:
        cells = [cell.strip() for cell in line.split("|")]
        try:
            values = {
                column: float(cell)
                for column, cell in zip(header[1:], cells[1:])
                if cell != ""
            }
        except ValueError:  # a second embedded header row — stop at it
            break
        rows[cells[0]] = values
    return header, rows


class TestFig8Golden:
    """fig8.txt: 5000 hosts, uncorrelated 50% failure at round 20, seed 0."""

    @pytest.fixture(scope="class")
    def golden(self):
        return _parse_table(_load("fig8"))[1]

    @pytest.fixture(scope="class")
    def rerun(self):
        return run_fig8(n_hosts=5000, rounds=60, failure_round=20,
                        lambdas=(0.0, 0.1), seed=0)

    @pytest.mark.parametrize("reversion", [0.0, 0.1])
    def test_error_series_match(self, golden, rerun, reversion):
        column = f"lambda={reversion:g}"
        for round_label, row in golden.items():
            expected = row[column]
            actual = rerun.errors[reversion][int(round_label) - 1]
            assert actual == pytest.approx(expected, **TOL), (
                f"fig8 {column} drifted at round {round_label}"
            )

    def test_headline_numbers(self, rerun):
        # Uncorrelated failures are harmless: the static protocol ends converged.
        assert rerun.final_error(0.0) < 2.0
        assert 5.0 < rerun.final_error(0.1) < 8.0


class TestFig9Golden:
    """fig9.txt: 5000 hosts each holding 1, 32x20 sketch, seed 0."""

    @pytest.fixture(scope="class")
    def golden(self):
        return _parse_table(_load("fig9"))[1]

    @pytest.fixture(scope="class")
    def rerun(self):
        return run_fig9(n_hosts=5000, rounds=40, failure_round=20,
                        bins=32, bits=20, seed=0)

    def test_series_match(self, golden, rerun):
        series = {
            "propagation limiting on": rerun.limited_errors,
            "propagation limiting off": rerun.naive_errors,
            "correct sum": rerun.truths,
        }
        for round_label, row in golden.items():
            index = int(round_label) - 1
            for column, values in series.items():
                assert values[index] == pytest.approx(row[column], **TOL), (
                    f"fig9 {column!r} drifted at round {round_label}"
                )

    def test_headline_numbers(self, rerun):
        # The naive sketch stays stuck near the removed population; the
        # cutoff-limited sketch recovers to the survivors within ~10 rounds.
        assert rerun.naive_final_error() == pytest.approx(2050.3, rel=0.05)
        assert rerun.limited_final_error() < 500.0
        assert rerun.recovery_rounds(500.0) is not None


class TestFig10Golden:
    """fig10.txt: 5000 hosts, highest-valued 50% removed at round 20, seed 0."""

    @pytest.fixture(scope="class")
    def golden(self):
        text = _load("fig10")
        panel_a, panel_b = text.split("Figure 10(b)")
        return _parse_table(panel_a)[1], _parse_table(panel_b)[1]

    @pytest.fixture(scope="class")
    def rerun(self):
        return run_fig10(n_hosts=5000, rounds=60, failure_round=20,
                         lambdas=(0.0, 0.1), seed=0)

    @pytest.mark.parametrize("reversion", [0.0, 0.1])
    def test_basic_panel_matches(self, golden, rerun, reversion):
        panel_a, _panel_b = golden
        column = f"lambda={reversion:g}"
        for round_label, row in panel_a.items():
            actual = rerun.basic_errors[reversion][int(round_label) - 1]
            assert actual == pytest.approx(row[column], **TOL), (
                f"fig10(a) {column} drifted at round {round_label}"
            )

    @pytest.mark.parametrize("reversion", [0.0, 0.1])
    def test_full_transfer_panel_matches(self, golden, rerun, reversion):
        _panel_a, panel_b = golden
        column = f"lambda={reversion:g}"
        for round_label, row in panel_b.items():
            actual = rerun.full_transfer_errors[reversion][int(round_label) - 1]
            assert actual == pytest.approx(row[column], **TOL), (
                f"fig10(b) {column} drifted at round {round_label}"
            )

    def test_headline_numbers(self, rerun):
        # Static push-sum never recovers (error ~= the 25-unit truth shift);
        # reversion recovers, and Full-Transfer ends with the lower plateau.
        assert rerun.plateau(0.0) == pytest.approx(25.1, rel=0.05)
        assert rerun.plateau(0.1) < 7.0
        assert rerun.plateau(0.1, full_transfer=True) < rerun.plateau(0.1)


class TestFig6Golden:
    """fig6.txt: converged 32x20 sketches; the 1000-host block and its fit."""

    @pytest.fixture(scope="class")
    def rerun(self):
        return run_fig6(sizes=(1000,), bins=32, bits=20,
                        convergence_rounds=30, seed=0)

    @pytest.fixture(scope="class")
    def golden_block(self):
        text = _load("fig6")
        blocks = [
            block for block in text.split("\n\n")
            if block.lstrip().startswith("1000 hosts")
            or "\n1000 hosts " in block
        ]
        assert blocks, "fig6.txt lost its 1000-host block"
        return _parse_table(blocks[0])[1]

    def test_low_bit_cdfs_match(self, rerun, golden_block):
        points = list(range(13))
        for bit in (0, 1, 2, 3):
            cdf = rerun.cdf(1000, bit, points)
            row = golden_block[f"bit {bit}"]
            for point in points:
                assert cdf[point] == pytest.approx(row[f"<= {point}"], rel=0.02, abs=0.01), (
                    f"fig6 bit-{bit} CDF drifted at counter {point}"
                )

    def test_fitted_bound_matches(self, rerun):
        golden_fits = re.search(
            r"^1000 hosts\s*\|\s*([\d.]+)\s*\|\s*([\d.]+)\s*$",
            _load("fig6"),
            re.MULTILINE,
        )
        assert golden_fits, "fig6.txt lost its fitted-bound row"
        intercept, slope = float(golden_fits.group(1)), float(golden_fits.group(2))
        fit = rerun.fits[1000]
        assert fit.intercept == pytest.approx(intercept, rel=0.02, abs=0.02)
        assert fit.slope == pytest.approx(slope, rel=0.05, abs=0.01)


class TestFig11Golden:
    """fig11.txt: dataset-1 trace replay; a truncated re-run pins the early hours."""

    MAX_HOURS = 4.0

    @pytest.fixture(scope="class")
    def golden(self):
        text = _load("fig11")
        sections = text.split("\n\n")
        average = next(s for s in sections if "dynamic average" in s and "dataset 1" in s)
        size = next(s for s in sections if "dynamic size" in s and "dataset 1" in s)
        return _parse_table(average)[1], _parse_table(size)[1]

    @pytest.fixture(scope="class")
    def rerun(self):
        # The committed file ran 24 trace hours; a truncation replays the
        # identical round prefix, so the early hourly rows must agree.
        return run_fig11(datasets=(1,), max_hours=self.MAX_HOURS,
                         bins=32, bits=16, identifiers_per_host=100, seed=0)

    def test_average_panel_early_hours_match(self, golden, rerun):
        average, _size = golden
        data = rerun.datasets[1]
        for hour_label, row in average.items():
            hour = int(hour_label)
            if hour >= self.MAX_HOURS:
                continue
            for label in ("lambda=0", "lambda=0.001", "lambda=0.01"):
                actual = data.average_errors[label][hour]
                assert actual == pytest.approx(row[label], rel=0.02, abs=1e-6), (
                    f"fig11 {label} drifted at hour {hour}"
                )
            assert data.group_size[hour] == pytest.approx(
                row["avg group size"], rel=0.02, abs=1e-6
            )

    def test_size_panel_early_hours_match(self, golden, rerun):
        _average, size = golden
        data = rerun.datasets[1]
        for hour_label, row in size.items():
            hour = int(hour_label)
            if hour >= self.MAX_HOURS:
                continue
            for label in ("reversion off", "reversion on", "reversion slow"):
                actual = data.size_errors[label][hour]
                assert actual == pytest.approx(row[label], rel=0.02, abs=1e-6), (
                    f"fig11 {label!r} drifted at hour {hour}"
                )
