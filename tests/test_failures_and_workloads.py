"""Tests for failure models, scheduled events, value distributions and scenarios."""

import numpy as np
import pytest

from repro.baselines import PushSum
from repro.environments import UniformEnvironment
from repro.failures import (
    BernoulliChurn,
    ChurnProcess,
    CorrelatedFailure,
    ExplicitFailure,
    FailureEvent,
    JoinEvent,
    UncorrelatedFailure,
    ValueChangeEvent,
)
from repro.simulator import Simulation
from repro.workloads import (
    Scenario,
    clustered_values,
    constant_values,
    correlated_failure_scenario,
    counting_failure_scenario,
    normal_values,
    trace_scenario,
    uncorrelated_failure_scenario,
    uniform_values,
    zipf_values,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestFailureModels:
    def test_uncorrelated_fraction(self, rng):
        model = UncorrelatedFailure(0.5)
        values = {i: float(i) for i in range(100)}
        failed = model.select(list(range(100)), values, rng)
        assert len(failed) == 50
        assert len(set(failed)) == 50

    def test_uncorrelated_zero_fraction(self, rng):
        assert UncorrelatedFailure(0.0).select([1, 2, 3], {1: 1.0, 2: 2.0, 3: 3.0}, rng) == []

    def test_uncorrelated_validates_fraction(self):
        with pytest.raises(ValueError):
            UncorrelatedFailure(1.5)

    def test_correlated_highest(self, rng):
        model = CorrelatedFailure(0.5, highest=True)
        values = {i: float(i) for i in range(10)}
        failed = model.select(list(range(10)), values, rng)
        assert sorted(failed) == [5, 6, 7, 8, 9]

    def test_correlated_lowest(self, rng):
        model = CorrelatedFailure(0.3, highest=False)
        values = {i: float(i) for i in range(10)}
        failed = model.select(list(range(10)), values, rng)
        assert sorted(failed) == [0, 1, 2]

    def test_explicit_failure_filters_dead_hosts(self, rng):
        model = ExplicitFailure([1, 5, 99])
        failed = model.select([1, 2, 3, 5], {1: 0, 2: 0, 3: 0, 5: 0}, rng)
        assert failed == [1, 5]

    def test_bernoulli_churn_rate(self, rng):
        model = BernoulliChurn(0.3)
        values = {i: 0.0 for i in range(2000)}
        failed = model.select(list(range(2000)), values, rng)
        assert 0.2 * 2000 < len(failed) < 0.4 * 2000

    def test_bernoulli_zero_probability(self, rng):
        assert BernoulliChurn(0.0).select([1, 2], {1: 0.0, 2: 0.0}, rng) == []

    def test_describe_contains_parameters(self):
        assert UncorrelatedFailure(0.25).describe()["fraction"] == 0.25
        assert CorrelatedFailure(0.5).describe()["highest"] is True
        assert BernoulliChurn(0.1).describe()["p"] == 0.1


class TestScheduledEvents:
    def _simulation(self, n=20, events=None):
        return Simulation(
            PushSum(),
            UniformEnvironment(n),
            uniform_values(n, seed=1),
            seed=1,
            mode="push",
            events=events or [],
        )

    def test_failure_event_applies_at_round(self):
        sim = self._simulation(events=[FailureEvent(round=2, model=UncorrelatedFailure(0.5))])
        sim.run(2)
        assert len(sim.alive_ids()) == 20
        sim.run(1)
        assert len(sim.alive_ids()) == 10

    def test_join_event_uses_value_factory(self):
        event = JoinEvent(round=1, count=3, value_factory=lambda rng: 42.0)
        sim = self._simulation(events=[event])
        sim.run(2)
        new_hosts = [h for h in sim.hosts.values() if h.joined_round == 1]
        assert len(new_hosts) == 3
        assert all(h.value == 42.0 for h in new_hosts)

    def test_value_change_event_updates_value_and_state(self):
        event = ValueChangeEvent(round=1, new_values={0: 99.0})
        sim = self._simulation(events=[event])
        sim.run(2)
        assert sim.hosts[0].value == 99.0
        assert sim.hosts[0].state.initial_value == 99.0

    def test_value_change_event_ignores_unknown_hosts(self):
        event = ValueChangeEvent(round=1, new_values={999: 1.0})
        sim = self._simulation(events=[event])
        sim.run(2)  # must not raise

    def test_churn_process_expands_to_events(self):
        process = ChurnProcess(start=2, stop=5, model=BernoulliChurn(0.1), arrivals_per_round=1)
        events = process.events()
        rounds = sorted(event.round for event in events)
        assert rounds == [2, 2, 3, 3, 4, 4]

    def test_event_describe(self):
        assert FailureEvent(round=3, model=UncorrelatedFailure(0.5)).describe()["round"] == 3
        assert JoinEvent(round=4, count=2).describe()["count"] == 2
        assert ValueChangeEvent(round=5, new_values={1: 2.0}).describe()["count"] == 1


class TestValueDistributions:
    def test_uniform_range_and_reproducibility(self):
        values = uniform_values(500, seed=9)
        assert len(values) == 500
        assert all(0.0 <= v < 100.0 for v in values)
        assert values == uniform_values(500, seed=9)

    def test_uniform_validates_bounds(self):
        with pytest.raises(ValueError):
            uniform_values(10, low=5.0, high=1.0)
        with pytest.raises(ValueError):
            uniform_values(-1)

    def test_constant_values(self):
        assert constant_values(4, 2.5) == [2.5, 2.5, 2.5, 2.5]
        assert constant_values(0) == []

    def test_normal_values(self):
        values = normal_values(2000, mean=10.0, std=2.0, seed=1)
        assert abs(np.mean(values) - 10.0) < 0.5
        with pytest.raises(ValueError):
            normal_values(10, std=-1.0)

    def test_zipf_values_positive_and_heavy_tailed(self):
        values = zipf_values(2000, exponent=1.8, seed=1)
        assert min(values) >= 1.0
        assert max(values) > 10 * np.median(values)
        with pytest.raises(ValueError):
            zipf_values(10, exponent=1.0)

    def test_clustered_values(self):
        values = clustered_values(3000, cluster_means=(0.0, 100.0), std=1.0, seed=1)
        below = sum(1 for v in values if v < 50.0)
        assert 0.4 * 3000 < below < 0.6 * 3000
        with pytest.raises(ValueError):
            clustered_values(10, cluster_means=())


class TestScenarios:
    def test_uncorrelated_scenario_structure(self):
        scenario = uncorrelated_failure_scenario(100, failure_round=5, rounds=20)
        assert scenario.n_hosts == 100
        assert scenario.rounds == 20
        assert scenario.events[0].round == 5
        env = scenario.build_environment()
        assert env.n == 100
        assert "uncorrelated" in scenario.name

    def test_correlated_scenario_uses_highest_failure(self):
        scenario = correlated_failure_scenario(50)
        model = scenario.events[0].model
        assert model.highest is True

    def test_counting_scenario_constant_values(self):
        scenario = counting_failure_scenario(30)
        assert set(scenario.values) == {1.0}

    def test_failure_round_inside_horizon(self):
        # nothing enforces it at construction, but descriptions must exist
        scenario = uncorrelated_failure_scenario(10, failure_round=2, rounds=5)
        description = scenario.describe()
        assert description["n_hosts"] == 10
        assert description["events"][0]["event"] == "failure"

    def test_trace_scenario_matches_dataset_size(self):
        scenario = trace_scenario(dataset=1, max_rounds=100)
        assert scenario.n_hosts == 9
        assert scenario.group_relative is True
        assert scenario.rounds == 100
        env = scenario.build_environment()
        assert env.trace.n_devices == 9

    def test_trace_scenario_validates_value_count(self):
        with pytest.raises(ValueError):
            trace_scenario(dataset=1, values=[1.0, 2.0])

    def test_scenario_runs_end_to_end(self):
        scenario = uncorrelated_failure_scenario(40, failure_round=3, rounds=8)
        sim = Simulation(
            PushSum(),
            scenario.build_environment(),
            scenario.values,
            seed=2,
            mode=scenario.mode,
            events=scenario.events,
        )
        result = sim.run(scenario.rounds)
        assert len(result.rounds) == 8
        assert result.rounds[-1].n_alive == 20
