"""Tests for the experiment harness (small configurations of every figure)."""

import numpy as np
import pytest

from repro.experiments import (
    render_fig10,
    render_fig11,
    render_fig6,
    render_fig8,
    render_fig9,
    run_adaptive_lambda_ablation,
    run_all_experiments,
    run_cutoff_slope_ablation,
    run_fig10,
    run_fig11,
    run_fig6,
    run_fig8,
    run_fig9,
    run_full_transfer_parameter_ablation,
    run_push_vs_pushpull_ablation,
    run_summation_cost_ablation,
)
from repro.api import run_scenario
from repro.experiments.fig8_uncorrelated import DEFAULT_LAMBDAS
from repro.experiments.runner import (
    PROFILES,
    ExperimentReport,
    lambda_sweep,
    scenario_specs,
)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(sizes=(200, 800), bins=8, bits=16, convergence_rounds=20, seed=1)

    def test_counters_collected_for_low_bits(self, result):
        for size in (200, 800):
            assert 0 in result.counters[size]
            assert 1 in result.counters[size]

    def test_cdfs_are_monotone(self, result):
        points = list(range(13))
        cdf = result.cdf(200, 0, points)
        assert all(np.diff(cdf) >= 0)
        assert cdf[-1] <= 1.0

    def test_low_bit_counters_are_small(self, result):
        # Bit 0 is sourced by ~half the hosts, so its counters converge fast.
        values = result.counters[800][0]
        assert np.quantile(values, 0.9) <= 10

    def test_fitted_slope_is_positive_and_shallow(self, result):
        assert 0.0 < result.pooled_fit.slope < 1.5
        assert 0.0 < result.pooled_fit.intercept < 15.0

    def test_distribution_roughly_size_independent(self, result):
        # The median counter of bit 0 should not differ wildly between sizes.
        median_small = float(np.median(result.counters[200][0]))
        median_large = float(np.median(result.counters[800][0]))
        assert abs(median_small - median_large) <= 3.0

    def test_render_mentions_paper_cutoff(self, result):
        text = render_fig6(result)
        assert "7+k/4" in text.replace(" ", "") or "paper" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_fig6(sizes=(10,), bins=4, bits=4, convergence_rounds=1, min_samples=1000)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(n_hosts=600, rounds=40, failure_round=15, lambdas=(0.0, 0.01, 0.5), seed=1)

    def test_series_lengths(self, result):
        assert set(result.errors) == {0.0, 0.01, 0.5}
        assert all(len(series) == 40 for series in result.errors.values())
        assert len(result.truths) == 40

    def test_all_lambdas_survive_uncorrelated_failure(self, result):
        # No curve should blow up after the failure; the static protocol and
        # the small-lambda variants end near zero error.
        assert result.final_error(0.0) < 3.0
        assert result.final_error(0.01) < 3.0
        assert result.final_error(0.5) < 25.0

    def test_truth_stays_near_fifty(self, result):
        assert abs(result.truths[-1] - 50.0) < 5.0

    def test_error_at_accessor(self, result):
        assert result.error_at(0.0, 39) == result.final_error(0.0)

    def test_render_contains_lambdas(self, result):
        text = render_fig8(result)
        assert "lambda=0.5" in text
        assert "round" in text

    def test_failure_round_validation(self):
        with pytest.raises(ValueError):
            run_fig8(n_hosts=10, rounds=5, failure_round=10)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(n_hosts=800, rounds=35, failure_round=15, bins=16, bits=18, seed=1)

    def test_naive_variant_never_recovers(self, result):
        # The naive estimate stays near the pre-failure population, so its
        # error is of the order of the removed half.
        assert result.naive_final_error() > 0.25 * 800

    def test_limited_variant_recovers(self, result):
        assert result.limited_final_error() < 0.25 * 800
        assert result.recovery_rounds(0.25 * 800) is not None

    def test_truth_halves_at_failure(self, result):
        assert result.truths[14] == 800.0
        assert result.truths[-1] == 400.0

    def test_render_labels(self, result):
        text = render_fig9(result)
        assert "propagation limiting on" in text
        assert "propagation limiting off" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(
            n_hosts=800, rounds=50, failure_round=15, lambdas=(0.0, 0.1, 0.5), seed=1
        )

    def test_truth_drops_after_failure(self, result):
        assert result.truths[10] == pytest.approx(50.0, abs=3.0)
        assert result.truths[-1] == pytest.approx(25.0, abs=3.0)

    def test_static_protocol_never_recovers(self, result):
        assert result.plateau(0.0) > 15.0

    def test_reversion_recovers(self, result):
        assert result.plateau(0.5) < result.plateau(0.0)
        assert result.plateau(0.1, full_transfer=True) < 5.0

    def test_full_transfer_improves_plateau(self, result):
        assert result.plateau(0.1, full_transfer=True) <= result.plateau(0.1) + 1e-9

    def test_larger_lambda_recovers_faster(self, result):
        fast = result.recovery_rounds(0.5, threshold=12.0)
        slow = result.recovery_rounds(0.1, threshold=12.0)
        assert fast is not None
        assert slow is None or fast <= slow

    def test_render_has_both_panels(self, result):
        text = render_fig10(result)
        assert "Figure 10(a)" in text
        assert "Figure 10(b)" in text

    def test_can_skip_full_transfer(self):
        result = run_fig10(
            n_hosts=100, rounds=10, failure_round=5, lambdas=(0.0,), include_full_transfer=False
        )
        assert result.full_transfer_errors == {}
        assert "Figure 10(b)" not in render_fig10(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(
            datasets=(1,),
            max_hours=6.0,
            average_lambdas=(0.0, 0.01),
            bins=8,
            bits=12,
            identifiers_per_host=50,
            seed=1,
        )

    def test_dataset_structure(self, result):
        data = result.datasets[1]
        assert data.n_devices == 9
        assert len(data.hours) == len(data.group_size)
        assert set(data.average_errors) == {"lambda=0", "lambda=0.01"}
        assert set(data.size_errors) == {"reversion off", "reversion on", "reversion slow"}

    def test_hourly_series_lengths_match(self, result):
        data = result.datasets[1]
        for series in list(data.average_errors.values()) + list(data.size_errors.values()):
            assert len(series) == len(data.hours)

    def test_group_sizes_plausible(self, result):
        data = result.datasets[1]
        finite = [s for s in data.group_size if np.isfinite(s)]
        assert finite
        assert all(1.0 <= s <= 9.0 for s in finite)

    def test_reversion_tracks_group_size_better_than_static(self, result):
        data = result.datasets[1]
        assert data.mean_error("reversion on", size=True) <= data.mean_error(
            "reversion off", size=True
        )

    def test_render_contains_dataset_header(self, result):
        text = render_fig11(result)
        assert "dataset 1" in text
        assert "avg group size" in text


class TestAblations:
    def test_push_vs_pushpull(self):
        result = run_push_vs_pushpull_ablation(n_hosts=500, rounds=30, seed=1)
        assert result.outcomes["pushpull"] <= result.outcomes["push"]

    def test_adaptive_lambda_runs(self):
        result = run_adaptive_lambda_ablation(n_hosts=400, rounds=40, seed=1)
        assert set(result.outcomes) == {"fixed", "adaptive"}

    def test_full_transfer_parameters(self):
        result = run_full_transfer_parameter_ablation(
            n_hosts=300, rounds=40, parcel_counts=(2, 4), history_lengths=(3,), seed=1
        )
        assert len(result.outcomes) == 2
        assert all(np.isfinite(v) for v in result.outcomes.values())

    def test_cutoff_slope(self):
        result = run_cutoff_slope_ablation(
            n_hosts=400, rounds=30, intercepts=(4.0, 12.0), bins=8, bits=14, seed=1
        )
        assert len(result.outcomes) == 2

    def test_summation_cost(self):
        result = run_summation_cost_ablation()
        assert result.outcomes["ratio"] > 1.0
        assert "invert-average (per sum, sketch amortised)" in result.outcomes

    def test_ablation_render(self):
        result = run_summation_cost_ablation()
        text = result.render()
        assert "Ablation" in text
        assert "ratio" in text


class TestRunner:
    def test_profiles_exist(self):
        assert "quick" in PROFILES
        assert "full" in PROFILES

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_all_experiments("enormous")

    def test_subset_run(self):
        report = run_all_experiments("quick", only=["fig8"], include_ablations=False)
        assert set(report.results) == {"fig8"}
        assert "fig8" in report.text()

    def test_report_sections_in_numeric_figure_order(self):
        report = ExperimentReport(profile="quick")
        for name in ("fig10", "fig11", "fig6", "fig8", "fig9", "ablations"):
            report.rendered[name] = f"section {name}"
        assert report.section_names() == ["fig6", "fig8", "fig9", "fig10", "fig11", "ablations"]
        text = report.text()
        assert text.index("## fig6") < text.index("## fig9") < text.index("## fig10")
        assert text.index("## fig11") < text.index("## ablations")


class TestScenarioProfiles:
    def test_every_profile_has_engine_level_specs(self):
        for profile in PROFILES:
            specs = scenario_specs(profile)
            assert {"fig8", "fig9", "fig10", "fig11"} <= set(specs)

    def test_profiles_share_numbers_with_specs(self):
        for profile in PROFILES:
            specs = scenario_specs(profile)
            assert PROFILES[profile]["fig8"]["n_hosts"] == specs["fig8"].n_hosts
            assert PROFILES[profile]["fig9"]["rounds"] == specs["fig9"].rounds
            assert PROFILES[profile]["fig9"]["bins"] == specs["fig9"].protocol_params["bins"]
            assert PROFILES[profile]["fig10"]["n_hosts"] == specs["fig10"].n_hosts

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            scenario_specs("enormous")

    def test_fig8_spec_runs_and_rides_through_failure(self):
        spec = scenario_specs("quick")["fig8"].replace(n_hosts=300, rounds=35)
        result = run_scenario(spec)
        assert result.alive_counts()[-1] == 150
        # Fig 8's point: an uncorrelated failure barely moves the estimate —
        # the post-failure error stays at the converged plateau, far below
        # the initial convergence transient.
        assert result.final_error() < result.errors()[0] / 10.0

    def test_lambda_sweep_matches_paper_grid(self):
        sweep = lambda_sweep("quick", figure="fig10", seeds=2)
        assert len(sweep) == len(DEFAULT_LAMBDAS) * 2
        reversions = {spec.protocol_params["reversion"] for spec in sweep.specs()}
        assert reversions == set(DEFAULT_LAMBDAS)
        with pytest.raises(ValueError):
            lambda_sweep("quick", figure="fig6")
