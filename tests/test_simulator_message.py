"""Tests for messages and bandwidth accounting."""

import numpy as np
import pytest

from repro.simulator.message import BandwidthMeter, Message, estimate_payload_size


class TestEstimatePayloadSize:
    def test_none_is_free(self):
        assert estimate_payload_size(None) == 0

    def test_scalar_is_eight_bytes(self):
        assert estimate_payload_size(3.14) == 8
        assert estimate_payload_size(7) == 8

    def test_bool_is_one_byte(self):
        assert estimate_payload_size(True) == 1

    def test_tuple_sums_elements(self):
        assert estimate_payload_size((1.0, 2.0)) == 16

    def test_numpy_float_array_uses_nbytes(self):
        arr = np.zeros((4, 4), dtype=np.int64)
        assert estimate_payload_size(arr) == arr.nbytes

    def test_numpy_bool_array_is_packed(self):
        arr = np.zeros(16, dtype=bool)
        assert estimate_payload_size(arr) == 2

    def test_dict_sums_values(self):
        assert estimate_payload_size({"a": 1.0, "b": (2.0, 3.0)}) == 24

    def test_string_uses_utf8_length(self):
        assert estimate_payload_size("abc") == 3


class TestMessage:
    def test_self_message_detection(self):
        assert Message(1, 1, (0.5, 0.5), 0).is_self_message
        assert not Message(1, 2, (0.5, 0.5), 0).is_self_message

    def test_self_message_costs_nothing(self):
        assert Message(1, 1, (0.5, 0.5), 0).size_bytes() == 0

    def test_peer_message_costs_payload(self):
        assert Message(1, 2, (0.5, 0.5), 0).size_bytes() == 16


class TestBandwidthMeter:
    def test_record_accumulates_per_round_and_host(self):
        meter = BandwidthMeter()
        meter.record(Message(1, 2, (0.5, 0.5), 0))
        meter.record(Message(3, 2, (0.5, 0.5), 0))
        meter.record(Message(1, 4, (0.5, 0.5), 1))
        assert meter.bytes_in_round(0) == 32
        assert meter.bytes_in_round(1) == 16
        assert meter.total_bytes == 48
        assert meter.total_messages == 3
        assert meter.bytes_per_host[1] == 32

    def test_self_messages_are_ignored(self):
        meter = BandwidthMeter()
        meter.record(Message(1, 1, (0.5, 0.5), 0))
        assert meter.total_bytes == 0
        assert meter.total_messages == 0

    def test_size_override(self):
        meter = BandwidthMeter()
        meter.record(Message(1, 2, (0.5, 0.5), 0), size=100)
        assert meter.total_bytes == 100

    def test_record_exchange_counts_both_directions(self):
        meter = BandwidthMeter()
        meter.record_exchange(3, 1, 2, size=10)
        assert meter.bytes_in_round(3) == 20
        assert meter.total_messages == 2
        assert meter.bytes_per_host[1] == 10
        assert meter.bytes_per_host[2] == 10

    def test_rounds_listing(self):
        meter = BandwidthMeter()
        meter.record(Message(1, 2, 1.0, 5))
        meter.record(Message(1, 2, 1.0, 2))
        assert meter.rounds() == [2, 5]

    def test_merge_combines_counters(self):
        a = BandwidthMeter()
        b = BandwidthMeter()
        a.record(Message(1, 2, 1.0, 0))
        b.record(Message(2, 3, 1.0, 0))
        b.record(Message(2, 3, 1.0, 1))
        a.merge(b)
        assert a.total_messages == 3
        assert a.bytes_in_round(0) == 16
        assert a.bytes_in_round(1) == 8
