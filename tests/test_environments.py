"""Tests for the gossip environments."""

import numpy as np
import pytest

from repro.environments import (
    NeighborhoodEnvironment,
    SpatialGridEnvironment,
    TraceEnvironment,
    UniformEnvironment,
)
from repro.mobility.traces import ContactRecord, ContactTrace
from repro.topology import grid_graph


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestUniformEnvironment:
    def test_selects_live_peer_not_self(self, rng):
        env = UniformEnvironment(10)
        alive = set(range(10))
        for host in range(10):
            peers = env.select_peers(host, alive, 0, 1, rng)
            assert len(peers) == 1
            assert peers[0] != host
            assert peers[0] in alive

    def test_never_selects_failed_hosts(self, rng):
        env = UniformEnvironment(10)
        alive = {0, 1, 2}
        for _ in range(50):
            peers = env.select_peers(0, alive, 0, 1, rng)
            assert peers[0] in {1, 2}

    def test_multiple_distinct_peers(self, rng):
        env = UniformEnvironment(20)
        peers = env.select_peers(0, set(range(20)), 0, 5, rng)
        assert len(peers) == 5
        assert len(set(peers)) == 5

    def test_isolated_population_returns_empty(self, rng):
        env = UniformEnvironment(1)
        assert env.select_peers(0, {0}, 0, 1, rng) == []

    def test_count_capped_by_population(self, rng):
        env = UniformEnvironment(3)
        peers = env.select_peers(0, {0, 1, 2}, 0, 10, rng)
        assert sorted(peers) == [1, 2]

    def test_register_host_extends_id_space(self, rng):
        env = UniformEnvironment(3)
        env.register_host(7)
        assert env.n == 8

    def test_default_groups_are_global(self, rng):
        env = UniformEnvironment(5)
        assert env.groups({0, 1, 2}, 0) == [{0, 1, 2}]
        assert env.groups(set(), 0) == []

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError):
            UniformEnvironment(-1)


class TestNeighborhoodEnvironment:
    def test_peers_restricted_to_neighbors(self, rng):
        env = NeighborhoodEnvironment(grid_graph(3, 3))
        alive = set(range(9))
        for _ in range(20):
            peers = env.select_peers(4, alive, 0, 1, rng)
            assert peers[0] in {1, 3, 5, 7}

    def test_dead_neighbors_excluded(self, rng):
        env = NeighborhoodEnvironment(grid_graph(3, 1))  # path 0-1-2
        assert env.select_peers(0, {0, 2}, 0, 1, rng) == []

    def test_groups_are_components(self):
        adjacency = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        env = NeighborhoodEnvironment(adjacency)
        groups = env.groups({0, 1, 2, 3}, 0)
        assert sorted(sorted(g) for g in groups) == [[0, 1], [2, 3]]

    def test_adjacency_symmetrised(self, rng):
        env = NeighborhoodEnvironment({0: {1}, 1: set()})
        assert 0 in env.adjacency[1]

    def test_connect_and_disconnect(self, rng):
        env = NeighborhoodEnvironment({0: set(), 1: set()})
        env.connect(0, 1)
        assert env.select_peers(0, {0, 1}, 0, 1, rng) == [1]
        env.disconnect(0, 1)
        assert env.select_peers(0, {0, 1}, 0, 1, rng) == []

    def test_connect_self_loop_rejected(self):
        env = NeighborhoodEnvironment({0: set()})
        with pytest.raises(ValueError):
            env.connect(0, 0)

    def test_register_host_adds_isolated_node(self, rng):
        env = NeighborhoodEnvironment({0: {1}, 1: {0}})
        env.register_host(2)
        assert env.select_peers(2, {0, 1, 2}, 0, 1, rng) == []


class TestSampleDistinct:
    """Regression: peer sampling must stay random when every candidate is taken."""

    def test_full_draw_is_a_random_permutation(self, rng):
        from repro.environments.base import GossipEnvironment

        candidates = [10, 20, 30, 40]
        seen_orders = set()
        for _ in range(60):
            picks = GossipEnvironment._sample_distinct(candidates, 10, rng)
            assert sorted(picks) == candidates  # everyone still included
            seen_orders.add(tuple(picks))
        # Previously the unshuffled candidate list came back every time;
        # a random permutation produces many distinct orders in 60 draws.
        assert len(seen_orders) > 1

    def test_low_degree_host_does_not_always_gossip_first_neighbor(self, rng):
        # Exchange mode uses peers[0] only, so a degree-2 host whose draw
        # came back in adjacency order would gossip its lowest-id neighbour
        # every single round.
        env = NeighborhoodEnvironment({0: {1, 2}, 1: {0}, 2: {0}})
        alive = {0, 1, 2}
        first_peers = {env.select_peers(0, alive, t, 2, rng)[0] for t in range(40)}
        assert first_peers == {1, 2}


class TestSpatialGridEnvironment:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            SpatialGridEnvironment(0, 5)

    def test_peers_are_live_and_distinct(self, rng):
        env = SpatialGridEnvironment(5, 5)
        alive = set(range(25))
        for host in (0, 12, 24):
            peers = env.select_peers(host, alive, 0, 1, rng)
            assert all(p in alive and p != host for p in peers)

    def test_walk_peer_reachable_only_through_live_hosts(self, rng):
        env = SpatialGridEnvironment(3, 1)  # path 0-1-2
        # Host 1 dead: host 0 can never reach host 2 by walking.
        for _ in range(30):
            peers = env.select_peers(0, {0, 2}, 0, 1, rng)
            assert peers == []

    def test_ring_selection_mode(self, rng):
        env = SpatialGridEnvironment(5, 5, walk=False)
        alive = set(range(25))
        counts = {}
        for _ in range(200):
            peers = env.select_peers(12, alive, 0, 1, rng)
            if peers:
                counts[peers[0]] = counts.get(peers[0], 0) + 1
        # Neighbours at distance 1 should dominate under the 1/d^2 law.
        near = sum(counts.get(p, 0) for p in (7, 11, 13, 17))
        assert near > sum(counts.values()) * 0.4

    def test_neighbors_are_grid_adjacent(self):
        env = SpatialGridEnvironment(3, 3)
        assert sorted(env.neighbors(4, set(range(9)), 0)) == [1, 3, 5, 7]

    def test_groups_follow_grid_components(self):
        env = SpatialGridEnvironment(3, 1)
        groups = env.groups({0, 2}, 0)
        assert sorted(sorted(g) for g in groups) == [[0], [2]]

    def test_register_beyond_grid_rejected(self):
        env = SpatialGridEnvironment(2, 2)
        with pytest.raises(ValueError):
            env.register_host(4)

    def test_truncated_walk_fails_the_attempt(self, rng):
        # Regression: a walk that dead-ends before completing its sampled
        # length must return None (the attempt is retried with a fresh
        # distance), NOT the dead-end host — returning the dead end
        # over-weights short distances next to failed regions and distorts
        # the 1/d² long-link distribution.  A dead pocket is modelled by
        # pruning the back edge, the way a directed corridor would look.
        env = SpatialGridEnvironment(3, 1)  # path 0-1-2
        env.adjacency[1] = {2}
        env.adjacency[2] = set()
        alive = {0, 1, 2}
        for _ in range(20):
            # The walk is forced 0 -> 1 -> 2 and then strands with its
            # remaining steps unspent; host 2 must not be reported.
            assert env._random_walk(0, 5, alive, rng) is None

    def test_walk_of_completed_length_still_returns_peer(self, rng):
        env = SpatialGridEnvironment(3, 1)
        results = {env._random_walk(0, 2, {0, 1, 2}, rng) for _ in range(50)}
        # A 2-step walk from 0 on the path either returns home (None) or
        # reaches host 2; both happen, and the dead end never appears.
        assert results == {None, 2}

    def test_dead_pocket_distribution_not_overweighted(self, rng):
        # Hosts next to a failed region keep drawing valid long links
        # rather than collapsing onto the pocket boundary.
        env = SpatialGridEnvironment(4, 4)
        alive = set(range(16)) - {5, 6, 9, 10}  # the centre block is dead
        counts = {}
        for _ in range(300):
            for peer in env.select_peers(0, alive, 0, 1, rng):
                counts[peer] = counts.get(peer, 0) + 1
        assert set(counts) <= alive - {0}
        # The surviving ring stays reachable through live-host walks: a
        # healthy spread of distances shows up, not just hosts 1 and 4.
        assert len(counts) >= 6


def _two_phase_trace():
    """Devices 0-1 together for 10 minutes, then 1-2 together for 10 minutes."""
    records = [
        ContactRecord(0, 1, 0.0, 600.0),
        ContactRecord(1, 2, 600.0, 1200.0),
    ]
    return ContactTrace(3, records, name="two-phase")


class TestTraceEnvironment:
    def test_round_time_mapping(self):
        env = TraceEnvironment(_two_phase_trace(), round_seconds=30.0)
        assert env.time_of_round(0) == 0.0
        assert env.time_of_round(10) == 300.0
        assert env.total_rounds() == 41

    def test_peers_follow_current_contacts(self, rng):
        env = TraceEnvironment(_two_phase_trace(), round_seconds=30.0)
        alive = {0, 1, 2}
        assert env.select_peers(0, alive, 5, 1, rng) == [1]
        assert env.select_peers(2, alive, 5, 1, rng) == []
        assert env.select_peers(2, alive, 25, 1, rng) == [1]
        assert env.select_peers(0, alive, 25, 1, rng) == []

    def test_broadcast_returns_all_in_range(self, rng):
        trace = ContactTrace(
            3, [ContactRecord(0, 1, 0, 100), ContactRecord(0, 2, 0, 100)], name="star"
        )
        env = TraceEnvironment(trace, round_seconds=30.0, broadcast=True)
        assert sorted(env.select_peers(0, {0, 1, 2}, 0, 1, rng)) == [1, 2]

    def test_groups_use_trailing_window_union(self):
        env = TraceEnvironment(_two_phase_trace(), round_seconds=30.0, group_window_seconds=600.0)
        alive = {0, 1, 2}
        # At t=900s the live window [300, 900] covers the tail of the 0-1
        # contact and the 1-2 contact, so everybody is one group.
        groups_mid = env.groups(alive, 30)
        assert sorted(len(g) for g in groups_mid) == [3]
        # Shortly after the start only 0-1 have ever met.
        groups_early = env.groups(alive, 10)
        assert sorted(len(g) for g in groups_early) == [1, 2]

    def test_groups_include_isolated_hosts_as_singletons(self):
        env = TraceEnvironment(_two_phase_trace(), round_seconds=30.0)
        groups = env.groups({0, 1, 2}, 0)
        assert set().union(*groups) == {0, 1, 2}

    def test_zero_window_uses_instantaneous_adjacency(self):
        env = TraceEnvironment(_two_phase_trace(), round_seconds=30.0, group_window_seconds=0.0)
        groups = env.groups({0, 1, 2}, 25)
        assert {1, 2} in groups

    def test_register_host_beyond_trace_rejected(self):
        env = TraceEnvironment(_two_phase_trace())
        with pytest.raises(ValueError):
            env.register_host(3)

    def test_invalid_round_seconds_rejected(self):
        with pytest.raises(ValueError):
            TraceEnvironment(_two_phase_trace(), round_seconds=0.0)
