"""Tests for CDFs, series helpers, cutoff fitting and text rendering."""

import numpy as np
import pytest

from repro.analysis import (
    cdf_at,
    downsample,
    empirical_cdf,
    fit_linear_cutoff,
    format_number,
    moving_average,
    quantile,
    render_series_table,
    render_table,
    series_summary,
)


class TestCDF:
    def test_empirical_cdf_monotone(self):
        values, probabilities = empirical_cdf([3.0, 1.0, 2.0, 2.0])
        assert list(values) == [1.0, 2.0, 2.0, 3.0]
        assert probabilities[-1] == 1.0
        assert all(np.diff(probabilities) >= 0)

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_cdf_at_points(self):
        probabilities = cdf_at([1, 2, 3, 4], [0, 2, 10])
        assert list(probabilities) == [0.0, 0.5, 1.0]

    def test_quantile(self):
        assert quantile(list(range(101)), 0.5) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestSeriesHelpers:
    def test_moving_average_ramp(self):
        assert moving_average([2.0, 4.0, 6.0], 2) == [2.0, 3.0, 5.0]
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_downsample_keeps_endpoints(self):
        assert downsample(list(range(10)), 4) == [0, 4, 8, 9]
        assert downsample([], 3) == []
        with pytest.raises(ValueError):
            downsample([1], 0)

    def test_series_summary(self):
        summary = series_summary([1.0, 5.0, 3.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["final"] == 3.0
        assert series_summary([])["count"] == 0

    def test_series_summary_ignores_nan(self):
        summary = series_summary([float("nan"), 2.0, 4.0])
        assert summary["mean"] == pytest.approx(3.0)


class TestCutoffFit:
    def test_fit_recovers_linear_bound(self):
        rng = np.random.default_rng(1)
        counters_by_bit = {
            k: np.clip(rng.normal(loc=2.0 + 0.5 * k, scale=0.5, size=500), 0, None)
            for k in range(8)
        }
        fit = fit_linear_cutoff(counters_by_bit, probability=0.99)
        assert 0.4 < fit.slope < 0.6
        assert fit.intercept > 2.0
        assert fit(4) == pytest.approx(fit.intercept + 4 * fit.slope)

    def test_fit_excludes_sparse_bits(self):
        counters_by_bit = {0: [1] * 100, 1: [2] * 100, 7: [50]}
        fit = fit_linear_cutoff(counters_by_bit, min_samples=10)
        assert 7 not in fit.per_bit_bounds

    def test_fit_requires_two_bits(self):
        with pytest.raises(ValueError):
            fit_linear_cutoff({0: [1] * 100}, min_samples=10)

    def test_fit_validates_probability(self):
        with pytest.raises(ValueError):
            fit_linear_cutoff({0: [1] * 20, 1: [2] * 20}, probability=0.0)

    def test_max_residual(self):
        counters_by_bit = {k: [float(k)] * 50 for k in range(5)}
        fit = fit_linear_cutoff(counters_by_bit)
        assert fit.max_residual() < 1e-6


class TestRendering:
    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(3.14159) == "3.142"
        assert format_number(float("nan")) == "nan"
        assert format_number(123456.0) == "123456"
        assert format_number(1.23e-7) == "1.23e-07"
        assert format_number("text") == "text"

    def test_render_table_alignment_and_rows(self):
        table = render_table(["name", "value"], [["a", 1.5], ["bbbb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "bbbb" in lines[3]
        # all rows have equal width
        assert len({len(line) for line in lines}) == 1

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series_table_downsampling(self):
        table = render_series_table(
            "round", list(range(10)), {"error": [float(i) for i in range(10)]}, every=3
        )
        lines = table.splitlines()
        # header + separator + rows for rounds 0,3,6,9
        assert len(lines) == 6
        assert lines[-1].startswith("9")

    def test_render_series_table_validates_lengths(self):
        with pytest.raises(ValueError):
            render_series_table("x", [1, 2], {"y": [1.0]})
        with pytest.raises(ValueError):
            render_series_table("x", [1], {"y": [1.0]}, every=0)
