"""Tests for the vectorised uniform-gossip kernels."""

import numpy as np
import pytest

from repro.core.cutoff import default_cutoff
from repro.simulator.vectorized import VectorizedCountSketchReset, VectorizedPushSumRevert
from repro.workloads.values import uniform_values


class TestVectorizedPushSumRevertConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            VectorizedPushSumRevert([1.0, 2.0], mode="pull")

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            VectorizedPushSumRevert([1.0, 2.0], reversion=1.5)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            VectorizedPushSumRevert([])

    def test_initial_estimates_are_own_values(self):
        kernel = VectorizedPushSumRevert([1.0, 5.0, 9.0])
        assert np.allclose(kernel.estimates(), [1.0, 5.0, 9.0])
        assert kernel.truth() == pytest.approx(5.0)


class TestVectorizedPushSumRevertDynamics:
    @pytest.mark.parametrize("mode", ["push", "pushpull"])
    def test_mass_conservation_without_reversion(self, mode):
        values = uniform_values(64, seed=2)
        kernel = VectorizedPushSumRevert(values, 0.0, mode=mode, seed=1)
        total_before = kernel.total.sum()
        weight_before = kernel.weight.sum()
        kernel.step_many(10)
        assert kernel.total.sum() == pytest.approx(total_before)
        assert kernel.weight.sum() == pytest.approx(weight_before)

    def test_mass_conservation_with_reversion_static_population(self):
        values = uniform_values(64, seed=2)
        kernel = VectorizedPushSumRevert(values, 0.2, mode="pushpull", seed=1)
        total_before = kernel.total.sum()
        kernel.step_many(10)
        assert kernel.total.sum() == pytest.approx(total_before)

    @pytest.mark.parametrize("mode", ["push", "pushpull", "full-transfer"])
    def test_converges_to_average(self, mode):
        values = uniform_values(400, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.0 if mode != "full-transfer" else 0.01,
                                         mode=mode, seed=4)
        kernel.step_many(40)
        assert kernel.error() < 0.15 * np.std(values)

    def test_pushpull_converges_faster_than_push(self):
        values = uniform_values(1000, seed=4)
        push = VectorizedPushSumRevert(values, 0.0, mode="push", seed=4)
        pushpull = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=4)
        push.step_many(8)
        pushpull.step_many(8)
        assert pushpull.error() < push.error()

    def test_lambda_zero_never_recovers_from_correlated_failure(self):
        values = uniform_values(800, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=4)
        kernel.step_many(15)
        kernel.fail_highest_fraction(0.5)
        kernel.step_many(30)
        # truth dropped from ~50 to ~25 but static push-sum still says ~50
        assert kernel.error() > 15.0

    def test_reversion_recovers_from_correlated_failure(self):
        values = uniform_values(800, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.5, mode="pushpull", seed=4)
        kernel.step_many(15)
        kernel.fail_highest_fraction(0.5)
        kernel.step_many(30)
        assert kernel.error() < 15.0

    def test_full_transfer_lower_plateau_than_basic(self):
        values = uniform_values(800, seed=4)
        basic = VectorizedPushSumRevert(values, 0.1, mode="pushpull", seed=4)
        full = VectorizedPushSumRevert(values, 0.1, mode="full-transfer", seed=4)
        for kernel in (basic, full):
            kernel.step_many(15)
            kernel.fail_highest_fraction(0.5)
            kernel.step_many(45)
        assert full.error() < basic.error()

    def test_uncorrelated_failure_is_harmless(self):
        values = uniform_values(800, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.01, mode="pushpull", seed=4)
        kernel.step_many(15)
        kernel.fail_random_fraction(0.5)
        kernel.step_many(20)
        assert kernel.error() < 5.0

    def test_fail_explicit_indices(self):
        kernel = VectorizedPushSumRevert([1.0, 2.0, 3.0, 4.0], seed=1)
        kernel.fail([0, 3])
        assert kernel.truth() == pytest.approx(2.5)
        assert kernel.estimates().size == 2

    def test_fail_fraction_bounds_checked(self):
        kernel = VectorizedPushSumRevert([1.0, 2.0], seed=1)
        with pytest.raises(ValueError):
            kernel.fail_random_fraction(1.5)
        with pytest.raises(ValueError):
            kernel.fail_highest_fraction(-0.1)

    def test_adaptive_push_mode_runs_and_converges(self):
        values = uniform_values(400, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.05, mode="push", adaptive=True, seed=4)
        kernel.step_many(30)
        assert np.isfinite(kernel.error())
        assert kernel.error() < 10.0

    def test_same_seed_reproducible(self):
        values = uniform_values(100, seed=1)
        a = VectorizedPushSumRevert(values, 0.1, seed=9)
        b = VectorizedPushSumRevert(values, 0.1, seed=9)
        a.step_many(10)
        b.step_many(10)
        assert np.allclose(a.estimates(), b.estimates())


class TestVectorizedCountSketchReset:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            VectorizedCountSketchReset(0)
        with pytest.raises(ValueError):
            VectorizedCountSketchReset(10, bins=0)
        with pytest.raises(ValueError):
            VectorizedCountSketchReset(10, identifiers_per_host=0)

    def test_estimate_order_of_magnitude(self):
        kernel = VectorizedCountSketchReset(2000, bins=32, bits=20, seed=3)
        kernel.step_many(25)
        mean_estimate = float(np.mean(kernel.estimates()))
        assert 0.5 * 2000 < mean_estimate < 2.0 * 2000

    def test_hosts_converge_to_similar_estimates(self):
        kernel = VectorizedCountSketchReset(500, bins=16, bits=18, seed=3)
        kernel.step_many(25)
        estimates = kernel.estimates()
        assert np.ptp(estimates) < 0.2 * np.mean(estimates)

    def test_counters_bounded_by_round_count(self):
        kernel = VectorizedCountSketchReset(200, bins=8, bits=16, seed=3)
        kernel.step_many(5)
        finite = kernel.counters[kernel.counters < 30000]
        assert finite.max() <= 5

    def test_decay_recovers_after_failure(self):
        kernel = VectorizedCountSketchReset(1000, bins=16, bits=18, seed=3)
        kernel.step_many(20)
        kernel.fail_random_fraction(0.5)
        kernel.step_many(15)
        mean_estimate = float(np.mean(kernel.estimates()))
        assert mean_estimate < 0.85 * 1000  # has shrunk towards ~500

    def test_no_decay_never_shrinks(self):
        kernel = VectorizedCountSketchReset(1000, bins=16, bits=18, cutoff=None, seed=3)
        kernel.step_many(20)
        before = float(np.mean(kernel.estimates()))
        kernel.fail_random_fraction(0.5)
        kernel.step_many(15)
        after = float(np.mean(kernel.estimates()))
        assert after >= before * 0.95

    def test_identifiers_per_host_scaling(self):
        kernel = VectorizedCountSketchReset(50, bins=16, bits=18, identifiers_per_host=20, seed=3)
        kernel.step_many(20)
        mean_estimate = float(np.mean(kernel.estimates()))
        assert 0.4 * 50 < mean_estimate < 2.5 * 50

    def test_counter_values_for_bit_validation(self):
        kernel = VectorizedCountSketchReset(100, bins=8, bits=10, seed=1)
        with pytest.raises(ValueError):
            kernel.counter_values_for_bit(10)
        kernel.step_many(5)
        values = kernel.counter_values_for_bit(0)
        assert values.size > 0
        assert values.min() >= 0

    def test_same_seed_reproducible(self):
        a = VectorizedCountSketchReset(200, bins=8, bits=12, seed=5)
        b = VectorizedCountSketchReset(200, bins=8, bits=12, seed=5)
        a.step_many(8)
        b.step_many(8)
        assert np.array_equal(a.counters, b.counters)

    def test_pull_spreads_fresh_counters_at_least_as_fast(self):
        # Same seed -> identical peer choices; the pull response can only add
        # extra min-merges, so every counter with pull is <= its push-only
        # counterpart.
        with_pull = VectorizedCountSketchReset(1000, bins=8, bits=16, seed=5, pull=True)
        without_pull = VectorizedCountSketchReset(1000, bins=8, bits=16, seed=5, pull=False)
        with_pull.step_many(6)
        without_pull.step_many(6)
        assert (with_pull.counters <= without_pull.counters).all()


class TestAgentVsVectorizedCrossCheck:
    """The two implementations should agree on aggregate behaviour."""

    def test_push_sum_convergence_agrees(self):
        from repro.baselines import PushSum
        from repro.environments import UniformEnvironment
        from repro.simulator import Simulation

        values = uniform_values(120, seed=8)
        agent = Simulation(
            PushSum(), UniformEnvironment(len(values)), values, seed=8, mode="exchange"
        )
        agent_error = agent.run(25).final_error()
        kernel = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=8)
        kernel.step_many(25)
        assert agent_error < 1.0
        assert kernel.error() < 1.0

    def test_count_sketch_reset_estimates_agree(self):
        from repro.core import CountSketchReset
        from repro.environments import UniformEnvironment
        from repro.simulator import Simulation

        n = 80
        agent = Simulation(
            CountSketchReset(bins=16, bits=16),
            UniformEnvironment(n),
            [1.0] * n,
            seed=8,
            mode="exchange",
        )
        agent_estimate = agent.run(15).mean_estimate()
        kernel = VectorizedCountSketchReset(n, bins=16, bits=16, seed=8)
        kernel.step_many(15)
        vector_estimate = float(np.mean(kernel.estimates()))
        # Both use 16-bin FM sketches, so both are within FM error of n and of
        # each other (the sketch randomisation differs, so allow a wide band).
        assert 0.4 * n < agent_estimate < 2.5 * n
        assert 0.4 * n < vector_estimate < 2.5 * n
