"""Tests for the vectorised uniform-gossip kernels."""

import numpy as np
import pytest

from repro.core.cutoff import default_cutoff
from repro.simulator.vectorized import VectorizedCountSketchReset, VectorizedPushSumRevert
from repro.workloads.values import uniform_values


class TestVectorizedPushSumRevertConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            VectorizedPushSumRevert([1.0, 2.0], mode="pull")

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            VectorizedPushSumRevert([1.0, 2.0], reversion=1.5)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            VectorizedPushSumRevert([])

    def test_initial_estimates_are_own_values(self):
        kernel = VectorizedPushSumRevert([1.0, 5.0, 9.0])
        assert np.allclose(kernel.estimates(), [1.0, 5.0, 9.0])
        assert kernel.truth() == pytest.approx(5.0)


class TestVectorizedPushSumRevertDynamics:
    @pytest.mark.parametrize("mode", ["push", "pushpull"])
    def test_mass_conservation_without_reversion(self, mode):
        values = uniform_values(64, seed=2)
        kernel = VectorizedPushSumRevert(values, 0.0, mode=mode, seed=1)
        total_before = kernel.total.sum()
        weight_before = kernel.weight.sum()
        kernel.step_many(10)
        assert kernel.total.sum() == pytest.approx(total_before)
        assert kernel.weight.sum() == pytest.approx(weight_before)

    def test_mass_conservation_with_reversion_static_population(self):
        values = uniform_values(64, seed=2)
        kernel = VectorizedPushSumRevert(values, 0.2, mode="pushpull", seed=1)
        total_before = kernel.total.sum()
        kernel.step_many(10)
        assert kernel.total.sum() == pytest.approx(total_before)

    @pytest.mark.parametrize("mode", ["push", "pushpull", "full-transfer"])
    def test_converges_to_average(self, mode):
        values = uniform_values(400, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.0 if mode != "full-transfer" else 0.01,
                                         mode=mode, seed=4)
        kernel.step_many(40)
        assert kernel.error() < 0.15 * np.std(values)

    def test_pushpull_converges_faster_than_push(self):
        values = uniform_values(1000, seed=4)
        push = VectorizedPushSumRevert(values, 0.0, mode="push", seed=4)
        pushpull = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=4)
        push.step_many(8)
        pushpull.step_many(8)
        assert pushpull.error() < push.error()

    def test_lambda_zero_never_recovers_from_correlated_failure(self):
        values = uniform_values(800, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=4)
        kernel.step_many(15)
        kernel.fail_highest_fraction(0.5)
        kernel.step_many(30)
        # truth dropped from ~50 to ~25 but static push-sum still says ~50
        assert kernel.error() > 15.0

    def test_reversion_recovers_from_correlated_failure(self):
        values = uniform_values(800, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.5, mode="pushpull", seed=4)
        kernel.step_many(15)
        kernel.fail_highest_fraction(0.5)
        kernel.step_many(30)
        assert kernel.error() < 15.0

    def test_full_transfer_lower_plateau_than_basic(self):
        values = uniform_values(800, seed=4)
        basic = VectorizedPushSumRevert(values, 0.1, mode="pushpull", seed=4)
        full = VectorizedPushSumRevert(values, 0.1, mode="full-transfer", seed=4)
        for kernel in (basic, full):
            kernel.step_many(15)
            kernel.fail_highest_fraction(0.5)
            kernel.step_many(45)
        assert full.error() < basic.error()

    def test_uncorrelated_failure_is_harmless(self):
        values = uniform_values(800, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.01, mode="pushpull", seed=4)
        kernel.step_many(15)
        kernel.fail_random_fraction(0.5)
        kernel.step_many(20)
        assert kernel.error() < 5.0

    def test_fail_explicit_indices(self):
        kernel = VectorizedPushSumRevert([1.0, 2.0, 3.0, 4.0], seed=1)
        kernel.fail([0, 3])
        assert kernel.truth() == pytest.approx(2.5)
        assert kernel.estimates().size == 2

    def test_fail_fraction_bounds_checked(self):
        kernel = VectorizedPushSumRevert([1.0, 2.0], seed=1)
        with pytest.raises(ValueError):
            kernel.fail_random_fraction(1.5)
        with pytest.raises(ValueError):
            kernel.fail_highest_fraction(-0.1)

    def test_adaptive_push_mode_runs_and_converges(self):
        values = uniform_values(400, seed=4)
        kernel = VectorizedPushSumRevert(values, 0.05, mode="push", adaptive=True, seed=4)
        kernel.step_many(30)
        assert np.isfinite(kernel.error())
        assert kernel.error() < 10.0

    def test_same_seed_reproducible(self):
        values = uniform_values(100, seed=1)
        a = VectorizedPushSumRevert(values, 0.1, seed=9)
        b = VectorizedPushSumRevert(values, 0.1, seed=9)
        a.step_many(10)
        b.step_many(10)
        assert np.allclose(a.estimates(), b.estimates())


class TestVectorizedCountSketchReset:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            VectorizedCountSketchReset(0)
        with pytest.raises(ValueError):
            VectorizedCountSketchReset(10, bins=0)
        with pytest.raises(ValueError):
            VectorizedCountSketchReset(10, identifiers_per_host=0)

    def test_estimate_order_of_magnitude(self):
        kernel = VectorizedCountSketchReset(2000, bins=32, bits=20, seed=3)
        kernel.step_many(25)
        mean_estimate = float(np.mean(kernel.estimates()))
        assert 0.5 * 2000 < mean_estimate < 2.0 * 2000

    def test_hosts_converge_to_similar_estimates(self):
        kernel = VectorizedCountSketchReset(500, bins=16, bits=18, seed=3)
        kernel.step_many(25)
        estimates = kernel.estimates()
        assert np.ptp(estimates) < 0.2 * np.mean(estimates)

    def test_counters_bounded_by_round_count(self):
        kernel = VectorizedCountSketchReset(200, bins=8, bits=16, seed=3)
        kernel.step_many(5)
        finite = kernel.counters[kernel.counters < 30000]
        assert finite.max() <= 5

    def test_decay_recovers_after_failure(self):
        kernel = VectorizedCountSketchReset(1000, bins=16, bits=18, seed=3)
        kernel.step_many(20)
        kernel.fail_random_fraction(0.5)
        kernel.step_many(15)
        mean_estimate = float(np.mean(kernel.estimates()))
        assert mean_estimate < 0.85 * 1000  # has shrunk towards ~500

    def test_no_decay_never_shrinks(self):
        kernel = VectorizedCountSketchReset(1000, bins=16, bits=18, cutoff=None, seed=3)
        kernel.step_many(20)
        before = float(np.mean(kernel.estimates()))
        kernel.fail_random_fraction(0.5)
        kernel.step_many(15)
        after = float(np.mean(kernel.estimates()))
        assert after >= before * 0.95

    def test_identifiers_per_host_scaling(self):
        kernel = VectorizedCountSketchReset(50, bins=16, bits=18, identifiers_per_host=20, seed=3)
        kernel.step_many(20)
        mean_estimate = float(np.mean(kernel.estimates()))
        assert 0.4 * 50 < mean_estimate < 2.5 * 50

    def test_counter_values_for_bit_validation(self):
        kernel = VectorizedCountSketchReset(100, bins=8, bits=10, seed=1)
        with pytest.raises(ValueError):
            kernel.counter_values_for_bit(10)
        kernel.step_many(5)
        values = kernel.counter_values_for_bit(0)
        assert values.size > 0
        assert values.min() >= 0

    def test_same_seed_reproducible(self):
        a = VectorizedCountSketchReset(200, bins=8, bits=12, seed=5)
        b = VectorizedCountSketchReset(200, bins=8, bits=12, seed=5)
        a.step_many(8)
        b.step_many(8)
        assert np.array_equal(a.counters, b.counters)

    def test_pull_spreads_fresh_counters_at_least_as_fast(self):
        # Same seed -> identical peer choices; the pull response can only add
        # extra min-merges, so every counter with pull is <= its push-only
        # counterpart.
        with_pull = VectorizedCountSketchReset(1000, bins=8, bits=16, seed=5, pull=True)
        without_pull = VectorizedCountSketchReset(1000, bins=8, bits=16, seed=5, pull=False)
        with_pull.step_many(6)
        without_pull.step_many(6)
        assert (with_pull.counters <= without_pull.counters).all()


class TestAgentVsVectorizedCrossCheck:
    """The two implementations should agree on aggregate behaviour."""

    def test_push_sum_convergence_agrees(self):
        from repro.baselines import PushSum
        from repro.environments import UniformEnvironment
        from repro.simulator import Simulation

        values = uniform_values(120, seed=8)
        agent = Simulation(
            PushSum(), UniformEnvironment(len(values)), values, seed=8, mode="exchange"
        )
        agent_error = agent.run(25).final_error()
        kernel = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=8)
        kernel.step_many(25)
        assert agent_error < 1.0
        assert kernel.error() < 1.0

    def test_count_sketch_reset_estimates_agree(self):
        from repro.core import CountSketchReset
        from repro.environments import UniformEnvironment
        from repro.simulator import Simulation

        n = 80
        agent = Simulation(
            CountSketchReset(bins=16, bits=16),
            UniformEnvironment(n),
            [1.0] * n,
            seed=8,
            mode="exchange",
        )
        agent_estimate = agent.run(15).mean_estimate()
        kernel = VectorizedCountSketchReset(n, bins=16, bits=16, seed=8)
        kernel.step_many(15)
        vector_estimate = float(np.mean(kernel.estimates()))
        # Both use 16-bin FM sketches, so both are within FM error of n and of
        # each other (the sketch randomisation differs, so allow a wide band).
        assert 0.4 * n < agent_estimate < 2.5 * n
        assert 0.4 * n < vector_estimate < 2.5 * n


class TestSparseTopologyLayer:
    """The CSR/grid-ring samplers behind topology-restricted kernels."""

    def _ring_csr(self, n=24, k=2):
        from repro.simulator.sparse import CSRTopology
        from repro.topology.graphs import ring_lattice

        return CSRTopology.from_adjacency(ring_lattice(n, k=k), n)

    def test_csr_samples_only_live_neighbors(self):
        from repro.topology.graphs import ring_lattice

        rng = np.random.default_rng(0)
        n = 24
        adjacency = ring_lattice(n, k=2)
        topo = self._ring_csr(n)
        alive = np.ones(n, dtype=bool)
        alive[::4] = False
        requesters = np.nonzero(alive)[0]
        for _ in range(20):
            targets = topo.sample_peers(requesters, alive, rng)
            for host, target in zip(requesters, targets):
                if target >= 0:
                    assert alive[target]
                    assert int(target) in adjacency[int(host)]

    def test_csr_isolated_host_gets_minus_one(self):
        from repro.simulator.sparse import CSRTopology

        rng = np.random.default_rng(1)
        # Host 2 only knows hosts 0 and 1, both of which are dead.
        topo = CSRTopology.from_adjacency({0: {2}, 1: {2}, 2: {0, 1}, 3: {4}, 4: {3}}, 5)
        alive = np.array([False, False, True, True, True])
        targets = topo.sample_peers(np.array([2, 3, 4]), alive, rng)
        assert targets[0] == -1
        assert targets[1] == 4 and targets[2] == 3

    def test_matching_is_a_matching_on_graph_edges(self):
        from repro.topology.graphs import ring_lattice

        rng = np.random.default_rng(2)
        n = 30
        adjacency = ring_lattice(n, k=2)
        topo = self._ring_csr(n)
        alive = np.ones(n, dtype=bool)
        for _ in range(10):
            left, right = topo.sample_matching(np.arange(n), alive, rng)
            touched = np.concatenate([left, right])
            assert len(set(touched.tolist())) == touched.size  # vertex-disjoint
            for a, b in zip(left, right):
                assert int(b) in adjacency[int(a)]

    def test_grid_ring_respects_distance_law(self):
        from repro.simulator.sparse import GridRingTopology

        rng = np.random.default_rng(3)
        topo = GridRingTopology(9, 9)
        alive = np.ones(81, dtype=bool)
        center = np.array([40])  # (4, 4)
        col, row = 4, 4
        distances = []
        for _ in range(600):
            target = int(topo.sample_peers(center, alive, rng)[0])
            assert target != 40 and target >= 0
            d = abs(target % 9 - col) + abs(target // 9 - row)
            distances.append(d)
        counts = np.bincount(distances, minlength=9)
        # 1/d² law: distance 1 dominates, long links exist.
        assert counts[1] > counts[2] > counts[4]
        assert counts[5:].sum() > 0

    def test_grid_ring_never_returns_dead_hosts(self):
        from repro.simulator.sparse import GridRingTopology

        rng = np.random.default_rng(4)
        topo = GridRingTopology(4, 4)
        alive = np.ones(16, dtype=bool)
        alive[[5, 6, 9, 10]] = False
        requesters = np.nonzero(alive)[0]
        for _ in range(50):
            targets = topo.sample_peers(requesters, alive, rng)
            live_targets = targets[targets >= 0]
            assert alive[live_targets].all()

    def test_components_follow_live_mask_and_cache(self):
        from repro.topology.graphs import ring_lattice
        from repro.simulator.sparse import CSRTopology

        topo = CSRTopology.from_adjacency(ring_lattice(12, k=1), 12)
        alive = np.ones(12, dtype=bool)
        assert len(topo.components(alive)) == 1
        assert topo.components(alive) is topo.components(alive)  # cached
        alive[[0, 6]] = False  # cut the ring twice -> two arcs
        parts = sorted(sorted(part) for part in topo.components(alive))
        assert parts == [[1, 2, 3, 4, 5], [7, 8, 9, 10, 11]]

    def test_push_conserves_mass_on_topology(self):
        from repro.simulator.vectorized import VectorizedPushSumRevert

        topo = self._ring_csr(20)
        kernel = VectorizedPushSumRevert(
            uniform_values(20, 0.0, 10.0, seed=5), 0.0, mode="push",
            topology=topo, seed=5,
        )
        for _ in range(30):
            kernel.step()
            assert kernel.weight.sum() == pytest.approx(20.0)

    def test_isolated_host_keeps_mass_and_reports_own_value(self):
        from repro.simulator.sparse import CSRTopology
        from repro.simulator.vectorized import VectorizedPushSumRevert

        # Host 2 is cut off once 0 and 1 die; its mass must stay put.
        topo = CSRTopology.from_adjacency({0: {1, 2}, 1: {0, 2}, 2: {0, 1}, 3: {4}, 4: {3}}, 5)
        kernel = VectorizedPushSumRevert(
            [1.0, 2.0, 7.0, 3.0, 4.0], 0.0, mode="push", topology=topo, seed=6,
        )
        kernel.fail([0, 1])
        for _ in range(10):
            kernel.step()
        estimates = dict(zip(np.nonzero(kernel.alive)[0].tolist(), kernel.estimates()))
        assert estimates[2] == pytest.approx(7.0)
        assert kernel.weight[2] == pytest.approx(1.0)

    def test_full_transfer_rejects_topology(self):
        from repro.simulator.vectorized import VectorizedPushSumRevert

        with pytest.raises(ValueError, match="full-transfer"):
            VectorizedPushSumRevert(
                [1.0, 2.0], 0.1, mode="full-transfer", topology=self._ring_csr(2, k=1),
            )

    def test_population_size_mismatch_rejected(self):
        from repro.simulator.vectorized import VectorizedPushSumRevert

        with pytest.raises(ValueError, match="covers 24 hosts"):
            VectorizedPushSumRevert([1.0, 2.0], topology=self._ring_csr(24))


class TestKernelMembership:
    """join / depart_gracefully on the array kernels (DESIGN.md §12)."""

    def test_join_grows_push_sum_population(self):
        values = uniform_values(10, seed=0)
        kernel = VectorizedPushSumRevert(values, 0.1, seed=0)
        new_ids = kernel.join([5.0, 6.0])
        assert new_ids.tolist() == [10, 11]
        assert kernel.n == 12
        assert int(kernel.alive.sum()) == 12
        # New hosts start knowing only themselves (weight 1, own value).
        assert kernel.weight[10:].tolist() == [1.0, 1.0]
        assert kernel.total[10:].tolist() == [5.0, 6.0]
        # The truth immediately reflects the grown population...
        assert kernel.truth() == pytest.approx(np.mean(list(values) + [5.0, 6.0]))
        # ...and the estimates converge toward it.
        kernel.step_many(40)
        assert abs(np.mean(kernel.estimates()) - kernel.truth()) < 1.0

    def test_empty_join_is_a_no_op(self):
        kernel = VectorizedPushSumRevert([1.0, 2.0], 0.0, seed=0)
        assert kernel.join([]).size == 0
        assert kernel.n == 2

    def test_join_under_topology_rejected(self):
        from repro.simulator.sparse import CSRTopology
        from repro.topology.graphs import ring_lattice

        topo = CSRTopology.from_adjacency(ring_lattice(8, k=1), 8)
        kernel = VectorizedPushSumRevert([1.0] * 8, 0.0, topology=topo, seed=0)
        with pytest.raises(ValueError, match="agent engine"):
            kernel.join([3.0])

    def test_join_grows_counting_kernels(self):
        kernel = VectorizedCountSketchReset(16, bins=16, bits=16, seed=0)
        kernel.join([0.0] * 4)
        assert kernel.n == 20
        kernel.step_many(25)
        # The sketch counts the grown population (within sketch bias).
        assert np.mean(kernel.estimates()) > 16.0

    def test_graceful_departure_transfers_mass(self):
        kernel = VectorizedPushSumRevert([float(i) for i in range(8)], 0.0,
                                         mode="push", seed=1)
        total_weight = kernel.weight.sum()
        total_mass = kernel.total.sum()
        kernel.depart_gracefully([2, 5])
        assert int(kernel.alive.sum()) == 6
        # The departing hosts handed every drop of mass to survivors.
        assert kernel.weight.sum() == pytest.approx(total_weight)
        assert kernel.total.sum() == pytest.approx(total_mass)
        assert kernel.weight[[2, 5]].tolist() == [0.0, 0.0]
        # So the network still converges to the *original* average, exactly
        # like the agent engine's sign_off_mass baseline.
        kernel.step_many(60)
        assert np.mean(kernel.estimates()) == pytest.approx(3.5, abs=0.2)

    def test_graceful_departure_of_everyone_drops_mass(self):
        kernel = VectorizedPushSumRevert([1.0, 2.0], 0.0, seed=0)
        kernel.depart_gracefully([0, 1])
        assert int(kernel.alive.sum()) == 0
        assert kernel.mass_lost == pytest.approx(2.0)

    def test_graceful_departure_disowns_sketch_positions(self):
        kernel = VectorizedCountSketchReset(16, bins=16, bits=14,
                                            cutoff=default_cutoff, seed=0)
        kernel.step_many(15)
        owned = kernel.own_mask[list(range(8))].copy()
        assert owned.any()
        kernel.depart_gracefully(list(range(8)))
        # The departed hosts source nothing any more...
        assert not kernel.own_mask[list(range(8))].any()
        kernel.step_many(5)
        # ...so positions no live host sources now age on every live host
        # instead of being re-pinned to zero each round.
        live = np.nonzero(kernel.alive)[0]
        unsourced = owned.any(axis=0) & ~kernel.own_mask[live].any(axis=0)
        assert unsourced.any()
        bins_idx, bits_idx = np.nonzero(unsourced)
        aged = kernel.counters[live[:, None], bins_idx, bits_idx]
        assert (aged > 0).all()

    def test_graceful_departure_never_beats_silent_failure(self):
        # Mirrors the agent invariant (test_extensions): a graceful
        # departure's estimate is never larger than a silent failure's —
        # disowned positions start decaying immediately.
        silent = VectorizedCountSketchReset(64, bins=16, bits=14,
                                            cutoff=default_cutoff, seed=3)
        graceful = VectorizedCountSketchReset(64, bins=16, bits=14,
                                              cutoff=default_cutoff, seed=3)
        departing = list(range(32))
        silent.step_many(10)
        graceful.step_many(10)
        silent.fail(departing)
        graceful.depart_gracefully(departing)
        silent.step_many(30)
        graceful.step_many(30)
        assert np.mean(graceful.estimates()) <= np.mean(silent.estimates()) + 1e-6


class TestTraceCSRTopology:
    """The time-varying CSR replays traces exactly as the agent environment."""

    def _topology(self, **kwargs):
        from repro.mobility import haggle_dataset
        from repro.simulator.sparse import TraceCSRTopology

        return TraceCSRTopology(haggle_dataset(1), **kwargs)

    def test_round_adjacency_matches_agent_environment(self):
        from repro.environments.trace import TraceEnvironment
        from repro.mobility import haggle_dataset

        trace = haggle_dataset(1)
        environment = TraceEnvironment(trace)
        topology = self._topology()
        alive = np.ones(trace.n_devices, dtype=bool)
        for t in range(0, 600, 7):
            topology.set_round(t)
            expected = environment._adjacency(t)
            adjacency = topology._live_adjacency(alive)
            got = {host: set(peers) for host, peers in adjacency.items() if peers}
            expected_sets = {h: set(p) for h, p in expected.items() if p}
            assert got == expected_sets, f"round {t}"

    def test_group_components_match_agent_environment(self):
        from repro.environments.trace import TraceEnvironment
        from repro.mobility import haggle_dataset

        trace = haggle_dataset(1)
        environment = TraceEnvironment(trace)
        topology = self._topology()
        alive = np.ones(trace.n_devices, dtype=bool)
        alive_set = set(range(trace.n_devices))
        for t in range(0, 900, 13):
            topology.set_round(t)
            expected = sorted(sorted(group) for group in environment.groups(alive_set, t))
            got = sorted(sorted(group) for group in topology.components(alive))
            assert got == expected, f"round {t}"

    def test_components_respect_dead_bridges(self):
        # A dead host may still *bridge* two live hosts in the union graph
        # (the agent rule: components first, alive-intersection second).
        from repro.mobility.traces import ContactRecord, ContactTrace
        from repro.simulator.sparse import TraceCSRTopology

        trace = ContactTrace(
            n_devices=3,
            records=[
                ContactRecord(0, 1, 0.0, 3600.0),
                ContactRecord(1, 2, 0.0, 3600.0),
            ],
            name="bridge",
        )
        topology = TraceCSRTopology(trace, round_seconds=30.0)
        topology.set_round(10)
        alive = np.array([True, False, True])
        parts = sorted(sorted(p) for p in topology.components(alive))
        assert parts == [[0, 2]]

    def test_rebuild_is_bit_deterministic(self):
        first = self._topology()
        second = self._topology()
        alive = np.ones(first.n, dtype=bool)
        alive[[1, 4]] = False
        for t in (0, 120, 240, 600, 601):
            first.set_round(t)
            second.set_round(t)
            assert first._live_adjacency(alive) == second._live_adjacency(alive)
            l1, s1 = first.component_labels(alive)
            l2, s2 = second.component_labels(alive)
            assert np.array_equal(l1, l2) and np.array_equal(s1, s2)

    def test_validates_parameters(self):
        from repro.mobility import haggle_dataset
        from repro.simulator.sparse import TraceCSRTopology

        trace = haggle_dataset(1)
        with pytest.raises(ValueError):
            TraceCSRTopology(trace, round_seconds=0.0)
        topology = TraceCSRTopology(trace)
        with pytest.raises(ValueError):
            topology.set_round(-1)
