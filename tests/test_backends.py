"""Equivalence and error-path tests for the execution backends.

Every (protocol, mode, failure, workload) combination the vectorised
backend claims to support is run on both backends over many seeds at a
small population; the estimate distributions must agree within tolerance.
Unsupported combinations must be rejected eagerly — at spec construction —
with an actionable message.
"""

import numpy as np
import pytest

from repro.api import BACKENDS, ScenarioSpec, resolve_backend, run_scenario
from repro.api.backends import VectorizedBackend
from repro.api.sweep import Sweep, SweepRunner

N_HOSTS = 64
SEEDS = tuple(range(8))

#: One entry per supported combination: (id, spec kwargs, relative bias
#: tolerance).  ``scale`` for the bias is the seed-averaged truth.
SUPPORTED_COMBOS = [
    (
        "push-sum-revert/exchange",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             n_hosts=N_HOSTS, rounds=30),
        0.10,
    ),
    (
        "push-sum-revert/push",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             mode="push", n_hosts=N_HOSTS, rounds=30),
        0.10,
    ),
    (
        "push-sum-revert/adaptive-push",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05, "adaptive": True},
             mode="push", n_hosts=N_HOSTS, rounds=30),
        0.10,
    ),
    (
        "full-transfer/push",
        dict(protocol="push-sum-revert-full-transfer",
             protocol_params={"reversion": 0.1, "parcels": 4, "history": 3},
             mode="push", n_hosts=N_HOSTS, rounds=30),
        0.10,
    ),
    (
        "count-sketch-reset/exchange",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 32, "bits": 16, "cutoff": "default"},
             workload="constant", n_hosts=N_HOSTS, rounds=20),
        0.30,
    ),
    (
        "count-sketch-reset/push",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 32, "bits": 16, "cutoff": "default"},
             workload="constant", mode="push", n_hosts=N_HOSTS, rounds=20),
        0.30,
    ),
    (
        "sketch-count/exchange",
        dict(protocol="sketch-count", protocol_params={"bins": 32, "bits": 16},
             workload="constant", n_hosts=N_HOSTS, rounds=20),
        0.30,
    ),
    (
        "extrema-gossip/exchange",
        dict(protocol="extrema-gossip", n_hosts=N_HOSTS, rounds=20),
        0.05,
    ),
    (
        "extrema-reset/exchange",
        dict(protocol="extrema-reset", protocol_params={"cutoff": 12},
             n_hosts=N_HOSTS, rounds=20),
        0.05,
    ),
    (
        "push-sum-revert+uncorrelated-failure",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.1},
             n_hosts=N_HOSTS, rounds=40,
             events=({"event": "failure", "round": 20, "model": "uncorrelated",
                      "fraction": 0.5},)),
        0.12,
    ),
    (
        "push-sum-revert+correlated-failure",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.3},
             n_hosts=N_HOSTS, rounds=50,
             events=({"event": "failure", "round": 20, "model": "correlated",
                      "fraction": 0.5, "highest": True},)),
        0.25,
    ),
    (
        "push-sum-revert+explicit-failure",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.1},
             n_hosts=N_HOSTS, rounds=40,
             events=({"event": "failure", "round": 10, "model": "explicit",
                      "host_ids": [0, 1, 2, 3]},)),
        0.10,
    ),
    (
        "push-sum-revert+value-change",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.3},
             n_hosts=N_HOSTS, rounds=50,
             events=({"event": "value-change", "round": 10,
                      "values": {"0": 500.0, "1": 500.0}},)),
        0.20,
    ),
    # The failure combos keep bins=16: with only 32 survivors, 32 bins would
    # put the sketch deep into its small-count bias regime (both backends
    # overestimate identically there, but the truth-tracking check below
    # would need a vacuously wide tolerance).
    (
        "count-sketch-reset+uncorrelated-failure",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 16, "bits": 16, "cutoff": "default"},
             workload="constant", n_hosts=N_HOSTS, rounds=40,
             events=({"event": "failure", "round": 20, "model": "uncorrelated",
                      "fraction": 0.5},)),
        0.40,
    ),
    (
        "count-sketch-reset+correlated-failure",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 16, "bits": 16, "cutoff": "default"},
             n_hosts=N_HOSTS, rounds=40,
             events=({"event": "failure", "round": 20, "model": "correlated",
                      "fraction": 0.5, "highest": True},)),
        0.40,
    ),
    (
        "extrema-reset+correlated-failure",
        dict(protocol="extrema-reset", protocol_params={"cutoff": 10},
             n_hosts=N_HOSTS, rounds=50,
             events=({"event": "failure", "round": 15, "model": "correlated",
                      "fraction": 0.5, "highest": True},)),
        0.15,
    ),
    # ---- topology-restricted combos (the sparse-adjacency kernels) ------
    # Graph gossip mixes slower than uniform gossip, so plateau errors are
    # larger on both backends; tolerances reflect the topology, not the
    # kernel.  Extrema cutoffs must exceed the graph's hop diameter or the
    # advertisement legitimately ages out (on both backends, at slightly
    # different rates — the kernel's matching moves information at most
    # one hop per round while the agent's sequential exchanges can chain).
    (
        "push-sum-revert/ring",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             environment="ring", n_hosts=N_HOSTS, rounds=40),
        0.10,
    ),
    (
        "push-sum-revert/grid-push",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             environment="grid", mode="push", n_hosts=N_HOSTS, rounds=40),
        0.10,
    ),
    (
        "push-sum-revert/random-geometric",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             environment="random-geometric", environment_params={"radius": 0.35},
             n_hosts=N_HOSTS, rounds=40),
        0.10,
    ),
    (
        "push-sum-revert/erdos-renyi",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             environment="erdos-renyi", environment_params={"p": 0.15},
             n_hosts=N_HOSTS, rounds=40),
        0.10,
    ),
    (
        "push-sum-revert/spatial-grid",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             environment="spatial-grid", n_hosts=N_HOSTS, rounds=40),
        0.10,
    ),
    (
        "push-sum-revert/grid+uncorrelated-failure",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.1},
             environment="grid", n_hosts=N_HOSTS, rounds=50,
             events=({"event": "failure", "round": 20, "model": "uncorrelated",
                      "fraction": 0.3},)),
        0.15,
    ),
    (
        "push-sum-revert/spatial-grid+correlated-failure",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.3},
             environment="spatial-grid", n_hosts=N_HOSTS, rounds=50,
             events=({"event": "failure", "round": 20, "model": "correlated",
                      "fraction": 0.3, "highest": True},)),
        0.25,
    ),
    (
        "push-sum-revert/grid+value-change",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.3},
             environment="grid", n_hosts=N_HOSTS, rounds=50,
             events=({"event": "value-change", "round": 10,
                      "values": {"0": 500.0, "1": 500.0}},)),
        0.20,
    ),
    (
        "count-sketch-reset/grid",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 32, "bits": 16, "cutoff": "default"},
             workload="constant", environment="grid", n_hosts=N_HOSTS, rounds=25),
        0.35,
    ),
    (
        "count-sketch-reset/ring-push",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 32, "bits": 16, "cutoff": "default"},
             workload="constant", environment="ring", mode="push",
             n_hosts=N_HOSTS, rounds=25),
        0.35,
    ),
    (
        "sketch-count/ring",
        dict(protocol="sketch-count", protocol_params={"bins": 32, "bits": 16},
             workload="constant", environment="ring", n_hosts=N_HOSTS, rounds=25),
        0.30,
    ),
    (
        "sketch-count/erdos-renyi-push",
        dict(protocol="sketch-count", protocol_params={"bins": 32, "bits": 16},
             workload="constant", environment="erdos-renyi",
             environment_params={"p": 0.15}, mode="push",
             n_hosts=N_HOSTS, rounds=25),
        0.30,
    ),
    (
        "extrema-gossip/spatial-grid",
        dict(protocol="extrema-gossip", environment="spatial-grid",
             n_hosts=N_HOSTS, rounds=30),
        0.05,
    ),
    (
        "extrema-reset/grid",
        dict(protocol="extrema-reset", protocol_params={"cutoff": 40},
             environment="grid", n_hosts=N_HOSTS, rounds=50),
        0.06,
    ),
    # ---- dynamic membership combos (joins, churn, trace replay) ---------
    (
        "push-sum-revert+join",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.1},
             n_hosts=N_HOSTS, rounds=40,
             events=({"event": "join", "round": 10, "count": 16},)),
        0.12,
    ),
    (
        "push-sum-revert+churn",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.1},
             n_hosts=N_HOSTS, rounds=40,
             events=({"event": "churn", "start": 10, "stop": 25,
                      "model": "uncorrelated", "fraction": 0.02,
                      "arrivals_per_round": 2},)),
        0.12,
    ),
    (
        "push-sum-revert/ring+churn-failures-only",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.1},
             environment="ring", n_hosts=N_HOSTS, rounds=40,
             events=({"event": "churn", "start": 10, "stop": 20,
                      "model": "uncorrelated", "fraction": 0.01},)),
        0.15,
    ),
    (
        "count-sketch-reset+churn",
        dict(protocol="count-sketch-reset",
             protocol_params={"bins": 16, "bits": 16, "cutoff": "default"},
             workload="constant", n_hosts=N_HOSTS, rounds=40,
             events=({"event": "churn", "start": 10, "stop": 25,
                      "model": "uncorrelated", "fraction": 0.03,
                      "arrivals_per_round": 2},)),
        0.40,
    ),
    (
        "push-sum-revert/trace",
        dict(protocol="push-sum-revert", protocol_params={"reversion": 0.05},
             environment="trace", environment_params={"devices": 64, "hours": 2.0},
             n_hosts=N_HOSTS, rounds=60, group_relative=True),
        0.15,
    ),
]

COMBO_IDS = [combo_id for combo_id, _kwargs, _tol in SUPPORTED_COMBOS]


def _seed_summary(spec_kwargs, backend):
    """(mean final estimate, mean final error, mean truth) across SEEDS."""
    estimates, errors, truths = [], [], []
    for seed in SEEDS:
        spec = ScenarioSpec(seed=seed, backend=backend, **spec_kwargs)
        result = run_scenario(spec)
        assert result.metadata["backend"] == backend
        estimates.append(result.mean_estimate())
        errors.append(result.final_error())
        truths.append(result.final_truth())
    return float(np.mean(estimates)), float(np.mean(errors)), float(np.mean(truths))


class TestBackendEquivalence:
    """Agent and vectorised backends agree in distribution on every combo."""

    @pytest.mark.parametrize(
        "spec_kwargs, rel_tol",
        [(kwargs, tol) for _combo_id, kwargs, tol in SUPPORTED_COMBOS],
        ids=COMBO_IDS,
    )
    def test_estimate_distributions_agree(self, spec_kwargs, rel_tol):
        agent_mean, agent_error, agent_truth = _seed_summary(spec_kwargs, "agent")
        vector_mean, vector_error, vector_truth = _seed_summary(spec_kwargs, "vectorized")
        scale = max(abs(agent_truth), abs(vector_truth), 1.0)
        # The two engines see the same truth (uncorrelated failures remove
        # different random subsets, so allow the sampling wiggle there).
        assert vector_truth == pytest.approx(agent_truth, rel=0.25, abs=0.25 * scale)
        # Both estimate their truth within the combo's tolerance...
        assert abs(agent_mean - agent_truth) <= rel_tol * scale
        assert abs(vector_mean - vector_truth) <= rel_tol * scale
        # ...and the seed-averaged estimates agree with each other.
        assert abs(vector_mean - agent_mean) <= 2.0 * rel_tol * scale
        # Error magnitudes are comparable: neither engine may be wildly
        # noisier than the other on a supported combo.
        assert max(agent_error, vector_error) <= 6.0 * min(agent_error, vector_error) + 0.05 * scale

    def test_extrema_value_change_parity(self):
        """Dropping the current maximum holder's value must propagate on both
        backends: the stale maximum ages out and the network re-converges to
        the runner-up (the 'most popular song changed' scenario).  The
        cutoff must exceed the rumour-spreading time (~log2 n) or live
        values churn in and out; 12 >> log2(48)."""
        for seed in (0, 1, 2):
            base = ScenarioSpec(protocol="extrema-reset", protocol_params={"cutoff": 12},
                                n_hosts=48, rounds=55, seed=seed)
            top = int(np.argmax(base.build_values()))
            spec = base.replace(
                events=({"event": "value-change", "round": 8, "values": {str(top): 0.0}},)
            )
            agent = run_scenario(spec.replace(backend="agent"))
            vector = run_scenario(spec.replace(backend="vectorized"))
            # Truth drops to the runner-up identically on both backends...
            assert vector.final_truth() == pytest.approx(agent.final_truth())
            assert agent.final_truth() < base.replace(rounds=1).run().final_truth()
            # ...and both engines re-converge to it (the stale maximum ages
            # out instead of being refreshed by its originator forever).
            assert agent.plateau_error(10) <= 0.02 * agent.final_truth()
            assert vector.plateau_error(10) <= 0.02 * vector.final_truth()

    def test_vectorized_deterministic(self):
        kwargs = SUPPORTED_COMBOS[0][1]
        first = run_scenario(ScenarioSpec(seed=5, backend="vectorized", **kwargs))
        second = run_scenario(ScenarioSpec(seed=5, backend="vectorized", **kwargs))
        assert first.errors() == second.errors()
        assert first.truths() == second.truths()

    @pytest.mark.parametrize(
        "environment", ["ring", "grid", "random-geometric", "erdos-renyi", "spatial-grid"]
    )
    def test_topology_kernels_bit_deterministic(self, environment):
        # Same seed, same spec => bit-identical series on every topology,
        # including after a mid-run failure (the live-CSR rebuild path).
        kwargs = dict(
            protocol="push-sum-revert", protocol_params={"reversion": 0.1},
            environment=environment, n_hosts=64, rounds=20,
            events=({"event": "failure", "round": 10, "model": "uncorrelated",
                     "fraction": 0.25},),
            backend="vectorized",
        )
        first = run_scenario(ScenarioSpec(seed=3, **kwargs))
        second = run_scenario(ScenarioSpec(seed=3, **kwargs))
        assert first.errors() == second.errors()
        assert first.truths() == second.truths()
        assert first.alive_counts() == second.alive_counts()

    def test_group_relative_vectorized_matches_agent_semantics(self):
        # After a 30% failure a ring can fragment; each host must be scored
        # against its own component's average, and the mean component size
        # must be recorded, on both backends.
        spec = ScenarioSpec(
            protocol="push-sum-revert", protocol_params={"reversion": 0.1},
            environment="ring", n_hosts=64, rounds=40, group_relative=True,
            events=({"event": "failure", "round": 15, "model": "uncorrelated",
                     "fraction": 0.3},),
        )
        assert spec.resolved_backend() == "vectorized"
        vector = run_scenario(spec.replace(backend="vectorized"))
        agent = run_scenario(spec.replace(backend="agent"))
        for result in (vector, agent):
            final = result.final_record()
            assert final.group_sizes is not None and final.group_sizes >= 1.0
            assert final.n_alive == 45  # round(0.7 * 64)
        # Both engines end up near their (group-relative) truth.
        assert vector.final_error() <= 0.25 * abs(vector.final_truth())
        assert agent.final_error() <= 0.25 * abs(agent.final_truth())

    def test_trace_replay_matches_agent_group_structure(self):
        # The compiled per-round CSR must replay *exactly* the adjacency and
        # group structure the agent environment answers: identical truths
        # and mean group sizes every single round.
        spec = ScenarioSpec(
            protocol="push-sum-revert", protocol_params={"reversion": 0.05},
            environment="trace", environment_params={"dataset": 1},
            n_hosts=9, rounds=300, group_relative=True, seed=4,
        )
        assert spec.resolved_backend() == "vectorized"
        vector = run_scenario(spec.replace(backend="vectorized"))
        agent = run_scenario(spec.replace(backend="agent"))
        assert vector.truths() == agent.truths()
        assert vector.group_size_series() == agent.group_size_series()
        assert vector.alive_counts() == agent.alive_counts()

    def test_trace_replay_bit_deterministic(self):
        kwargs = dict(
            protocol="push-sum-revert", protocol_params={"reversion": 0.05},
            environment="trace", environment_params={"devices": 32, "hours": 1.0},
            n_hosts=32, rounds=40, group_relative=True, backend="vectorized",
        )
        first = run_scenario(ScenarioSpec(seed=7, **kwargs))
        second = run_scenario(ScenarioSpec(seed=7, **kwargs))
        assert first.errors() == second.errors()
        assert first.truths() == second.truths()
        assert first.group_size_series() == second.group_size_series()

    def test_churn_bit_deterministic_with_joins(self):
        kwargs = dict(
            protocol="push-sum-revert", protocol_params={"reversion": 0.1},
            n_hosts=64, rounds=30, backend="vectorized",
            events=({"event": "churn", "start": 5, "stop": 20,
                     "model": "uncorrelated", "fraction": 0.03,
                     "arrivals_per_round": 2},),
        )
        first = run_scenario(ScenarioSpec(seed=9, **kwargs))
        second = run_scenario(ScenarioSpec(seed=9, **kwargs))
        assert first.errors() == second.errors()
        assert first.alive_counts() == second.alive_counts()

    def test_join_growth_visible_in_alive_counts(self):
        spec = ScenarioSpec(
            protocol="push-sum-revert", n_hosts=32, rounds=10,
            events=({"event": "join", "round": 4, "count": 8},),
        )
        for backend in ("agent", "vectorized"):
            counts = run_scenario(spec.replace(backend=backend)).alive_counts()
            assert counts[3] == 32 and counts[4] == 40, backend

    def test_erdos_renyi_environment_is_seed_deterministic(self):
        base = ScenarioSpec(protocol="push-sum-revert", environment="erdos-renyi",
                            environment_params={"p": 0.2, "graph_seed": 11},
                            n_hosts=32, rounds=3)
        first = base.build_environment().adjacency
        second = base.build_environment().adjacency
        assert first == second
        other = base.replace(
            environment_params={"p": 0.2, "graph_seed": 12}
        ).build_environment().adjacency
        assert first != other
        # Reachable from the spec layer end to end.
        assert run_scenario(base).metadata["environment"] == "NeighborhoodEnvironment"

    def test_sketch_count_defaults_agree_across_backends(self):
        # One spec must mean one sketch geometry on either backend.
        spec = ScenarioSpec(protocol="sketch-count", workload="constant",
                            n_hosts=16, rounds=2)
        protocol = spec.build_protocol()
        kernel = BACKENDS.get("vectorized").build_kernel(spec)
        assert (kernel.bins, kernel.bits) == (protocol.bins, protocol.bits)

    def test_null_cutoff_means_no_decay_on_both_backends(self):
        # JSON "cutoff": null is the named "off" cutoff; it must run (not
        # crash mid-run) and disable decay on both engines.
        spec = ScenarioSpec(protocol="count-sketch-reset",
                            protocol_params={"bins": 8, "bits": 12, "cutoff": None},
                            workload="constant", n_hosts=32, rounds=8)
        for backend in ("agent", "vectorized"):
            result = run_scenario(spec.replace(backend=backend))
            assert result.final_truth() == 32.0

    def test_store_estimates_supported(self):
        spec = ScenarioSpec(
            protocol="push-sum-revert", n_hosts=32, rounds=5,
            backend="vectorized", store_estimates=True,
        )
        result = run_scenario(spec)
        final = result.final_record().estimates
        assert final is not None and len(final) == 32
        assert all(isinstance(key, int) for key in final)


class TestAutoDispatch:
    def test_uniform_scenarios_go_vectorized(self):
        spec = ScenarioSpec(protocol="push-sum-revert", n_hosts=64, rounds=5)
        assert spec.backend == "auto"
        assert resolve_backend(spec) == "vectorized"
        assert spec.resolved_backend() == "vectorized"
        assert run_scenario(spec).metadata["backend"] == "vectorized"

    def test_topology_scenarios_go_vectorized(self):
        for environment in ("ring", "grid", "random-geometric", "spatial-grid",
                            "erdos-renyi"):
            spec = ScenarioSpec(protocol="push-sum-revert", environment=environment,
                                n_hosts=64, rounds=5)
            assert resolve_backend(spec) == "vectorized", environment
            result = run_scenario(spec)
            assert result.metadata["backend"] == "vectorized"
            assert result.metadata["environment"] != "UniformEnvironment"

    def test_unsupported_scenarios_fall_back_to_agent(self):
        broadcast_trace = ScenarioSpec(
            protocol="push-sum-revert", environment="trace",
            environment_params={"dataset": 1, "broadcast": True},
            n_hosts=9, rounds=5)
        assert resolve_backend(broadcast_trace) == "agent"
        full_transfer_ring = ScenarioSpec(
            protocol="push-sum-revert-full-transfer", environment="ring",
            mode="push", n_hosts=64, rounds=5)
        assert resolve_backend(full_transfer_ring) == "agent"
        joins_on_ring = ScenarioSpec(
            protocol="push-sum-revert", environment="ring", n_hosts=64, rounds=5,
            events=({"event": "join", "round": 2, "count": 4},))
        assert resolve_backend(joins_on_ring) == "agent"

    def test_dynamic_membership_scenarios_go_vectorized(self):
        trace = ScenarioSpec(protocol="push-sum-revert", environment="trace",
                             n_hosts=9, rounds=5)
        assert resolve_backend(trace) == "vectorized"
        joins = ScenarioSpec(protocol="push-sum-revert", n_hosts=64, rounds=5,
                             events=({"event": "join", "round": 2, "count": 4},))
        assert resolve_backend(joins) == "vectorized"
        churn = ScenarioSpec(
            protocol="push-sum-revert", n_hosts=64, rounds=5,
            events=({"event": "churn", "start": 1, "stop": 3,
                     "model": "uncorrelated", "fraction": 0.01,
                     "arrivals_per_round": 1},))
        assert resolve_backend(churn) == "vectorized"

    def test_explicit_agent_is_respected(self):
        spec = ScenarioSpec(protocol="push-sum-revert", n_hosts=64, rounds=5,
                            backend="agent")
        assert resolve_backend(spec) == "agent"
        assert run_scenario(spec).metadata["backend"] == "agent"

    def test_backend_round_trips_through_json(self):
        spec = ScenarioSpec(protocol="push-sum-revert", n_hosts=64, rounds=5,
                            backend="vectorized")
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.backend == "vectorized"

    def test_backend_is_a_sweep_axis(self):
        base = ScenarioSpec(protocol="push-sum-revert", n_hosts=48, rounds=6, seed=1)
        sweep = Sweep.over(base, backend=["agent", "vectorized"])
        result = SweepRunner(parallel=False).run(sweep)
        assert len(result.rows) == 2
        assert [r.metadata["backend"] for r in result.results] == ["agent", "vectorized"]


class TestEagerBackendValidation:
    """Bad backend requests fail at spec construction with the reason."""

    def base_kwargs(self, **overrides):
        kwargs = dict(protocol="push-sum-revert", n_hosts=32, rounds=4,
                      backend="vectorized")
        kwargs.update(overrides)
        return kwargs

    def test_unknown_backend_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'.*agent.*auto.*vectorized"):
            ScenarioSpec(protocol="push-sum-revert", backend="gpu")

    def test_full_transfer_on_topology_rejected(self):
        with pytest.raises(ValueError, match="uniform gossip"):
            ScenarioSpec(**self.base_kwargs(
                protocol="push-sum-revert-full-transfer", environment="ring",
                mode="push"))

    def test_broadcast_trace_rejected(self):
        # Point-to-point trace replay is vectorised; the broadcast variant
        # (every in-range neighbour hears each send) stays agent-only.
        with pytest.raises(ValueError, match="broadcast trace"):
            ScenarioSpec(**self.base_kwargs(
                environment="trace",
                environment_params={"dataset": 1, "broadcast": True},
                n_hosts=9))

    def test_group_relative_on_uniform_rejected(self):
        # Uniform gossip defines no groups on either backend; the topology
        # environments *do* support group-relative error now.
        with pytest.raises(ValueError, match="environment that defines groups"):
            ScenarioSpec(**self.base_kwargs(group_relative=True))

    def test_protocol_without_kernel_rejected(self):
        with pytest.raises(ValueError, match="no vectorised kernel"):
            ScenarioSpec(**self.base_kwargs(protocol="invert-average"))

    def test_unsupported_mode_rejected(self):
        with pytest.raises(ValueError, match="only vectorised in mode"):
            ScenarioSpec(**self.base_kwargs(protocol="extrema-gossip", mode="push"))

    def test_unknown_kernel_parameter_rejected(self):
        with pytest.raises(ValueError, match="weight_epsilon"):
            ScenarioSpec(**self.base_kwargs(protocol_params={"weight_epsilon": 1e-9}))

    def test_unvectorised_failure_model_rejected(self):
        with pytest.raises(ValueError, match="failure model 'bernoulli' is not vectorised"):
            ScenarioSpec(**self.base_kwargs(
                events=({"event": "failure", "round": 2, "model": "bernoulli", "p": 0.1},)
            ))

    def test_join_events_on_topology_rejected(self):
        # Joins are vectorised under uniform gossip only; a static or trace
        # topology has no slots for new hosts.
        for environment, params in (("ring", {}), ("trace", {"dataset": 1})):
            with pytest.raises(ValueError, match="only vectorised under uniform gossip"):
                ScenarioSpec(**self.base_kwargs(
                    environment=environment, environment_params=params,
                    n_hosts=9 if environment == "trace" else 32,
                    events=({"event": "join", "round": 2, "count": 4},)
                ))

    def test_churn_arrivals_on_topology_rejected(self):
        with pytest.raises(ValueError, match="churn with arrivals"):
            ScenarioSpec(**self.base_kwargs(
                environment="ring",
                events=({"event": "churn", "start": 1, "stop": 3,
                         "model": "uncorrelated", "fraction": 0.01,
                         "arrivals_per_round": 2},)
            ))

    def test_churn_with_unvectorised_model_rejected(self):
        with pytest.raises(ValueError, match="churn failure model 'bernoulli'"):
            ScenarioSpec(**self.base_kwargs(
                events=({"event": "churn", "start": 1, "stop": 3,
                         "model": "bernoulli", "p": 0.1},)
            ))

    @pytest.mark.parametrize("bad_cutoff", ["default", [7.0, 0.25], 2.5, True])
    def test_extrema_reset_rejects_function_cutoffs(self, bad_cutoff):
        # extrema-reset's cutoff is an integer age, not a named freshness
        # function; both backends must reject it eagerly, not mid-run.
        for backend in ("agent", "vectorized", "auto"):
            with pytest.raises(ValueError, match="positive integer 'cutoff'"):
                ScenarioSpec(protocol="extrema-reset",
                             protocol_params={"cutoff": bad_cutoff},
                             n_hosts=16, rounds=3, backend=backend)

    def test_extrema_reset_integer_cutoff_still_runs(self):
        spec = ScenarioSpec(protocol="extrema-reset", protocol_params={"cutoff": 7},
                            n_hosts=16, rounds=3, backend="vectorized")
        assert run_scenario(spec).final_error() >= 0.0

    def test_value_change_rejected_for_counting_kernels(self):
        with pytest.raises(ValueError, match="value-change"):
            ScenarioSpec(**self.base_kwargs(
                protocol="count-sketch-reset",
                protocol_params={"bins": 8, "bits": 12},
                events=({"event": "value-change", "round": 2, "values": {"0": 2.0}},)
            ))

    def test_auto_never_raises_for_valid_scenarios(self):
        spec = ScenarioSpec(protocol="push-sum-revert-full-transfer",
                            environment="ring", mode="push",
                            n_hosts=32, rounds=4, backend="auto")
        assert spec.resolved_backend() == "agent"

    def test_mid_run_error_message_matches_supports(self):
        backend = BACKENDS.get("vectorized")
        assert isinstance(backend, VectorizedBackend)
        spec = ScenarioSpec(protocol="push-sum-revert", environment="trace",
                            environment_params={"dataset": 1, "broadcast": True},
                            n_hosts=9, rounds=4)
        reason = backend.supports(spec)
        assert reason is not None and "broadcast" in reason
        with pytest.raises(ValueError, match="broadcast"):
            backend.run(spec)
