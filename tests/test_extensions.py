"""Tests for the extension features: graceful departures and extrema gossip."""

import numpy as np
import pytest

from repro.baselines import ExtremaGossip, ExtremaReset, PushSum
from repro.core import (
    CountSketchReset,
    GracefulDepartureEvent,
    InvertAverage,
    PushSumRevert,
)
from repro.core.departure import sign_off_counters, sign_off_invert_average, sign_off_mass
from repro.environments import UniformEnvironment
from repro.failures import CorrelatedFailure, ExplicitFailure, FailureEvent
from repro.simulator import Simulation
from repro.workloads import uniform_values


@pytest.fixture
def rng():
    return np.random.default_rng(4)


class TestSignOffPrimitives:
    def test_sign_off_mass_conserves_total(self, rng):
        protocol = PushSum()
        leaving = protocol.create_state(0, 30.0, rng)
        staying = protocol.create_state(1, 10.0, rng)
        total_before = leaving.total + staying.total
        sign_off_mass(leaving, staying)
        assert leaving.total == 0.0
        assert leaving.weight == 0.0
        assert staying.total == pytest.approx(total_before)
        assert staying.weight == pytest.approx(2.0)

    def test_protocol_sign_off_without_peer_drops_mass(self, rng):
        protocol = PushSum()
        leaving = protocol.create_state(0, 30.0, rng)
        protocol.sign_off(leaving, None, rng)
        assert leaving.weight == 0.0

    def test_sign_off_counters_disowns_positions(self, rng):
        protocol = CountSketchReset(bins=4, bits=8)
        state = protocol.create_state(0, 1.0, rng)
        sign_off_counters(state)
        assert state.matrix.owned == set()
        protocol.begin_round(state, 0, rng)
        assert int(state.matrix.counters.min()) >= 1

    def test_sign_off_invert_average_handles_both_halves(self, rng):
        protocol = InvertAverage(0.01, bins=4, bits=8)
        leaving = protocol.create_state(0, 30.0, rng)
        staying = protocol.create_state(1, 10.0, rng)
        sign_off_invert_average(leaving, staying)
        assert leaving.average_state.weight == 0.0
        assert staying.average_state.weight == pytest.approx(2.0)
        assert leaving.count_state.matrix.owned == set()


class TestGracefulDepartureEvent:
    def test_static_push_sum_with_handover_keeps_departed_value(self):
        """Mass hand-over preserves conservation exactly, so static Push-Sum
        converges to the average *including* the departed hosts' values —
        unlike a silent failure, no mass is destroyed."""
        n = 200
        values = uniform_values(n, seed=5)
        events = [GracefulDepartureEvent(round=15, model=CorrelatedFailure(0.5, highest=True))]
        sim = Simulation(
            PushSum(), UniformEnvironment(n), values, seed=5, mode="exchange", events=events
        )
        result = sim.run(40)
        original_average = sum(values) / len(values)
        # Estimates remain near the ORIGINAL average (the handed-over mass is
        # still in the system), so the error vs. the survivors' average equals
        # roughly the shift in the average.
        assert abs(result.mean_estimate() - original_average) < 3.0

    def test_reverting_protocol_forgets_after_graceful_departure(self):
        n = 200
        values = uniform_values(n, seed=5)
        events = [GracefulDepartureEvent(round=15, model=CorrelatedFailure(0.5, highest=True))]
        sim = Simulation(
            PushSumRevert(0.2),
            UniformEnvironment(n),
            values,
            seed=5,
            mode="exchange",
            events=events,
        )
        result = sim.run(60)
        assert result.final_error() < 10.0

    def test_population_actually_departs(self):
        n = 50
        events = [GracefulDepartureEvent(round=5, model=ExplicitFailure([0, 1, 2]))]
        sim = Simulation(
            PushSum(),
            UniformEnvironment(n),
            uniform_values(n, seed=1),
            seed=1,
            mode="exchange",
            events=events,
        )
        sim.run(8)
        assert len(sim.alive_ids()) == n - 3
        assert not sim.hosts[0].alive

    def test_graceful_counting_departure_decays_faster_than_silent(self):
        """Disowned positions stop being refreshed immediately, so the sketch
        estimate after a graceful departure is never larger than after a
        silent failure of the same hosts."""
        n = 120
        departing = list(range(60))

        def run(event):
            sim = Simulation(
                CountSketchReset(bins=16, bits=16),
                UniformEnvironment(n),
                [1.0] * n,
                seed=8,
                mode="exchange",
                events=[event],
            )
            return sim.run(30).mean_estimate()

        graceful = run(GracefulDepartureEvent(round=10, model=ExplicitFailure(departing)))
        silent = run(FailureEvent(round=10, model=ExplicitFailure(departing)))
        assert graceful <= silent + 1e-6

    def test_describe(self):
        event = GracefulDepartureEvent(round=3, model=CorrelatedFailure(0.5))
        description = event.describe()
        assert description["event"] == "graceful-departure"
        assert description["round"] == 3


class TestExtremaGossip:
    def test_state_initialisation(self, rng):
        protocol = ExtremaGossip()
        state = protocol.create_state(3, 7.5, rng)
        assert state.best_value == 7.5
        assert protocol.argmax(state) == 3

    def test_exchange_propagates_maximum(self, rng):
        protocol = ExtremaGossip()
        a = protocol.create_state(0, 10.0, rng)
        b = protocol.create_state(1, 99.0, rng)
        protocol.exchange(a, b, rng)
        assert protocol.estimate(a) == 99.0
        assert protocol.argmax(a) == 1

    def test_minimum_mode(self, rng):
        protocol = ExtremaGossip(maximum=False)
        a = protocol.create_state(0, 10.0, rng)
        b = protocol.create_state(1, 99.0, rng)
        protocol.exchange(a, b, rng)
        assert protocol.estimate(b) == 10.0
        assert protocol.aggregate == "min"

    def test_network_converges_to_true_maximum(self):
        n = 150
        values = uniform_values(n, seed=9)
        sim = Simulation(
            ExtremaGossip(), UniformEnvironment(n), values, seed=9, mode="exchange"
        )
        result = sim.run(15)
        assert result.final_error() < 1e-9
        assert result.mean_estimate() == pytest.approx(max(values))

    def test_static_extrema_never_forgets_departed_maximum(self):
        n = 150
        values = uniform_values(n, seed=9)
        top_host = int(np.argmax(values))
        events = [FailureEvent(round=10, model=ExplicitFailure([top_host]))]
        sim = Simulation(
            ExtremaGossip(),
            UniformEnvironment(n),
            values,
            seed=9,
            mode="exchange",
            events=events,
        )
        result = sim.run(40)
        # The departed maximum is still being reported.
        assert result.mean_estimate() == pytest.approx(max(values))
        assert result.final_error() > 0.0


class TestExtremaReset:
    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            ExtremaReset(cutoff=0)

    def test_converges_like_static_variant(self):
        n = 150
        values = uniform_values(n, seed=9)
        sim = Simulation(
            ExtremaReset(cutoff=15), UniformEnvironment(n), values, seed=9, mode="exchange"
        )
        result = sim.run(20)
        assert result.final_error() < 2.0

    def test_forgets_departed_maximum(self):
        n = 150
        values = uniform_values(n, seed=9)
        top_host = int(np.argmax(values))
        events = [FailureEvent(round=10, model=ExplicitFailure([top_host]))]
        sim = Simulation(
            ExtremaReset(cutoff=10),
            UniformEnvironment(n),
            values,
            seed=9,
            mode="exchange",
            events=events,
        )
        result = sim.run(60)
        surviving_max = max(v for i, v in enumerate(values) if i != top_host)
        # The stale maximum eventually ages out and the estimate re-converges
        # to the surviving maximum.
        assert result.mean_estimate() == pytest.approx(surviving_max, abs=1.0)
        assert result.final_error() < 2.0

    def test_age_resets_for_own_value(self, rng):
        protocol = ExtremaReset(cutoff=3)
        state = protocol.create_state(0, 5.0, rng)
        for round_index in range(10):
            protocol.begin_round(state, round_index, rng)
        assert state.best_age == 0
        assert state.best_value == 5.0

    def test_foreign_value_expires_after_cutoff(self, rng):
        protocol = ExtremaReset(cutoff=3)
        state = protocol.create_state(0, 5.0, rng)
        protocol.integrate(state, [(50.0, 9, 0)], rng)
        assert state.best_value == 50.0
        for round_index in range(4):
            protocol.begin_round(state, round_index, rng)
        assert state.best_value == 5.0
        assert state.best_id == 0
