"""Tests for the static baseline protocols."""

import numpy as np
import pytest

from repro.baselines import (
    EpochPushSum,
    HopsSampling,
    IntervalDensity,
    PushPull,
    PushSum,
    SketchCount,
    TreeAggregation,
)
from repro.environments import NeighborhoodEnvironment, UniformEnvironment
from repro.failures import FailureEvent, UncorrelatedFailure
from repro.simulator import Simulation
from repro.topology import complete_graph, grid_graph
from repro.workloads import uniform_values


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestPushSumUnit:
    def test_create_state(self, rng):
        protocol = PushSum()
        state = protocol.create_state(0, 7.0, rng)
        assert state.weight == 1.0
        assert state.total == 7.0
        assert protocol.estimate(state) == 7.0

    def test_make_payloads_splits_mass_in_half(self, rng):
        protocol = PushSum()
        state = protocol.create_state(0, 8.0, rng)
        payloads = protocol.make_payloads(state, [3], rng)
        destinations = [dest for dest, _ in payloads]
        assert destinations == [None, 3]
        for _, (weight, total) in payloads:
            assert weight == 0.5
            assert total == 4.0

    def test_make_payloads_isolated_host_keeps_mass(self, rng):
        protocol = PushSum()
        state = protocol.create_state(0, 8.0, rng)
        payloads = protocol.make_payloads(state, [], rng)
        assert payloads == [(None, (1.0, 8.0))]

    def test_integrate_sums_received_mass(self, rng):
        protocol = PushSum()
        state = protocol.create_state(0, 8.0, rng)
        protocol.integrate(state, [(0.5, 4.0), (0.25, 1.0)], rng)
        assert state.weight == 0.75
        assert state.total == 5.0
        assert protocol.estimate(state) == pytest.approx(5.0 / 0.75)

    def test_integrate_empty_leaves_host_massless(self, rng):
        protocol = PushSum()
        state = protocol.create_state(0, 8.0, rng)
        protocol.integrate(state, [], rng)
        assert state.weight == 0.0
        # The estimate falls back to the last well-defined value.
        assert protocol.estimate(state) == 8.0

    def test_exchange_conserves_and_averages_mass(self, rng):
        protocol = PushSum()
        a = protocol.create_state(0, 10.0, rng)
        b = protocol.create_state(1, 20.0, rng)
        protocol.exchange(a, b, rng)
        assert a.weight == b.weight == 1.0
        assert a.total == b.total == 15.0

    def test_rebase_updates_initial_value(self, rng):
        protocol = PushSum()
        state = protocol.create_state(0, 1.0, rng)
        protocol.rebase(state, 5.0)
        assert state.initial_value == 5.0

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PushSum(weight_epsilon=0.0)

    def test_pushpull_alias(self):
        assert PushPull().name == "push-pull"


class TestSketchCountProtocol:
    def test_counting_state_registers_one_identifier(self, rng):
        protocol = SketchCount(bins=8, bits=16)
        state = protocol.create_state(3, 55.0, rng)
        assert state.own_identifiers == 1

    def test_sum_mode_registers_value_identifiers(self, rng):
        protocol = SketchCount(bins=8, bits=16, value_as_identifiers=True)
        state = protocol.create_state(3, 5.0, rng)
        assert state.own_identifiers == 5
        assert protocol.aggregate == "sum"

    def test_sum_mode_rejects_negative_values(self, rng):
        protocol = SketchCount(bins=8, bits=16, value_as_identifiers=True)
        with pytest.raises(ValueError):
            protocol.create_state(3, -2.0, rng)

    def test_exchange_unions_sketches(self, rng):
        protocol = SketchCount(bins=8, bits=16)
        a = protocol.create_state(0, 1.0, rng)
        b = protocol.create_state(1, 1.0, rng)
        protocol.exchange(a, b, rng)
        assert np.array_equal(a.sketch.matrix, b.sketch.matrix)

    def test_estimate_counts_hosts(self):
        n = 200
        sim = Simulation(
            SketchCount(bins=32, bits=20),
            UniformEnvironment(n),
            [1.0] * n,
            seed=4,
            mode="exchange",
        )
        result = sim.run(15)
        assert 0.5 * n < result.mean_estimate() < 2.0 * n

    def test_identifiers_per_host_divides_estimate(self, rng):
        protocol = SketchCount(bins=16, bits=20, identifiers_per_host=10)
        state = protocol.create_state(0, 1.0, rng)
        assert state.own_identifiers == 10
        assert protocol.estimate(state) < 16  # raw estimate divided by 10

    def test_invalid_identifiers_per_host(self):
        with pytest.raises(ValueError):
            SketchCount(identifiers_per_host=0)


class TestEpochPushSum:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EpochPushSum(epoch_length=0)
        with pytest.raises(ValueError):
            EpochPushSum(max_offset=-1)

    def test_estimate_reports_previous_epoch(self):
        values = uniform_values(100, seed=2)
        sim = Simulation(
            EpochPushSum(epoch_length=10),
            UniformEnvironment(100),
            values,
            seed=2,
            mode="exchange",
        )
        result = sim.run(25)
        truth = sum(values) / len(values)
        # After two full epochs the reported estimate tracks the average.
        assert abs(result.mean_estimate() - truth) < 5.0

    def test_initial_estimate_is_own_value(self, rng):
        protocol = EpochPushSum(epoch_length=5)
        state = protocol.create_state(0, 33.0, rng)
        assert protocol.estimate(state) == 33.0

    def test_epoch_reset_restarts_mass(self, rng):
        protocol = EpochPushSum(epoch_length=2)
        state = protocol.create_state(0, 10.0, rng)
        state.mass.weight = 0.5
        state.mass.total = 40.0
        protocol.begin_round(state, 2, rng)  # crosses into epoch 1
        assert state.current_epoch == 1
        assert state.mass.weight == 1.0
        assert state.mass.total == 10.0
        assert protocol.estimate(state) == pytest.approx(80.0)

    def test_mismatched_epochs_do_not_exchange(self, rng):
        protocol = EpochPushSum(epoch_length=5)
        a = protocol.create_state(0, 10.0, rng)
        b = protocol.create_state(1, 20.0, rng)
        b.current_epoch = 3
        protocol.exchange(a, b, rng)
        assert a.mass.total == 10.0
        assert b.mass.total == 20.0

    def test_offsets_are_bounded(self, rng):
        protocol = EpochPushSum(epoch_length=5, max_offset=3)
        offsets = {protocol.create_state(i, 1.0, rng).epoch_offset for i in range(50)}
        assert offsets <= {0, 1, 2, 3}
        assert len(offsets) > 1


class TestTreeAggregation:
    def test_average_over_connected_graph(self):
        graph = complete_graph(5)
        values = {i: float(i) for i in range(5)}
        result = TreeAggregation("average").query(graph, values, root=0)
        assert result.value == pytest.approx(2.0)
        assert result.reachable == set(range(5))

    def test_count_and_sum(self):
        graph = grid_graph(3, 1)
        values = {0: 1.0, 1: 2.0, 2: 3.0}
        assert TreeAggregation("count").query(graph, values, 0).value == 3.0
        assert TreeAggregation("sum").query(graph, values, 0).value == 6.0

    def test_unsupported_aggregate_rejected(self):
        with pytest.raises(ValueError):
            TreeAggregation("median")

    def test_query_restricted_to_component(self):
        graph = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        values = {0: 1.0, 1: 3.0, 2: 100.0, 3: 200.0}
        result = TreeAggregation("average").query(graph, values, root=0)
        assert result.value == pytest.approx(2.0)
        assert result.reachable == {0, 1}

    def test_root_must_be_alive(self):
        with pytest.raises(ValueError):
            TreeAggregation().query({0: set()}, {0: 1.0}, root=0, alive=[])

    def test_message_count_scales_with_tree_edges(self):
        graph = complete_graph(6)
        values = {i: 1.0 for i in range(6)}
        with_dissemination = TreeAggregation(disseminate=True).query(graph, values, 0)
        without = TreeAggregation(disseminate=False).query(graph, values, 0)
        assert with_dissemination.messages == 15
        assert without.messages == 10

    def test_depth_of_path_graph(self):
        graph = grid_graph(4, 1)
        values = {i: 1.0 for i in range(4)}
        result = TreeAggregation().query(graph, values, root=0)
        assert result.depth == 3

    def test_query_all_components_covers_every_host(self):
        graph = {0: {1}, 1: {0}, 2: set()}
        values = {0: 2.0, 1: 4.0, 2: 9.0}
        results = TreeAggregation("average").query_all_components(graph, values)
        assert set(results) == {0, 1, 2}
        assert results[0].value == pytest.approx(3.0)
        assert results[2].value == pytest.approx(9.0)

    def test_alive_filter_excludes_failed_hosts(self):
        graph = complete_graph(4)
        values = {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0}
        result = TreeAggregation("average").query(graph, values, root=0, alive=[0, 1])
        assert result.value == pytest.approx(5.0)


class TestSizeEstimators:
    def test_hops_sampling_order_of_magnitude(self):
        estimate = HopsSampling(1000, seed=1).run()
        assert 200 < estimate < 5000

    def test_hops_sampling_grows_with_population(self):
        small = HopsSampling(100, seed=1).run()
        large = HopsSampling(10000, seed=1).run()
        assert large > small

    def test_hops_sampling_validation(self):
        with pytest.raises(ValueError):
            HopsSampling(0)
        with pytest.raises(ValueError):
            HopsSampling(10, fanout=0)

    def test_interval_density_converges_with_observation(self):
        estimate = IntervalDensity(500, rounds=20000, subinterval=0.5, seed=1).run()
        assert 250 < estimate < 900

    def test_interval_density_validation(self):
        with pytest.raises(ValueError):
            IntervalDensity(10, subinterval=0.0)
        with pytest.raises(ValueError):
            IntervalDensity(10, rounds=0)

    def test_messages_used_reported(self):
        sampler = HopsSampling(100, rounds=10, seed=1)
        assert sampler.messages_used() == 100 * 10
        density = IntervalDensity(100, rounds=10, samples_per_round=4, seed=1)
        assert density.messages_used() == 40
