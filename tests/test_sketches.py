"""Tests for hashing primitives, FM sketches and the counter matrix."""

import numpy as np
import pytest

from repro.sketches import (
    CounterMatrix,
    FMSketch,
    PHI,
    bin_index,
    fm_estimate,
    identifier_hash,
    rank_of_bits,
    rho,
)
from repro.sketches.counter_matrix import INFINITY
from repro.sketches.fm_sketch import expected_relative_error
from repro.sketches.hashing import sketch_coordinates


class TestHashing:
    def test_identifier_hash_is_deterministic(self):
        assert identifier_hash(("host", 3)) == identifier_hash(("host", 3))

    def test_identifier_hash_salt_changes_value(self):
        assert identifier_hash("x") != identifier_hash("x", salt="other")

    def test_identifier_hash_distinguishes_types(self):
        assert identifier_hash(1) != identifier_hash("1")

    def test_rho_range_and_determinism(self):
        for identifier in range(200):
            value = rho(identifier, bits=16)
            assert 0 <= value <= 16
            assert value == rho(identifier, bits=16)

    def test_rho_distribution_is_roughly_geometric(self):
        values = [rho(("id", i), bits=32) for i in range(4000)]
        share_zero = sum(1 for v in values if v == 0) / len(values)
        share_one = sum(1 for v in values if v == 1) / len(values)
        assert 0.45 < share_zero < 0.55
        assert 0.20 < share_one < 0.30

    def test_rho_validates_bits(self):
        with pytest.raises(ValueError):
            rho("x", bits=0)

    def test_bin_index_range_and_uniformity(self):
        bins = [bin_index(("id", i), 4) for i in range(4000)]
        assert set(bins) == {0, 1, 2, 3}
        counts = np.bincount(bins)
        assert counts.min() > 0.8 * counts.max()

    def test_bin_index_validates_bins(self):
        with pytest.raises(ValueError):
            bin_index("x", 0)

    def test_sketch_coordinates_within_matrix(self):
        for i in range(100):
            bin_idx, bit_idx = sketch_coordinates(("h", i), bins=8, bits=16)
            assert 0 <= bin_idx < 8
            assert 0 <= bit_idx < 16


class TestRankAndEstimate:
    def test_rank_of_bits(self):
        assert rank_of_bits([True, True, False, True]) == 2
        assert rank_of_bits([False, True]) == 0
        assert rank_of_bits([True, True, True]) == 3
        assert rank_of_bits([]) == 0

    def test_fm_estimate_matches_formula(self):
        assert fm_estimate([3.0, 3.0], 2) == pytest.approx(2 / PHI * 8.0)
        assert fm_estimate([3.0, 3.0], 2, paper_formula=True) == pytest.approx(2 * PHI * 8.0)

    def test_fm_estimate_validates_inputs(self):
        with pytest.raises(ValueError):
            fm_estimate([1.0], 2)
        with pytest.raises(ValueError):
            fm_estimate([], 0)

    def test_expected_relative_error_64_bins(self):
        # The paper quotes 9.7% for 64 buckets.
        assert expected_relative_error(64) == pytest.approx(0.0975, abs=0.001)


class TestFMSketch:
    def test_insert_is_idempotent(self):
        sketch = FMSketch(bins=8, bits=16)
        sketch.insert("object")
        matrix_after_one = sketch.matrix.copy()
        sketch.insert("object")
        assert np.array_equal(sketch.matrix, matrix_after_one)

    def test_estimate_grows_with_distinct_insertions(self):
        sketch = FMSketch(bins=16, bits=24)
        sketch.insert_many(range(10))
        small = sketch.estimate()
        sketch.insert_many(range(10, 2000))
        assert sketch.estimate() > small

    def test_estimate_accuracy_with_many_bins(self):
        sketch = FMSketch(bins=64, bits=24)
        sketch.insert_many(("item", i) for i in range(5000))
        estimate = sketch.estimate()
        assert 0.6 * 5000 < estimate < 1.6 * 5000

    def test_union_is_duplicate_insensitive(self):
        a = FMSketch(bins=8, bits=16)
        b = FMSketch(bins=8, bits=16)
        a.insert_many(range(100))
        b.insert_many(range(50, 150))
        union = a.union(b)
        direct = FMSketch(bins=8, bits=16)
        direct.insert_many(range(150))
        assert union == direct

    def test_union_update_in_place(self):
        a = FMSketch(bins=4, bits=8)
        b = FMSketch(bins=4, bits=8)
        a.insert(1)
        b.insert(2)
        a.union_update(b)
        expected = FMSketch(bins=4, bits=8)
        expected.insert_many([1, 2])
        assert a == expected

    def test_union_requires_compatible_shapes(self):
        with pytest.raises(ValueError):
            FMSketch(bins=4, bits=8).union(FMSketch(bins=8, bits=8))
        with pytest.raises(ValueError):
            FMSketch(bins=4, bits=8).union(FMSketch(bins=4, bits=8, salt="other"))

    def test_insert_value_registers_value_identifiers(self):
        sketch = FMSketch(bins=32, bits=24)
        sketch.insert_value("host", 500)
        assert 150 < sketch.estimate() < 1500

    def test_insert_value_rejects_negative(self):
        with pytest.raises(ValueError):
            FMSketch().insert_value("host", -1)

    def test_copy_is_independent(self):
        sketch = FMSketch(bins=4, bits=8)
        sketch.insert(1)
        clone = sketch.copy()
        clone.insert(2)
        assert sketch != clone

    def test_size_bytes(self):
        assert FMSketch(bins=8, bits=16).size_bytes() == 16

    def test_ranks_all_true_row(self):
        sketch = FMSketch(bins=1, bits=4)
        sketch.matrix[0, :] = True
        assert sketch.ranks() == [4]


class TestCounterMatrix:
    def test_construction_validates_shape(self):
        with pytest.raises(ValueError):
            CounterMatrix(0, 4)

    def test_owned_positions_pinned_to_zero(self):
        matrix = CounterMatrix(4, 8, owned=[(1, 2)])
        assert matrix.counters[1, 2] == 0
        matrix.increment()
        assert matrix.counters[1, 2] == 0
        assert matrix.counters[0, 0] == INFINITY

    def test_own_validates_position(self):
        matrix = CounterMatrix(4, 8)
        with pytest.raises(ValueError):
            matrix.own((5, 0))

    def test_increment_ages_unowned(self):
        matrix = CounterMatrix(2, 4, owned=[(0, 0)])
        matrix.counters[1, 1] = 3
        matrix.increment()
        assert matrix.counters[1, 1] == 4

    def test_merge_min_takes_elementwise_minimum(self):
        a = CounterMatrix(2, 4, owned=[(0, 0)])
        b = CounterMatrix(2, 4, owned=[(1, 1)])
        a.counters[0, 1] = 10
        b.counters[0, 1] = 3
        a.merge_min(b)
        assert a.counters[0, 1] == 3
        assert a.counters[0, 0] == 0  # owned stays pinned
        assert a.counters[1, 1] == 0  # learned about b's fresh position

    def test_merge_min_preserves_own_positions(self):
        a = CounterMatrix(2, 4, owned=[(0, 0)])
        b = CounterMatrix(2, 4)
        b.counters[0, 0] = 7
        a.counters[0, 0] = 5  # should never happen, but owned must re-pin
        a.merge_min(b)
        assert a.counters[0, 0] == 0

    def test_merge_min_array_shape_check(self):
        a = CounterMatrix(2, 4)
        with pytest.raises(ValueError):
            a.merge_min_array(np.zeros((3, 4), dtype=np.int64))

    def test_merge_requires_compatible_shapes(self):
        with pytest.raises(ValueError):
            CounterMatrix(2, 4).merge_min(CounterMatrix(2, 5))

    def test_for_value_registers_identifiers(self):
        matrix = CounterMatrix.for_value("host", 50, bins=16, bits=16)
        assert 1 <= len(matrix.owned) <= 50
        assert CounterMatrix.for_value("host", 0, bins=4, bits=4).owned == set()
        with pytest.raises(ValueError):
            CounterMatrix.for_value("host", -1, bins=4, bits=4)

    def test_bit_image_and_estimate(self):
        matrix = CounterMatrix.for_value("host", 200, bins=16, bits=20)
        estimate = matrix.estimate(lambda k: 7 + k / 4)
        assert 40 < estimate < 800

    def test_estimate_identifiers_per_host_scaling(self):
        matrix = CounterMatrix.for_identifiers([("h", i) for i in range(100)], 16, 20)
        raw = matrix.estimate(lambda k: 10.0)
        scaled = matrix.estimate(lambda k: 10.0, identifiers_per_host=10)
        assert scaled == pytest.approx(raw / 10)

    def test_estimate_validates_identifiers_per_host(self):
        with pytest.raises(ValueError):
            CounterMatrix(2, 4).estimate(lambda k: 1.0, identifiers_per_host=0)

    def test_disown_all_allows_decay(self):
        matrix = CounterMatrix(2, 4, owned=[(0, 0)])
        matrix.disown_all()
        matrix.increment()
        assert matrix.counters[0, 0] == 1

    def test_copy_is_independent(self):
        matrix = CounterMatrix(2, 4, owned=[(0, 0)])
        matrix.counters[1, 1] = 5
        clone = matrix.copy()
        clone.increment()
        assert clone.counters[1, 1] == 6
        assert matrix.counters[1, 1] == 5
        assert matrix != clone
        assert matrix.owned == clone.owned

    def test_max_finite_counter(self):
        matrix = CounterMatrix(2, 4)
        assert matrix.max_finite_counter() is None
        matrix.own((0, 0))
        matrix.increment()
        assert matrix.max_finite_counter() == 0

    def test_size_bytes(self):
        assert CounterMatrix(4, 8).size_bytes() == 64
        assert CounterMatrix(4, 8).size_bytes(counter_bytes=1) == 32
