"""Tests for the deterministic random-stream helper."""

import numpy as np
import pytest

from repro.simulator.rng import RandomStreams, derive_seed, spawn_generator


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "peers") == derive_seed(42, "peers")

    def test_different_names_different_seeds(self):
        assert derive_seed(42, "peers") != derive_seed(42, "failures")

    def test_different_roots_different_seeds(self):
        assert derive_seed(1, "peers") != derive_seed(2, "peers")

    def test_seed_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "x") < 2**64


class TestSpawnGenerator:
    def test_reproducible_draws(self):
        a = spawn_generator(7, "a").integers(0, 1000, size=10)
        b = spawn_generator(7, "a").integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_independent_streams_differ(self):
        a = spawn_generator(7, "a").integers(0, 1000, size=10)
        b = spawn_generator(7, "b").integers(0, 1000, size=10)
        assert not np.array_equal(a, b)


class TestRandomStreams:
    def test_same_name_returns_same_generator_instance(self):
        streams = RandomStreams(seed=1)
        assert streams.get("x") is streams.get("x")

    def test_seed_property(self):
        assert RandomStreams(seed=99).seed == 99

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=5).get("peers").random(4)
        b = RandomStreams(seed=5).get("peers").random(4)
        assert np.allclose(a, b)

    def test_reset_restarts_streams(self):
        streams = RandomStreams(seed=5)
        first = streams.get("peers").random(4)
        streams.reset()
        second = streams.get("peers").random(4)
        assert np.allclose(first, second)

    def test_child_streams_are_independent_of_parent(self):
        streams = RandomStreams(seed=5)
        child = streams.child("mobility")
        assert child.seed != streams.seed
        a = child.get("peers").random(3)
        b = streams.get("peers").random(3)
        assert not np.allclose(a, b)

    def test_none_seed_is_accepted(self):
        streams = RandomStreams(seed=None)
        assert isinstance(streams.get("x").random(), float)
