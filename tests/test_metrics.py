"""Tests for error metrics, convergence summaries, cost models and recorders."""

import math

import numpy as np
import pytest

from repro.metrics import (
    CostSummary,
    SeriesRecorder,
    convergence_round,
    group_relative_errors,
    mean_absolute_error,
    plateau_error,
    protocol_cost_summary,
    reconvergence_round,
    relative_error,
    stddev_from_truth,
)


class TestAccuracy:
    def test_stddev_from_truth_basic(self):
        assert stddev_from_truth([3.0, 5.0], 4.0) == pytest.approx(1.0)
        assert stddev_from_truth([4.0, 4.0, 4.0], 4.0) == 0.0

    def test_stddev_from_truth_empty_is_nan(self):
        assert math.isnan(stddev_from_truth([], 4.0))

    def test_relative_error(self):
        assert relative_error(5.0, 50.0) == pytest.approx(0.1)
        assert math.isnan(relative_error(5.0, 0.0))

    def test_mean_absolute_error(self):
        assert mean_absolute_error([2.0, 6.0], 4.0) == pytest.approx(2.0)
        assert math.isnan(mean_absolute_error([], 4.0))

    def test_group_relative_errors(self):
        estimates = {0: 10.0, 1: 12.0, 2: 100.0}
        groups = [{0, 1}, {2}]
        truths = {0: 11.0, 1: 100.0}
        deltas, truth_by_host = group_relative_errors(estimates, groups, truths)
        assert sorted(deltas) == [-1.0, 0.0, 1.0]
        assert truth_by_host[2] == 100.0

    def test_group_relative_errors_skips_missing_groups(self):
        deltas, truth_by_host = group_relative_errors({0: 1.0}, [{0}], {})
        assert deltas == []
        assert truth_by_host == {}


class TestConvergence:
    def test_convergence_round_basic(self):
        assert convergence_round([5.0, 2.0, 0.5, 0.4], 1.0) == 2
        assert convergence_round([5.0, 2.0], 1.0) is None

    def test_convergence_round_sustained(self):
        errors = [5.0, 0.5, 3.0, 0.5, 0.5, 0.5]
        assert convergence_round(errors, 1.0, sustained=3) == 3

    def test_convergence_round_start(self):
        errors = [0.1, 5.0, 0.1]
        assert convergence_round(errors, 1.0, start=1) == 2

    def test_convergence_round_validation(self):
        with pytest.raises(ValueError):
            convergence_round([1.0], -1.0)
        with pytest.raises(ValueError):
            convergence_round([1.0], 1.0, sustained=0)

    def test_reconvergence_round(self):
        errors = [0.1, 0.1, 9.0, 5.0, 0.5]
        assert reconvergence_round(errors, 1.0, disturbance_round=2) == 2
        assert reconvergence_round(errors, 0.1, disturbance_round=2) is None

    def test_plateau_error(self):
        assert plateau_error([9.0, 2.0, 2.0], tail=2) == 2.0
        with pytest.raises(ValueError):
            plateau_error([], tail=2)
        with pytest.raises(ValueError):
            plateau_error([1.0], tail=0)


class TestCostSummary:
    def test_bytes_per_round(self):
        cost = CostSummary(protocol="x", state_bytes=100, message_bytes=100, messages_per_round=4)
        assert cost.bytes_per_round == 400

    def test_amortized_bytes(self):
        cost = CostSummary(protocol="x", state_bytes=100, message_bytes=100, messages_per_round=1)
        assert cost.amortized_bytes(10) == 10.0
        with pytest.raises(ValueError):
            cost.amortized_bytes(0)

    def test_protocol_cost_summary_sketch(self):
        cost = protocol_cost_summary(name="sketch", bins=64, bits=24, counter_bytes=2)
        assert cost.message_bytes == 64 * 24 * 2

    def test_protocol_cost_summary_bit_sketch(self):
        cost = protocol_cost_summary(name="bits", bins=64, bits=24, counter_bytes=0)
        assert cost.message_bytes == (64 * 24 + 7) // 8

    def test_protocol_cost_summary_mass(self):
        cost = protocol_cost_summary(name="mass", mass_values=2)
        assert cost.message_bytes == 16
        assert cost.messages_per_round == 1

    def test_invert_average_cheaper_than_multiple_insertion(self):
        multiple = protocol_cost_summary(name="mi", bins=64, bits=40, counter_bytes=0)
        invert = protocol_cost_summary(name="ia", mass_values=2)
        assert invert.bytes_per_round < multiple.bytes_per_round


class TestSeriesRecorder:
    def test_record_from_estimates(self):
        recorder = SeriesRecorder(name="test")
        recorder.record(0, [9.0, 11.0], truth=10.0)
        recorder.record(1, [10.0, 10.0], truth=10.0, population=2, extra_metric=3.0)
        assert len(recorder) == 2
        assert recorder.errors[0] == pytest.approx(1.0)
        assert recorder.errors[1] == 0.0
        assert recorder.populations == [2, 2]
        assert recorder.extra["extra_metric"] == [3.0]
        assert recorder.final_error() == 0.0

    def test_record_error_direct(self):
        recorder = SeriesRecorder()
        recorder.record_error(0, 5.0, truth=100.0, population=10)
        assert recorder.errors == [5.0]
        assert recorder.truths == [100.0]

    def test_final_error_requires_data(self):
        with pytest.raises(ValueError):
            SeriesRecorder().final_error()

    def test_as_dict_contains_all_series(self):
        recorder = SeriesRecorder(name="x")
        recorder.record(0, [1.0], truth=1.0, group_size=4.0)
        payload = recorder.as_dict()
        assert payload["name"] == "x"
        assert payload["errors"] == [0.0]
        assert payload["group_size"] == [4.0]
