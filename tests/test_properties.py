"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import cdf_at, empirical_cdf
from repro.baselines.push_sum import PushSum
from repro.core.push_sum_revert import PushSumRevert
from repro.mobility.traces import ContactRecord, ContactTrace
from repro.simulator.vectorized import (
    _COUNTER_INFINITY,
    VectorizedCountSketchReset,
    VectorizedPushSumRevert,
    VectorizedSketchCount,
)
from repro.sketches.counter_matrix import CounterMatrix, INFINITY
from repro.sketches.fm_sketch import FMSketch, rank_of_bits
from repro.sketches.hashing import bin_index, rho

# A modest profile keeps the suite fast while still exploring a useful space.
COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=40,
)


class TestMassConservationProperties:
    @COMMON_SETTINGS
    @given(values=values_strategy, reversion=st.floats(min_value=0.0, max_value=1.0))
    def test_revert_step_conserves_population_mass(self, values, reversion):
        """Applying the revert step to every host leaves total mass unchanged
        as long as the current totals sum to the initial totals (Section III)."""
        protocol = PushSumRevert(reversion)
        rng = np.random.default_rng(0)
        states = [protocol.create_state(i, v, rng) for i, v in enumerate(values)]
        # Redistribute mass arbitrarily while conserving the totals.
        permutation = np.random.default_rng(1).permutation(len(values))
        originals = [(s.weight, s.total) for s in states]
        for state, source in zip(states, permutation):
            state.weight, state.total = originals[source]
        total_before = sum(s.total for s in states)
        weight_before = sum(s.weight for s in states)
        for state in states:
            protocol.finalize_round(state, 1, rng)
        assert sum(s.total for s in states) == pytest.approx(total_before, rel=1e-9, abs=1e-9)
        assert sum(s.weight for s in states) == pytest.approx(weight_before, rel=1e-9, abs=1e-9)

    @COMMON_SETTINGS
    @given(values=values_strategy)
    def test_pairwise_exchange_conserves_mass(self, values):
        protocol = PushSum()
        rng = np.random.default_rng(0)
        states = [protocol.create_state(i, v, rng) for i, v in enumerate(values)]
        total_before = sum(s.total for s in states)
        order = np.random.default_rng(2).permutation(len(states))
        for a, b in zip(order[::2], order[1::2]):
            protocol.exchange(states[a], states[b], rng)
        assert sum(s.total for s in states) == pytest.approx(total_before, rel=1e-9)

    @COMMON_SETTINGS
    @given(
        values=values_strategy,
        reversion=st.floats(min_value=0.0, max_value=0.9),
        rounds=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_vectorized_kernel_conserves_mass_without_failures(
        self, values, reversion, rounds, seed
    ):
        kernel = VectorizedPushSumRevert(values, reversion, mode="pushpull", seed=seed)
        total_before = kernel.total.sum()
        kernel.step_many(rounds)
        assert kernel.total.sum() == pytest.approx(total_before, rel=1e-9)

    @COMMON_SETTINGS
    @given(values=values_strategy, seed=st.integers(min_value=0, max_value=1000))
    def test_estimates_bounded_by_value_range(self, values, seed):
        """Push/pull mass averaging keeps every estimate inside the convex hull
        of the initial values (no reversion, no failures)."""
        kernel = VectorizedPushSumRevert(values, 0.0, mode="pushpull", seed=seed)
        kernel.step_many(5)
        estimates = kernel.estimates()
        assert estimates.min() >= min(values) - 1e-9
        assert estimates.max() <= max(values) + 1e-9


class TestSketchProperties:
    identifiers = st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=200)

    @COMMON_SETTINGS
    @given(a=identifiers, b=identifiers)
    def test_union_commutative(self, a, b):
        left = FMSketch(bins=8, bits=20)
        right = FMSketch(bins=8, bits=20)
        left.insert_many(a)
        right.insert_many(b)
        assert left.union(right) == right.union(left)

    @COMMON_SETTINGS
    @given(a=identifiers)
    def test_union_idempotent(self, a):
        sketch = FMSketch(bins=8, bits=20)
        sketch.insert_many(a)
        assert sketch.union(sketch) == sketch

    @COMMON_SETTINGS
    @given(a=identifiers, b=identifiers, c=identifiers)
    def test_union_associative(self, a, b, c):
        def build(identifiers_list):
            sketch = FMSketch(bins=8, bits=20)
            sketch.insert_many(identifiers_list)
            return sketch

        left = build(a).union(build(b)).union(build(c))
        right = build(a).union(build(b).union(build(c)))
        assert left == right

    @COMMON_SETTINGS
    @given(a=identifiers, b=identifiers)
    def test_union_estimate_at_least_each_side(self, a, b):
        left = FMSketch(bins=8, bits=20)
        right = FMSketch(bins=8, bits=20)
        left.insert_many(a)
        right.insert_many(b)
        union = left.union(right)
        assert union.estimate() >= left.estimate() - 1e-9
        assert union.estimate() >= right.estimate() - 1e-9

    @COMMON_SETTINGS
    @given(identifier=st.one_of(st.integers(), st.text(max_size=20)), bits=st.integers(2, 64))
    def test_rho_and_bin_are_stable_and_bounded(self, identifier, bits):
        assert 0 <= rho(identifier, bits) <= bits
        assert rho(identifier, bits) == rho(identifier, bits)
        assert 0 <= bin_index(identifier, 7) < 7

    @COMMON_SETTINGS
    @given(bits=st.lists(st.booleans(), max_size=30))
    def test_rank_of_bits_counts_leading_ones(self, bits):
        rank = rank_of_bits(bits)
        assert all(bits[:rank])
        assert rank == len(bits) or not bits[rank]


class TestCounterMatrixProperties:
    owned_strategy = st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7)), min_size=0, max_size=6
    )

    @COMMON_SETTINGS
    @given(owned_a=owned_strategy, owned_b=owned_strategy, rounds=st.integers(0, 5))
    def test_merge_min_is_commutative_on_counters(self, owned_a, owned_b, rounds):
        def build(owned):
            matrix = CounterMatrix(4, 8, owned)
            for _ in range(rounds):
                matrix.increment()
            return matrix

        a1, b1 = build(owned_a), build(owned_b)
        a2, b2 = build(owned_a), build(owned_b)
        a1.merge_min(b1)
        b2.merge_min(a2)
        # Outside the owned positions (which each side pins to zero for
        # itself), the merged counters agree.
        mask = np.ones((4, 8), dtype=bool)
        for position in set(owned_a) | set(owned_b):
            mask[position] = False
        assert np.array_equal(a1.counters[mask], b2.counters[mask])

    @COMMON_SETTINGS
    @given(owned=owned_strategy, rounds=st.integers(0, 10))
    def test_counters_never_negative_and_owned_stay_zero(self, owned, rounds):
        matrix = CounterMatrix(4, 8, owned)
        for _ in range(rounds):
            matrix.increment()
        assert (matrix.counters >= 0).all()
        for position in owned:
            assert matrix.counters[position] == 0

    @COMMON_SETTINGS
    @given(owned=owned_strategy, rounds=st.integers(1, 10))
    def test_finite_counters_bounded_by_elapsed_rounds(self, owned, rounds):
        matrix = CounterMatrix(4, 8, owned)
        for _ in range(rounds):
            matrix.increment()
        finite = matrix.counters[matrix.counters < INFINITY]
        if finite.size:
            assert finite.max() <= rounds

    @COMMON_SETTINGS
    @given(owned=owned_strategy)
    def test_merge_with_self_is_identity(self, owned):
        matrix = CounterMatrix(4, 8, owned)
        matrix.increment()
        clone = matrix.copy()
        matrix.merge_min(clone)
        assert matrix == clone

    @COMMON_SETTINGS
    @given(
        owned=owned_strategy,
        others=st.lists(
            st.tuples(
                st.lists(st.tuples(st.integers(0, 3), st.integers(0, 7)), max_size=4),
                st.integers(0, 5),
            ),
            min_size=2,
            max_size=4,
        ),
        order_seed=st.integers(0, 1000),
    )
    def test_merges_are_order_insensitive(self, owned, others, order_seed):
        """Min-merging a set of peer matrices gives the same counters in any order."""

        def build_peer(peer_owned, rounds):
            peer = CounterMatrix(4, 8, peer_owned)
            for _ in range(rounds):
                peer.increment()
            return peer

        peers = [build_peer(peer_owned, rounds) for peer_owned, rounds in others]
        forward = CounterMatrix(4, 8, owned)
        forward.increment()
        shuffled = forward.copy()
        for peer in peers:
            forward.merge_min(peer)
        permutation = np.random.default_rng(order_seed).permutation(len(peers))
        for index in permutation:
            shuffled.merge_min(peers[int(index)])
        assert forward == shuffled


class TestTraceProperties:
    contact_strategy = st.lists(
        st.tuples(
            st.integers(0, 5),
            st.integers(0, 5),
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        ),
        min_size=0,
        max_size=30,
    )

    @staticmethod
    def _build_trace(raw):
        records = [
            ContactRecord(a, b, start, start + duration)
            for a, b, start, duration in raw
            if a != b
        ]
        return ContactTrace(6, records)

    @COMMON_SETTINGS
    @given(raw=contact_strategy, time=st.floats(min_value=0.0, max_value=1500.0))
    def test_adjacency_is_symmetric(self, raw, time):
        trace = self._build_trace(raw)
        adjacency = trace.adjacency_at(time)
        for node, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert node in adjacency[neighbor]

    @COMMON_SETTINGS
    @given(raw=contact_strategy, time=st.floats(min_value=0.0, max_value=1500.0))
    def test_window_union_contains_instantaneous_adjacency(self, raw, time):
        trace = self._build_trace(raw)
        instant = trace.adjacency_at(time)
        window = trace.adjacency_between(max(0.0, time - 100.0), time + 1e-6)
        for node, neighbors in instant.items():
            assert neighbors <= window[node]

    @COMMON_SETTINGS
    @given(raw=contact_strategy)
    def test_normalised_records_are_disjoint_per_pair(self, raw):
        trace = self._build_trace(raw)
        by_pair = {}
        for record in trace.records:
            by_pair.setdefault((record.a, record.b), []).append(record)
        for records in by_pair.values():
            records.sort(key=lambda r: r.start)
            for first, second in zip(records, records[1:]):
                assert first.end < second.start or first.end <= second.start

    @COMMON_SETTINGS
    @given(raw=contact_strategy)
    def test_groups_partition_all_devices(self, raw):
        trace = self._build_trace(raw)
        groups = trace.groups_at(trace.duration, window=trace.duration + 1.0)
        seen = sorted(device for group in groups for device in group)
        assert seen == sorted(set(seen))
        assert set(seen) == set(range(6))


class TestCDFProperties:
    samples = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100
    )

    @COMMON_SETTINGS
    @given(values=samples)
    def test_cdf_monotone_and_ends_at_one(self, values):
        _, probabilities = empirical_cdf(values)
        assert (np.diff(probabilities) >= -1e-12).all()
        assert probabilities[-1] == pytest.approx(1.0)

    @COMMON_SETTINGS
    @given(values=samples, point=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_cdf_at_matches_manual_count(self, values, point):
        expected = sum(1 for v in values if v <= point) / len(values)
        assert cdf_at(values, [point])[0] == pytest.approx(expected)


class TestVectorizedKernelBounds:
    """The array kernels honour their sentinel and state invariants."""

    @COMMON_SETTINGS
    @given(
        n=st.integers(min_value=2, max_value=50),
        bins=st.integers(min_value=1, max_value=8),
        bits=st.integers(min_value=1, max_value=12),
        rounds=st.integers(min_value=0, max_value=15),
        fail_fraction=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_counter_kernel_stays_inside_int16_sentinel(
        self, n, bins, bits, rounds, fail_fraction, seed
    ):
        kernel = VectorizedCountSketchReset(n, bins=bins, bits=bits, seed=seed)
        kernel.step_many(rounds)
        kernel.fail_random_fraction(fail_fraction)
        kernel.step_many(rounds)
        assert kernel.counters.dtype == np.int16
        assert kernel.counters.min() >= 0
        assert kernel.counters.max() <= _COUNTER_INFINITY
        # Finite counters are bounded by the elapsed rounds: nothing can be
        # staler than the simulation is old.
        finite = kernel.counters[kernel.counters < _COUNTER_INFINITY]
        if finite.size:
            assert finite.max() <= 2 * rounds

    @COMMON_SETTINGS
    @given(
        n=st.integers(min_value=2, max_value=50),
        rounds=st.integers(min_value=1, max_value=10),
        fail_fraction=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_sketch_count_estimates_never_decrease(self, n, rounds, fail_fraction, seed):
        """OR-merge gossip is monotone: every host's sketch can only grow —
        including through failures, which is exactly its dynamic weakness.
        (The *population mean* may still drop when a failure removes a host
        whose estimate was above average, so the invariant is per host.)"""
        kernel = VectorizedSketchCount(n, bins=8, bits=16, seed=seed)
        previous_ranks = kernel.ranks()
        for _ in range(rounds):
            kernel.step()
            current_ranks = kernel.ranks()
            assert (current_ranks >= previous_ranks).all()
            previous_ranks = current_ranks
        kernel.fail_random_fraction(fail_fraction)
        kernel.step_many(2)
        assert (kernel.ranks() >= previous_ranks).all()

    @COMMON_SETTINGS
    @given(
        values=values_strategy,
        reversion=st.floats(min_value=0.0, max_value=1.0),
        rounds=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_push_sum_weights_stay_positive(self, values, reversion, rounds, seed):
        kernel = VectorizedPushSumRevert(values, reversion, mode="pushpull", seed=seed)
        kernel.step_many(rounds)
        assert (kernel.weight[kernel.alive] > 0.0).all()
        assert np.isfinite(kernel.estimates()).all()
