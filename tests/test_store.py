"""Tests for the content-addressed result store and incremental sweeps."""

import json
import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.api.sweep as sweep_module
import repro.store.store as store_module
from repro.api import ScenarioSpec, Sweep, SweepRunner, run_scenario
from repro.store import STORE_SCHEMA_VERSION, ResultStore, code_fingerprint


def small_spec(**overrides):
    """A sub-second scenario for store round-trips."""
    base = dict(
        protocol="push-sum-revert",
        protocol_params={"reversion": 0.1},
        n_hosts=64,
        rounds=6,
        seed=11,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def payload_json(result):
    """The result's canonical serialised form (bit-identity comparisons)."""
    return json.dumps(result.to_payload(), sort_keys=True)


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


# ---------------------------------------------------------------------------
# ScenarioSpec.key(): the canonical hash
# ---------------------------------------------------------------------------
class TestSpecKey:
    def test_key_ignores_field_declaration_order(self):
        a = ScenarioSpec(protocol="push-sum-revert", n_hosts=64, rounds=6, seed=11)
        b = ScenarioSpec(seed=11, rounds=6, n_hosts=64, protocol="push-sum-revert")
        assert a.key() == b.key()

    def test_key_ignores_param_dict_insertion_order(self):
        a = small_spec(protocol_params={"reversion": 0.1, "adaptive": False})
        b = small_spec(protocol_params={"adaptive": False, "reversion": 0.1})
        assert a.key() == b.key()

    def test_name_is_a_label_not_an_address(self):
        assert small_spec().key() == small_spec(name="relabelled").key()

    def test_every_simulation_field_changes_the_key(self):
        base = small_spec()
        assert base.key() != small_spec(seed=12).key()
        assert base.key() != small_spec(rounds=7).key()
        assert base.key() != small_spec(n_hosts=65).key()
        assert base.key() != small_spec(protocol_params={"reversion": 0.2}).key()
        assert base.key() != small_spec(store_estimates=True).key()

    def test_auto_backend_shares_the_resolved_backend_key(self):
        # uniform + push-sum-revert has a kernel, so "auto" resolves to
        # "vectorized" and must address the same cache entry.
        auto = small_spec(backend="auto")
        explicit = small_spec(backend="vectorized")
        assert auto.resolved_backend() == "vectorized"
        assert auto.key() == explicit.key()
        assert auto.key() != small_spec(backend="agent").key()

    def test_key_is_stable_across_process_restarts(self):
        expected = small_spec().key()
        script = (
            "from repro.api import ScenarioSpec; "
            "print(ScenarioSpec(protocol='push-sum-revert', "
            "protocol_params={'reversion': 0.1}, n_hosts=64, rounds=6, seed=11).key())"
        )
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        for hash_seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            output = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            assert output == expected


# ---------------------------------------------------------------------------
# ResultStore: round-trips, invalidation, management
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_round_trip_is_bit_identical(self, store):
        # The agent engine on a lossy network fills every record field
        # (delivery counters, stored estimates) the payload must carry.
        spec = small_spec(
            backend="agent", mode="push", network="bernoulli-loss",
            network_params={"p": 0.3}, store_estimates=True,
        )
        cold = run_scenario(spec, store=store)
        warm = run_scenario(spec, store=store)
        assert store.session == {"hits": 1, "misses": 1, "puts": 1}
        assert payload_json(warm) == payload_json(cold)
        assert warm.metadata == cold.metadata
        assert warm.rounds[-1].estimates == cold.rounds[-1].estimates

    def test_get_on_empty_store_is_a_miss(self, store):
        assert store.get(small_spec()) is None
        assert store.session["misses"] == 1

    def test_refresh_reexecutes_but_writes_back(self, store):
        spec = small_spec()
        run_scenario(spec, store=store)
        run_scenario(spec, store=store, refresh=True)
        assert store.session["puts"] == 2
        assert store.session["hits"] == 0

    def test_schema_version_bump_invalidates(self, store, monkeypatch):
        spec = small_spec()
        run_scenario(spec, store=store)
        assert store.contains(spec)
        monkeypatch.setattr(store_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1)
        assert not store.contains(spec)
        assert store.get(spec) is None
        # The stale entry was dropped on contact, not left to rot.
        assert len(store) == 0

    def test_code_fingerprint_change_invalidates(self, store, monkeypatch):
        spec = small_spec()
        run_scenario(spec, store=store)
        monkeypatch.setattr(store_module, "code_fingerprint", lambda protocol: "edited-code")
        assert store.get(spec) is None
        assert len(store) == 0

    def test_fingerprint_distinguishes_protocols(self):
        assert code_fingerprint("push-sum-revert") != code_fingerprint("extrema-gossip")
        assert code_fingerprint("push-sum-revert") == code_fingerprint("push-sum-revert")

    def test_fingerprint_chases_protocol_composition(self):
        # invert-average composes push-sum-revert and the counting sketch
        # across both protocol packages; its fingerprint must cover them so
        # editing a building block invalidates the composite's entries.
        from repro.store.fingerprint import _protocol_closure

        names = [name for name, _path in _protocol_closure("repro.core.invert_average")]
        assert "repro.core.invert_average" in names
        assert "repro.core.push_sum_revert" in names
        assert "repro.baselines.push_sum" in names

    def test_editing_the_event_engine_invalidates_cached_results(self, store, monkeypatch):
        # repro.events is part of the shared fingerprint: a cached result
        # may have been produced by the event engine, so editing any of its
        # modules must turn every hit into a miss.
        from repro.store import fingerprint as fingerprint_module

        assert "repro.events" in fingerprint_module._SHARED_PACKAGES

        spec = small_spec(
            engine="events", backend="agent",
            engine_params={"duration": 6.0, "sample_interval": 1.0},
        )
        run_scenario(spec, store=store)
        assert store.contains(spec)

        real_read = fingerprint_module._read
        marker = os.path.join("repro", "events")

        def edited(path):
            data = real_read(path)
            return data + b"\n# edited" if marker in path else data

        monkeypatch.setattr(fingerprint_module, "_read", edited)
        fingerprint_module.clear_fingerprint_cache()
        try:
            assert store.get(spec) is None
            assert len(store) == 0
        finally:
            monkeypatch.undo()
            # Drop the digests memoised from the tampered sources so other
            # tests see fingerprints of the real files again.
            fingerprint_module.clear_fingerprint_cache()

    def test_unknown_protocol_entries_are_stale_not_fatal(self, store):
        import sqlite3

        spec = small_spec()
        store.put(spec, run_scenario(spec))
        with sqlite3.connect(os.path.join(store.root, "index.db")) as connection:
            connection.execute("UPDATE results SET protocol = 'gone-protocol'")
        # stats and prune must survive the unregistered name (the very
        # tools for cleaning such entries), and get must treat it as a miss.
        assert store.stats()["stale_entries"] == 1
        assert store.get(spec) is None
        assert store.prune() == 0  # get already dropped it on contact
        assert len(store) == 0

    def test_corrupt_blob_heals_to_a_miss(self, store):
        spec = small_spec()
        key = store.put(spec, run_scenario(spec))
        blob = store._blob_path(key)
        with open(blob, "wb") as handle:
            handle.write(b"not gzip at all")
        assert store.get(spec) is None
        assert len(store) == 0 and not os.path.exists(blob)

    def test_stats_prune_clear(self, store, monkeypatch):
        specs = [small_spec(seed=seed) for seed in range(3)]
        for spec in specs:
            store.put(spec, run_scenario(spec))
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["by_protocol"] == {"push-sum-revert": 3}
        assert stats["total_bytes"] > 0
        assert store.prune() == 0  # nothing stale yet

        monkeypatch.setattr(store_module, "code_fingerprint", lambda protocol: "edited")
        assert store.stats()["stale_entries"] == 3
        assert store.prune() == 3
        monkeypatch.undo()

        for spec in specs:
            store.put(spec, run_scenario(spec))
        assert store.prune(older_than_days=0) == 3  # everything is "old"
        with pytest.raises(ValueError):
            store.prune(older_than_days=-1)

        store.put(specs[0], run_scenario(specs[0]))
        assert store.clear() == 1
        assert len(store) == 0

    def test_put_rejects_non_results(self, store):
        with pytest.raises(TypeError):
            store.put(small_spec(), {"not": "a result"})

    def test_concurrent_writers_are_safe(self, tmp_path):
        # Several handles on one directory (as separate sweeps would open)
        # hammering overlapping keys from worker threads.
        root = str(tmp_path / "cache")
        specs = [small_spec(seed=seed) for seed in range(6)]
        results = [run_scenario(spec) for spec in specs]

        def write(index):
            handle = ResultStore(root)
            spec, result = specs[index % len(specs)], results[index % len(specs)]
            handle.put(spec, result)
            return handle.get(spec) is not None

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(write, range(24)))
        assert all(outcomes)
        reader = ResultStore(root)
        assert len(reader) == len(specs)
        for spec, result in zip(specs, results):
            assert payload_json(reader.get(spec)) == payload_json(result)


# ---------------------------------------------------------------------------
# Incremental sweeps
# ---------------------------------------------------------------------------
def grid():
    return Sweep.over(
        small_spec(),
        **{"protocol_params.reversion": [0.0, 0.1], "seed": range(3)},
    )


class TestIncrementalSweeps:
    def test_warm_rerun_executes_zero_cells_and_is_bit_identical(self, store, monkeypatch):
        cold = SweepRunner(parallel=False, store=store).run(grid())
        assert not any(cold.cached) and cold.executed() == 6

        calls = []
        real = sweep_module.run_scenario
        monkeypatch.setattr(
            sweep_module, "run_scenario",
            lambda spec, **kwargs: calls.append(spec) or real(spec, **kwargs),
        )
        warm = SweepRunner(parallel=False, store=store).run(grid())
        assert calls == []  # zero cells executed
        assert all(warm.cached) and warm.cache_hits() == 6
        assert warm.rows == cold.rows
        assert warm.render() == cold.render()
        assert [payload_json(r) for r in warm.results] == [payload_json(r) for r in cold.results]

    def test_parallel_warm_rerun_matches_parallel_cold(self, store):
        runner = lambda: SweepRunner(parallel=True, max_workers=2, store=store)  # noqa: E731
        cold = runner().run(grid())
        warm = runner().run(grid())
        assert warm.cache_hits() == 6 and warm.executed() == 0
        assert warm.render() == cold.render()
        assert warm.rows == cold.rows

    def test_parallel_and_serial_share_cache_entries(self, tmp_path):
        serial_store = ResultStore(str(tmp_path / "cache"))
        cold = SweepRunner(parallel=False, store=serial_store).run(grid())
        warm_store = ResultStore(str(tmp_path / "cache"))
        warm = SweepRunner(parallel=True, max_workers=2, store=warm_store).run(grid())
        assert warm.cache_hits() == 6
        assert warm.rows == cold.rows

    def test_partial_store_executes_only_missing_cells(self, store, monkeypatch):
        specs = grid().specs()
        for spec in specs[:4]:
            store.put(spec, run_scenario(spec))

        calls = []
        real = sweep_module.run_scenario
        monkeypatch.setattr(
            sweep_module, "run_scenario",
            lambda spec, **kwargs: calls.append(spec) or real(spec, **kwargs),
        )
        result = SweepRunner(parallel=False, store=store).run(grid())
        assert [spec.key() for spec in calls] == [spec.key() for spec in specs[4:]]
        assert result.cached == [True] * 4 + [False] * 2

    def test_interrupted_sweep_resumes_from_the_store(self, store, monkeypatch):
        real = sweep_module.run_scenario
        executed = []

        def dies_after_three(spec, **kwargs):
            if len(executed) == 3:
                raise KeyboardInterrupt("killed mid-sweep")
            executed.append(spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(sweep_module, "run_scenario", dies_after_three)
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(parallel=False, store=store).run(grid())
        assert len(store) == 3  # completed cells survived the kill

        monkeypatch.setattr(sweep_module, "run_scenario", real)
        reference = SweepRunner(parallel=False).run(grid())

        executed_after = []
        monkeypatch.setattr(
            sweep_module, "run_scenario",
            lambda spec, **kwargs: executed_after.append(spec) or real(spec, **kwargs),
        )
        resumed = SweepRunner(parallel=False, store=store).run(grid())
        assert len(executed_after) == 3  # only the remainder ran
        assert resumed.cached == [True] * 3 + [False] * 3
        assert resumed.rows == reference.rows

    def test_refresh_reruns_every_cell(self, store):
        SweepRunner(parallel=False, store=store).run(grid())
        refreshed = SweepRunner(parallel=False, store=store, refresh=True).run(grid())
        assert not any(refreshed.cached)
        assert store.session["puts"] == 12

    def test_rows_follow_grid_order_regardless_of_completion(self, store):
        # Populate out of grid order, then check the table order is the
        # declaration-order cross product, cached and fresh cells alike.
        specs = grid().specs()
        for spec in reversed(specs[3:]):
            store.put(spec, run_scenario(spec))
        result = SweepRunner(parallel=True, max_workers=3, store=store).run(grid())
        assert result.column("seed") == [0, 1, 2, 0, 1, 2]
        assert result.column("protocol_params.reversion") == [0.0, 0.0, 0.0, 0.1, 0.1, 0.1]
        no_store = SweepRunner(parallel=False).run(grid())
        assert result.rows == no_store.rows
