"""Tests for the extension experiments."""

import pytest

from repro.experiments.extensions import (
    render_departure_comparison,
    render_extrema_comparison,
    run_departure_comparison,
    run_extrema_comparison,
)


class TestDepartureComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_departure_comparison(n_hosts=150, rounds=40, departure_round=12, seed=1)

    def test_all_protocols_present(self, result):
        assert set(result.final_errors) == {
            "push-sum (static)",
            "push-sum-revert (lambda=0.1)",
            "count-sketch-reset",
        }
        for outcomes in result.final_errors.values():
            assert set(outcomes) == {"silent", "graceful"}

    def test_graceful_signoff_helps_the_sketch(self, result):
        sketch = result.final_errors["count-sketch-reset"]
        assert sketch["graceful"] <= sketch["silent"] + 1e-6

    def test_reverting_protocol_beats_static_under_silent_failure(self, result):
        static = result.final_errors["push-sum (static)"]["silent"]
        revert = result.final_errors["push-sum-revert (lambda=0.1)"]["silent"]
        assert revert < static

    def test_render(self, result):
        text = render_departure_comparison(result)
        assert "graceful sign-off" in text
        assert "push-sum-revert" in text


class TestExtremaComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_extrema_comparison(n_hosts=120, rounds=50, departure_round=12, cutoff=10, seed=1)

    def test_series_lengths(self, result):
        assert len(result.static_errors) == 50
        assert len(result.reset_errors) == 50

    def test_static_keeps_the_stale_maximum(self, result):
        assert result.static_final() > 0.0

    def test_reset_forgets_the_stale_maximum(self, result):
        assert result.reset_final() < result.static_final()
        assert result.reset_final() < 2.0

    def test_render(self, result):
        text = render_extrema_comparison(result)
        assert "extrema-reset" in text
