"""Tests for the declarative scenario API (registries, specs, sweeps)."""

import json

import pytest

from repro.api import (
    ENVIRONMENTS,
    FAILURES,
    PROTOCOLS,
    WORKLOADS,
    Registry,
    ScenarioSpec,
    Sweep,
    SweepRunner,
    UnknownKeyError,
    run_scenario,
)
from repro.core import PushSumRevert
from repro.environments import TraceEnvironment, UniformEnvironment
from repro.simulator import Simulation, SimulationResult


class TestRegistry:
    def test_builtin_protocols_registered(self):
        for key in ("push-sum-revert", "count-sketch-reset", "invert-average",
                    "push-sum", "push-pull", "sketch-count"):
            assert key in PROTOCOLS
        assert PROTOCOLS.get("push-sum-revert") is PushSumRevert

    def test_builtin_environments_failures_workloads(self):
        assert {"uniform", "ring", "grid", "spatial-grid", "trace"} <= set(ENVIRONMENTS.keys())
        assert {"uncorrelated", "correlated", "explicit", "bernoulli"} <= set(FAILURES.keys())
        assert {"uniform", "constant", "normal", "zipf", "clustered"} <= set(WORKLOADS.keys())

    def test_unknown_key_raises_with_suggestion(self):
        with pytest.raises(UnknownKeyError) as excinfo:
            PROTOCOLS.get("push-sum-rever")
        message = str(excinfo.value)
        assert "push-sum-rever" in message
        assert "push-sum-revert" in message  # did-you-mean suggestion
        # UnknownKeyError is a KeyError, so except KeyError still works.
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", int)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", float)

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("fancy", aliases=("plain",))
        class Fancy:
            pass

        assert registry.get("fancy") is Fancy
        assert registry.get("plain") is Fancy
        assert registry.keys() == ["fancy", "plain"]

    def test_validate_params_catches_typos(self):
        with pytest.raises(ValueError, match="reversions"):
            PROTOCOLS.validate_params("push-sum-revert", reversions=0.1)
        PROTOCOLS.validate_params("push-sum-revert", reversion=0.1)  # no raise

    def test_environment_factories_take_n_hosts(self):
        environment = ENVIRONMENTS.create("uniform", 64)
        assert isinstance(environment, UniformEnvironment)
        assert environment.n == 64

    def test_workload_factories_produce_one_value_per_host(self):
        for key in WORKLOADS:
            values = WORKLOADS.create(key, 12, seed=3)
            assert len(values) == 12


class TestScenarioSpec:
    def spec(self, **overrides):
        kwargs = dict(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=120,
            rounds=15,
            seed=5,
            events=(
                {"event": "failure", "round": 8, "model": "uncorrelated", "fraction": 0.5},
            ),
        )
        kwargs.update(overrides)
        return ScenarioSpec(**kwargs)

    def test_dict_round_trip(self):
        spec = self.spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self.spec(workload="normal", workload_params={"mean": 10.0})
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert json.loads(spec.to_json())["protocol"] == "push-sum-revert"

    def test_unknown_protocol_rejected_eagerly(self):
        with pytest.raises(KeyError, match="no-such-protocol"):
            self.spec(protocol="no-such-protocol")

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"protocol": "push-sum", "n_host": 10})

    def test_bad_protocol_param_rejected_eagerly(self):
        with pytest.raises(ValueError, match="reversions"):
            self.spec(protocol_params={"reversions": 0.1})

    def test_bad_mode_and_sizes_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            self.spec(mode="pull")
        with pytest.raises(ValueError, match="n_hosts"):
            self.spec(n_hosts=0)
        with pytest.raises(ValueError, match="rounds"):
            self.spec(rounds=0)

    def test_bad_events_rejected(self):
        with pytest.raises(ValueError, match="event kind"):
            self.spec(events=({"event": "explode", "round": 1},))
        with pytest.raises(ValueError, match="round"):
            self.spec(events=({"event": "failure", "model": "uncorrelated"},))
        with pytest.raises(ValueError, match="model"):
            self.spec(events=({"event": "failure", "round": 1},))

    def test_named_cutoff_resolution(self):
        spec = self.spec(
            protocol="count-sketch-reset",
            protocol_params={"bins": 8, "bits": 12, "cutoff": "default"},
            workload="constant",
        )
        protocol = spec.build_protocol()
        assert protocol.cutoff(4) == 7.0 + 1.0
        with pytest.raises(ValueError, match="cutoff"):
            self.spec(
                protocol="count-sketch-reset",
                protocol_params={"bins": 8, "bits": 12, "cutoff": "sideways"},
            )

    def test_cutoff_as_intercept_slope_pair(self):
        spec = self.spec(
            protocol="count-sketch-reset",
            protocol_params={"bins": 8, "bits": 12, "cutoff": [5.0, 0.5]},
            workload="constant",
        )
        assert spec.build_protocol().cutoff(2) == 6.0
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_build_produces_ready_simulation(self):
        simulation = self.spec().build()
        assert isinstance(simulation, Simulation)
        assert len(simulation.hosts) == 120
        assert simulation.mode == "exchange"
        assert len(simulation.events) == 1

    def test_workload_seed_defaults_to_scenario_seed(self):
        a = self.spec(seed=5).build_values()
        b = self.spec(seed=5).build_values()
        c = self.spec(seed=6).build_values()
        assert a == b
        assert a != c
        # An explicit workload seed wins over the scenario seed.
        pinned = self.spec(seed=6, workload_params={"seed": 5}).build_values()
        assert pinned == a

    def test_spec_is_frozen(self):
        spec = self.spec()
        with pytest.raises(AttributeError):
            spec.n_hosts = 7

    def test_tuple_params_survive_json_round_trip(self):
        spec = self.spec(
            workload="clustered",
            workload_params={"cluster_means": (35.0, 60.0, 85.0), "std": 5.0},
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.workload_params["cluster_means"] == [35.0, 60.0, 85.0]

    def test_specs_are_hashable_and_usable_in_sets(self):
        a = self.spec()
        b = ScenarioSpec.from_json(a.to_json())
        c = self.spec(seed=99)
        assert hash(a) == hash(b)
        assert {a, b, c} == {a, c}

    def test_non_mapping_params_rejected_eagerly(self):
        with pytest.raises(ValueError, match="mapping"):
            self.spec(protocol_params=[1, 2])

    def test_malformed_cutoff_pair_rejected_eagerly(self):
        for bad in ([1.0, 2.0, 3.0], ["a", "b"], [-1.0, 0.5]):
            with pytest.raises(ValueError):
                self.spec(
                    protocol="count-sketch-reset",
                    protocol_params={"bins": 8, "bits": 12, "cutoff": bad},
                )

    def test_replace_revalidates(self):
        spec = self.spec()
        assert spec.replace(seed=9).seed == 9
        with pytest.raises(ValueError):
            spec.replace(mode="sideways")

    def test_churn_event_expands(self):
        spec = self.spec(
            events=(
                {"event": "churn", "start": 2, "stop": 5, "model": "bernoulli", "p": 0.01,
                 "arrivals_per_round": 1},
            )
        )
        events = spec.build_events()
        assert len(events) == 6  # one failure + one join per round in [2, 5)

    def test_trace_environment_device_count_must_match(self):
        spec = self.spec(
            environment="trace",
            environment_params={"dataset": 1},
            n_hosts=9,
            rounds=10,
            group_relative=True,
        )
        assert isinstance(spec.build_environment(), TraceEnvironment)
        bad = self.spec(
            environment="trace", environment_params={"dataset": 1}, n_hosts=10, rounds=10
        )
        with pytest.raises(ValueError, match="devices"):
            bad.build_environment()


class TestRunScenario:
    def spec(self, **overrides):
        kwargs = dict(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=100,
            rounds=12,
            seed=3,
            events=(
                {"event": "failure", "round": 6, "model": "correlated",
                 "fraction": 0.5, "highest": True},
            ),
        )
        kwargs.update(overrides)
        return ScenarioSpec(**kwargs)

    def test_requires_a_spec(self):
        with pytest.raises(TypeError):
            run_scenario({"protocol": "push-sum"})

    def test_same_seed_identical_result(self):
        first = run_scenario(self.spec())
        second = run_scenario(ScenarioSpec.from_dict(self.spec().to_dict()))
        assert isinstance(first, SimulationResult)
        assert first.errors() == second.errors()
        assert first.truths() == second.truths()
        assert first.alive_counts() == second.alive_counts()

    def test_different_seed_different_result(self):
        first = run_scenario(self.spec(seed=3))
        second = run_scenario(self.spec(seed=4))
        assert first.errors() != second.errors()

    def test_reproduces_fig11_runner_bit_for_bit(self):
        """A spec reproduces the Figure 11 runner's engine output exactly."""
        from repro.experiments.fig11_traces import _run_protocol
        from repro.mobility import haggle_dataset
        from repro.workloads import uniform_values

        seed, dataset, rounds = 0, 1, 120
        trace = haggle_dataset(dataset)
        values = uniform_values(trace.n_devices, seed=seed + dataset)
        errors, group_sizes = _run_protocol(
            PushSumRevert(0.01), trace, values,
            rounds=rounds, round_seconds=30.0, group_window_seconds=600.0, seed=seed,
        )
        spec = ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.01},
            environment="trace",
            environment_params={"dataset": dataset},
            workload_params={"seed": seed + dataset},
            n_hosts=trace.n_devices,
            rounds=rounds,
            seed=seed,
            group_relative=True,
        )
        result = run_scenario(ScenarioSpec.from_dict(spec.to_dict()))
        assert result.errors() == errors
        assert [record.group_sizes for record in result.rounds] == group_sizes


class TestSweep:
    def base(self):
        return ScenarioSpec(
            protocol="push-sum-revert", n_hosts=60, rounds=6, seed=0,
        )

    def test_expansion_is_a_cross_product_in_axis_order(self):
        sweep = Sweep.over(self.base(), seed=[0, 1, 2], n_hosts=[60, 80])
        assert len(sweep) == 6
        points = sweep.points()
        assert [(p["seed"], p["n_hosts"]) for p, _spec in points] == [
            (0, 60), (0, 80), (1, 60), (1, 80), (2, 60), (2, 80),
        ]
        assert all(spec.n_hosts == p["n_hosts"] for p, spec in points)

    def test_dotted_axis_sets_nested_param(self):
        sweep = Sweep.over(self.base(), **{"protocol_params.reversion": [0.0, 0.5]})
        specs = sweep.specs()
        assert [spec.protocol_params["reversion"] for spec in specs] == [0.0, 0.5]

    def test_bad_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            Sweep.over(self.base())
        with pytest.raises(ValueError, match="no values"):
            Sweep.over(self.base(), seed=[])
        with pytest.raises(ValueError, match="dot into"):
            Sweep.over(self.base(), **{"bogus_params.x": [1]})
        # Misspelled plain field names are rejected eagerly too.
        with pytest.raises(ValueError, match="unknown axis"):
            Sweep.over(self.base(), host=[10, 20])

    def test_json_round_trip(self):
        sweep = Sweep.over(self.base(), seed=range(2), protocol=["push-sum", "push-pull"])
        restored = Sweep.from_json(sweep.to_json())
        assert restored.base == sweep.base
        assert restored.axes == sweep.axes

    def test_invalid_combination_fails_at_expansion(self):
        base = self.base().replace(protocol_params={"reversion": 0.1})
        with pytest.raises(ValueError, match="reversion"):
            Sweep.over(base, protocol=["push-sum"]).points()


class TestSweepRunner:
    def sweep(self):
        base = ScenarioSpec(
            protocol="push-sum-revert",
            n_hosts=60,
            rounds=8,
            events=({"event": "failure", "round": 4, "model": "uncorrelated", "fraction": 0.5},),
        )
        return Sweep.over(base, **{
            "protocol_params.reversion": [0.0, 0.1],
            "seed": [0, 1],
        })

    def test_serial_rows_and_order(self):
        result = SweepRunner(parallel=False).run(self.sweep())
        assert len(result) == 4
        assert result.axis_names == ["protocol_params.reversion", "seed"]
        assert result.column("seed") == [0, 1, 0, 1]
        for row in result.rows:
            assert row["n_alive"] == 30
            assert row["final_error"] >= 0.0

    def test_parallel_equals_serial(self):
        serial = SweepRunner(parallel=False).run(self.sweep())
        parallel = SweepRunner(parallel=True, max_workers=2, chunksize=2).run(self.sweep())
        assert parallel.parallel and not serial.parallel
        assert [r.errors() for r in parallel.results] == [r.errors() for r in serial.results]
        for left, right in zip(parallel.rows, serial.rows):
            assert left == right

    def test_explicit_spec_list(self):
        specs = [
            ScenarioSpec(protocol="push-sum", n_hosts=40, rounds=5, name="static"),
            ScenarioSpec(protocol="push-sum-revert", n_hosts=40, rounds=5, name="dynamic"),
        ]
        result = SweepRunner().run(specs)
        assert result.axis_names == ["scenario"]
        assert result.column("scenario") == ["static", "dynamic"]

    def test_render_and_best(self):
        result = SweepRunner().run(self.sweep())
        text = result.render()
        assert "final_error" in text
        assert "4 runs" in text
        best = result.best("final_error")
        assert best["final_error"] == min(result.column("final_error"))

    def test_invalid_runner_options(self):
        with pytest.raises(ValueError):
            SweepRunner(chunksize=0)
        with pytest.raises(ValueError):
            SweepRunner(max_workers=0)
