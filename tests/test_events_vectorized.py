"""Tests for the bucketed vectorised event calendar (repro.events.vectorized).

Two guarantee tiers (DESIGN.md §14):

* at the synchronization anchor — unit-rate synchronized clocks over an
  instant network — the bucketed calendar degenerates to whole-population
  kernel steps with identical RNG consumption, so it must match the round
  engine's vectorised backend *bit for bit*;
* away from the anchor (heterogeneous rates, latency, loss, membership)
  the agent event engine and the bucketed calendar are distinct
  realisations of the same stochastic process, so they must agree *in
  distribution* across seeds, not per-record.
"""

import dataclasses
import statistics

import pytest

from repro.api import ScenarioSpec, run_scenario
from repro.network import MassConservationError

SEEDS = tuple(range(8))


def events_spec(**overrides):
    base = dict(
        protocol="push-sum-revert",
        protocol_params={"reversion": 0.05},
        n_hosts=64,
        rounds=12,
        seed=7,
        engine="events",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def record_dicts(result, drop=("time",)):
    rows = []
    for record in result.rounds:
        row = dataclasses.asdict(record)
        for key in drop:
            row.pop(key)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# The synchronization anchor: bit-identity with the round engine
# ---------------------------------------------------------------------------
class TestSyncAnchorBitIdentity:
    """Synchronized unit-rate clocks + instant network == the round engine."""

    def assert_bit_identical(self, **overrides):
        events = run_scenario(events_spec(backend="vectorized", n_hosts=128,
                                          rounds=10, **overrides))
        rounds = run_scenario(events_spec(engine="rounds", engine_params={},
                                          backend="vectorized", n_hosts=128,
                                          rounds=10, **overrides))
        assert events.metadata["backend"] == rounds.metadata["backend"] == "vectorized"
        assert record_dicts(events) == record_dicts(rounds)
        assert events.times() == [float(j) for j in range(1, 11)]
        assert rounds.times() == [None] * 10

    def test_perfect_network_exchange(self):
        self.assert_bit_identical(mode="exchange")

    def test_perfect_network_push(self):
        self.assert_bit_identical(mode="push")

    def test_mid_run_uncorrelated_failure(self):
        self.assert_bit_identical(
            mode="exchange",
            events=({"event": "failure", "round": 5,
                     "model": "uncorrelated", "fraction": 0.25},),
        )

    def test_bernoulli_loss(self):
        self.assert_bit_identical(
            mode="exchange", network="bernoulli-loss", network_params={"p": 0.2},
        )

    def test_same_seed_is_bit_deterministic_off_the_anchor(self):
        kwargs = dict(
            backend="vectorized", mode="exchange",
            network="latency",
            network_params={"distribution": "uniform", "low": 0, "high": 2},
            engine_params={"rates": {"distribution": "heterogeneous",
                                     "fast": 2.0, "slow": 0.25},
                           "synchronized": False},
        )
        first = run_scenario(events_spec(**kwargs))
        second = run_scenario(events_spec(**kwargs))
        assert record_dicts(first, drop=()) == record_dicts(second, drop=())


# ---------------------------------------------------------------------------
# Away from the anchor: agreement with the agent event engine in distribution
# ---------------------------------------------------------------------------
SCENARIOS = {
    "uniform-rates": {},
    "heterogeneous-rates": {
        "engine_params": {"rates": {"distribution": "heterogeneous",
                                    "fast": 2.0, "slow": 0.25},
                          "synchronized": False},
    },
    "lognormal-rates": {
        "engine_params": {"rates": {"distribution": "lognormal", "sigma": 0.5},
                          "synchronized": False},
    },
    "latency-exchange": {
        "mode": "exchange",
        "network": "latency",
        "network_params": {"distribution": "uniform", "low": 0, "high": 2},
    },
    "loss": {
        "network": "bernoulli-loss", "network_params": {"p": 0.2},
    },
    "departures": {
        "events": ({"event": "failure", "round": 6,
                    "model": "uncorrelated", "fraction": 0.25},),
    },
}


class TestDistributionAgreement:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_agent_and_vectorized_agree_across_seeds(self, name):
        overrides = SCENARIOS[name]
        agent_first, agent_final = [], []
        vector_first, vector_final = [], []
        for seed in SEEDS:
            agent = run_scenario(events_spec(backend="agent", seed=seed, **overrides))
            vector = run_scenario(events_spec(backend="vectorized", seed=seed,
                                              **overrides))
            assert agent.metadata["backend"] == "agent"
            assert vector.metadata["backend"] == "vectorized"
            assert len(agent.rounds) == len(vector.rounds) == 12
            # Same workload stream on both backends: identical populations
            # (up to summation order in the truth reduction).
            if "events" not in overrides:
                assert agent.truths() == pytest.approx(vector.truths())
            assert agent.alive_counts()[-1] == vector.alive_counts()[-1]
            agent_first.append(agent.errors()[0])
            agent_final.append(agent.final_error())
            vector_first.append(vector.errors()[0])
            vector_final.append(vector.final_error())
        agent_mean = statistics.mean(agent_final)
        vector_mean = statistics.mean(vector_final)
        assert agent_mean > 0 and vector_mean > 0
        # Both realisations must converge substantially...
        assert agent_mean < 0.5 * statistics.mean(agent_first)
        assert vector_mean < 0.5 * statistics.mean(vector_first)
        # ...and land within an order of magnitude of each other.  The
        # band is wide by design: the kernel serializes conflicting
        # exchanges (first-claim) where the agent calendar runs them all,
        # a per-round rate difference that compounds exponentially over
        # the 12 sampled intervals.
        ratio = vector_mean / agent_mean
        assert 0.1 < ratio < 10.0, (name, agent_final, vector_final)


# ---------------------------------------------------------------------------
# Membership, quantum control and mass conservation
# ---------------------------------------------------------------------------
class TestBucketedCalendarMechanics:
    def test_joins_grow_the_population(self):
        result = run_scenario(events_spec(
            backend="vectorized", n_hosts=32,
            events=({"event": "join", "round": 4, "count": 16},),
        ))
        counts = result.alive_counts()
        assert counts[2] == 32 and counts[-1] == 48

    def test_batch_quantum_is_configurable_and_recorded(self):
        result = run_scenario(events_spec(
            backend="vectorized", engine_params={"batch_quantum": 0.5},
        ))
        assert result.metadata["engine"]["batch_quantum"] == 0.5
        assert len(result.rounds) == 12

    def test_bad_batch_quantum_is_rejected_eagerly(self):
        for bad in (0, -1.0, True, "fast"):
            with pytest.raises(ValueError, match="batch_quantum"):
                events_spec(engine_params={"batch_quantum": bad})

    def test_quantum_choice_does_not_change_the_samples_at_the_anchor(self):
        # At the sync anchor every tick lands on the unit grid, so any
        # quantum that divides the sample interval buckets the same ticks
        # together and the records cannot move.
        reference = run_scenario(events_spec(backend="vectorized"))
        halved = run_scenario(events_spec(
            backend="vectorized", engine_params={"batch_quantum": 0.5},
        ))
        assert record_dicts(reference) == record_dicts(halved)

    def test_mass_violation_is_caught_per_bucket(self, monkeypatch):
        # A kernel that silently halves every delivered parcel must trip
        # the per-bucket ledger check, not sail through to the final
        # sample with a drifted truth.
        from repro.simulator.vectorized import VectorizedPushSumRevert

        original = VectorizedPushSumRevert.apply_deliveries

        def leaky(self, targets, weight, total):
            return original(self, targets, weight * 0.5, total)

        monkeypatch.setattr(VectorizedPushSumRevert, "apply_deliveries", leaky)
        spec = events_spec(
            backend="vectorized", mode="push",
            network="latency",
            network_params={"distribution": "fixed", "delay": 1},
            engine_params={"mass_check": "event"},
        )
        with pytest.raises(MassConservationError):
            run_scenario(spec)

    def test_mass_checks_pass_on_honest_runs(self):
        for params in ({"mass_check": "event"}, {"mass_check": "sample"}):
            result = run_scenario(events_spec(
                backend="vectorized", mode="push",
                network="latency",
                network_params={"distribution": "fixed", "delay": 1},
                engine_params=params,
            ))
            assert len(result.rounds) == 12
