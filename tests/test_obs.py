"""Tests for the observability layer (repro.obs, DESIGN.md §13).

The two load-bearing guarantees:

* **bit-identity** — probes only observe; a run with a TraceRecorder (or
  any probe) attached produces a payload identical to the bare run, on
  every engine and backend;
* **bounded overhead** — the null probe costs ~nothing, and an enabled
  TraceRecorder keeps a smoke-bench-sized run within 10% of its
  unprobed wall time.

Plus the mechanics: span nesting depth/parent bookkeeping, JSONL
round-trips, MultiProbe fan-out, metrics folding/rendering, the obs
report, store instrumentation, sweep progress heartbeats, and the
vectorised delivery-counter parity satellite.
"""

import json
import time

import pytest

from repro.api.spec import ScenarioSpec, run_scenario
from repro.api.sweep import Sweep, SweepRunner
from repro.obs import (
    NULL_PROBE,
    MetricsRegistry,
    MultiProbe,
    NullProbe,
    Probe,
    TraceRecorder,
    compose,
    read_trace,
    render_report,
    summarize_trace,
)
from repro.store import ResultStore


class TestProbeProtocol:
    def test_null_probe_is_disabled_and_allocation_free(self):
        probe = NullProbe()
        assert probe.enabled is False
        # The span context manager is a shared singleton — hot loops pay
        # no per-call allocation under the default probe.
        assert probe.span("a") is probe.span("b", x=1)
        with probe.span("anything"):
            pass
        probe.event("e", field=1)
        probe.count("c")
        probe.gauge("g", 2.0)

    def test_base_probe_is_enabled(self):
        assert Probe().enabled is True
        assert NULL_PROBE.enabled is False

    def test_span_nesting_depth_and_parent(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("middle", round=3):
                with recorder.span("inner"):
                    pass
            with recorder.span("sibling"):
                pass
        spans = {r["name"]: r for r in recorder.records if r["kind"] == "span"}
        assert spans["outer"]["depth"] == 0 and spans["outer"]["parent"] is None
        assert spans["middle"]["depth"] == 1 and spans["middle"]["parent"] == "outer"
        assert spans["middle"]["round"] == 3
        assert spans["inner"]["depth"] == 2 and spans["inner"]["parent"] == "middle"
        assert spans["sibling"]["depth"] == 1 and spans["sibling"]["parent"] == "outer"
        # Inner spans finish first, so they are recorded first.
        order = [r["name"] for r in recorder.records]
        assert order == ["inner", "middle", "sibling", "outer"]

    def test_span_measures_wall_time(self):
        recorder = TraceRecorder()
        with recorder.span("sleep"):
            time.sleep(0.01)
        (span,) = recorder.records
        assert span["seconds"] >= 0.009

    def test_multiprobe_fans_out_to_all_members(self):
        trace = TraceRecorder()
        metrics = MetricsRegistry()
        multi = MultiProbe(trace, metrics)
        assert multi.enabled
        with multi.span("phase"):
            with multi.span("sub"):
                pass
        multi.event("happened", detail=7)
        multi.count("things", 3)
        multi.gauge("level", 1.5)
        # The trace recorder saw the span lifecycle (including nesting).
        sub = next(r for r in trace.records if r["name"] == "sub")
        assert sub["parent"] == "phase" and sub["depth"] == 1
        assert any(r["kind"] == "event" and r["name"] == "happened" for r in trace.records)
        # The metrics registry folded the same stream.
        assert metrics.histograms["phase"]["count"] == 1
        assert metrics.histograms["sub"]["count"] == 1
        assert metrics.counters["things"] == 3
        assert metrics.gauges["level"]["value"] == 1.5

    def test_multiprobe_drops_disabled_members(self):
        assert not MultiProbe().enabled
        assert not MultiProbe(NullProbe(), None).enabled
        trace = TraceRecorder()
        multi = MultiProbe(NullProbe(), trace)
        assert multi.enabled and list(multi) == [trace]

    def test_compose_returns_cheapest_cover(self):
        assert compose([]) is NULL_PROBE
        assert compose([None, NullProbe()]) is NULL_PROBE
        trace = TraceRecorder()
        assert compose([trace, None]) is trace
        multi = compose([trace, MetricsRegistry()])
        assert isinstance(multi, MultiProbe) and len(list(multi)) == 2


class TestTraceRecorder:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path))
        with recorder.span("phase", round=0):
            pass
        recorder.event("round_end", round=0, n_alive=10)
        recorder.count("delivered", 20)
        recorder.gauge("depth", 3)
        recorder.close()
        loaded = read_trace(str(path))
        assert loaded == recorder.records
        kinds = [r["kind"] for r in loaded]
        assert kinds == ["span", "event", "count", "gauge"]
        # Every record is a flat JSON object with kind/t/name.
        for record in loaded:
            assert {"kind", "t", "name"} <= set(record)

    def test_flush_appends_incrementally(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path))
        recorder.event("one")
        recorder.flush()
        recorder.event("two")
        recorder.flush()
        recorder.flush()  # idempotent: nothing new to write
        names = [r["name"] for r in read_trace(str(path))]
        assert names == ["one", "two"]

    def test_in_memory_recorder_needs_no_path(self):
        recorder = TraceRecorder()
        recorder.event("x")
        recorder.close()  # no-op without a path
        assert len(recorder) == 1


#: One spec per engine/backend/feature corner the probe threads through.
BIT_IDENTITY_SPECS = {
    "vectorized-uniform": ScenarioSpec(
        protocol="push-sum-revert", n_hosts=150, rounds=12, seed=3, mode="exchange"
    ),
    "vectorized-lossy-push": ScenarioSpec(
        protocol="push-sum-revert", n_hosts=150, rounds=12, seed=3, mode="push",
        network="bernoulli-loss", network_params={"p": 0.2},
    ),
    "vectorized-topology-churn": ScenarioSpec(
        protocol="push-sum-revert", n_hosts=150, rounds=15, seed=5,
        environment="ring", environment_params={"k": 4},
        events=(
            {"event": "failure", "round": 6, "model": "uncorrelated", "fraction": 0.1},
        ),
    ),
    "vectorized-sketch": ScenarioSpec(
        protocol="count-sketch-reset", n_hosts=120, rounds=10, seed=2,
        protocol_params={"bins": 16, "bits": 16},
    ),
    "agent-lossy-churn": ScenarioSpec(
        protocol="push-sum-revert", n_hosts=80, rounds=12, seed=7, backend="agent",
        network="bernoulli-loss", network_params={"p": 0.1},
        events=(
            {"event": "churn", "start": 3, "stop": 8, "model": "uncorrelated",
             "fraction": 0.05, "arrivals_per_round": 2},
        ),
    ),
    "event-engine": ScenarioSpec(
        protocol="push-sum", n_hosts=60, rounds=10, seed=4, mode="push",
        engine="events",
    ),
}


class TestBitIdentity:
    """Probes observe; they must never change a single bit of the result."""

    @pytest.mark.parametrize("name", sorted(BIT_IDENTITY_SPECS))
    def test_traced_run_is_bit_identical(self, name):
        spec = BIT_IDENTITY_SPECS[name]
        bare = run_scenario(spec)
        trace = TraceRecorder()
        metrics = MetricsRegistry()
        probed = run_scenario(spec, probe=MultiProbe(trace, metrics))
        assert probed.to_payload() == bare.to_payload()
        assert len(trace.records) > 0

    def test_store_round_trip_is_bit_identical_with_probe(self, tmp_path):
        spec = BIT_IDENTITY_SPECS["vectorized-uniform"]
        store = ResultStore(str(tmp_path / "cache"), probe=TraceRecorder())
        cold = run_scenario(spec, store=store, probe=TraceRecorder())
        warm = run_scenario(spec, store=store, probe=TraceRecorder())
        assert warm.to_payload() == cold.to_payload()


class TestEngineInstrumentation:
    def test_agent_round_phases_and_events(self):
        spec = BIT_IDENTITY_SPECS["agent-lossy-churn"]
        trace = TraceRecorder()
        run_scenario(spec, probe=trace)
        spans = [r for r in trace.records if r["kind"] == "span"]
        names = {r["name"] for r in spans}
        assert {"round", "begin_round", "exchange", "finalize", "record"} <= names
        rounds = [r for r in spans if r["name"] == "round"]
        assert len(rounds) == spec.rounds
        assert all(r["parent"] == "execute" for r in rounds)
        events = [r for r in trace.records if r["kind"] == "event"]
        by_name = {}
        for record in events:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["round_end"]) == spec.rounds
        # Churn rounds 3..7 emit a fail (and two joins) each.
        actions = {r["action"] for r in by_name["membership"]}
        assert actions == {"fail", "join"}
        assert {"round", "at_hosts", "in_flight"} <= set(by_name["mass_check"][0])
        # round_end carries the per-round counter schema the report renders.
        assert {"round", "n_alive", "max_abs_error", "messages_delivered",
                "messages_lost", "bytes_sent"} <= set(by_name["round_end"][0])

    def test_vectorized_kernel_phase_spans(self):
        trace = TraceRecorder()
        run_scenario(BIT_IDENTITY_SPECS["vectorized-topology-churn"], probe=trace)
        names = {r["name"] for r in trace.records if r["kind"] == "span"}
        # Exchange gossip on a ring with a mid-run failure: pair matching,
        # mass scatter, and a CSR rebuild when the alive mask changes.
        assert {"build", "execute", "round", "matching", "scatter", "csr_rebuild"} <= names
        # The topology probe is restored after the run: the cached topology
        # must not keep reporting into this recorder.
        before = len(trace.records)
        run_scenario(BIT_IDENTITY_SPECS["vectorized-topology-churn"])
        assert len(trace.records) == before

    def test_vectorized_sketch_phases(self):
        trace = TraceRecorder()
        run_scenario(BIT_IDENTITY_SPECS["vectorized-sketch"], probe=trace)
        names = {r["name"] for r in trace.records if r["kind"] == "span"}
        assert {"ageing", "sampling", "scatter"} <= names

    def test_event_engine_counters_and_calendar_gauge(self):
        trace = TraceRecorder()
        run_scenario(BIT_IDENTITY_SPECS["event-engine"], probe=trace)
        counts = {}
        for record in trace.records:
            if record["kind"] == "count":
                counts[record["name"]] = counts.get(record["name"], 0) + record["value"]
        assert counts["events.tick"] > 0
        assert counts["events.sample"] == 10
        gauges = {r["name"] for r in trace.records if r["kind"] == "gauge"}
        assert {"calendar_depth", "n_alive"} <= gauges
        assert any(r["kind"] == "span" and r["name"] == "calendar" for r in trace.records)


class TestDeliveryParity:
    """Satellite: the vectorised path exposes the agent's delivery series."""

    def test_perfect_network_run_populates_delivery_fields(self):
        spec = BIT_IDENTITY_SPECS["vectorized-uniform"]
        result = run_scenario(spec)
        assert result.metadata["backend"] == "vectorized"
        # Exchange gossip over 150 hosts: 75 pairs, two messages each.
        assert all(r.messages_delivered == 150 for r in result.rounds)
        assert all(r.messages_lost == 0 for r in result.rounds)
        # Push-sum parity: 16 bytes per message, both halves of the exchange.
        assert all(r.bytes_sent == 150 * 16 for r in result.rounds)

    def test_delivery_series_metadata_mirrors_round_records(self):
        spec = BIT_IDENTITY_SPECS["vectorized-lossy-push"]
        result = run_scenario(spec)
        series = result.metadata["delivery_series"]
        assert series["messages_delivered"] == [
            float(r.messages_delivered) for r in result.rounds
        ]
        assert series["messages_lost"] == [float(r.messages_lost) for r in result.rounds]
        assert series["bytes_sent"] == [float(r.bytes_sent) for r in result.rounds]
        assert sum(series["messages_lost"]) > 0  # the 20% loss actually bit

    def test_lossy_bytes_metered_before_loss(self):
        # Agent parity: bandwidth is recorded when the message is sent, so
        # bytes_sent counts lost messages too (16 B each) — but never
        # self-messages, which the push kernel does count as deliveries.
        result = run_scenario(BIT_IDENTITY_SPECS["vectorized-lossy-push"])
        for record in result.rounds:
            sent = record.messages_delivered + record.messages_lost
            assert 16 * record.messages_lost <= record.bytes_sent <= 16 * sent
            assert record.bytes_sent % 16 == 0

    def test_sketch_exchange_bytes_match_payload_size(self):
        spec = BIT_IDENTITY_SPECS["vectorized-sketch"]
        result = run_scenario(spec)
        payload = 2 * 16 * 16  # reset protocol ships current+previous matrices
        for record in result.rounds:
            # Pull gossip: every delivered leg carries one full payload.
            assert record.bytes_sent == payload * record.messages_delivered


class TestMetricsRegistry:
    def _populated(self):
        metrics = MetricsRegistry()
        for _ in range(3):
            with metrics.span("phase_a"):
                pass
        with metrics.span("phase_b"):
            time.sleep(0.002)
        metrics.count("widgets", 2)
        metrics.count("widgets", 3)
        metrics.event("round_end", round=0)
        metrics.gauge("level", 4.0)
        metrics.gauge("level", 2.0)
        return metrics

    def test_folds_spans_counters_gauges(self):
        metrics = self._populated()
        assert metrics.histograms["phase_a"]["count"] == 3
        assert metrics.histograms["phase_b"]["total"] >= 0.002
        assert metrics.counters["widgets"] == 5
        assert metrics.counters["events.round_end"] == 1
        level = metrics.gauges["level"]
        assert level["value"] == 2.0 and level["min"] == 2.0 and level["max"] == 4.0

    def test_render_contains_tables(self):
        text = self._populated().render()
        assert "phase_a" in text and "calls" in text and "share" in text
        assert "widgets" in text
        assert "level" in text
        assert "(no metrics recorded)" in MetricsRegistry().render()

    def test_prometheus_export(self):
        text = self._populated().prometheus()
        assert "repro_widgets_total 5" in text
        assert "repro_level 2\n" in text
        assert "repro_phase_a_seconds_count 3" in text
        assert "repro_phase_a_seconds_sum" in text
        # Names are sanitised to the Prometheus charset.
        metrics = MetricsRegistry()
        metrics.count("events.round_end")
        assert "repro_events_round_end_total 1" in metrics.prometheus()

    def test_as_dict_round_trips_through_json(self):
        payload = self._populated().as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestObsReport:
    def _trace(self):
        trace = TraceRecorder()
        run_scenario(BIT_IDENTITY_SPECS["vectorized-lossy-push"], probe=trace)
        return trace

    def test_summarize_trace(self):
        summary = summarize_trace(self._trace().records)
        assert summary["phases"]["round"]["count"] == 12
        assert len(summary["rounds"]) == 12
        assert summary["events"]["round_end"] == 12

    def test_render_report_has_phase_and_round_tables(self):
        text = render_report(self._trace().records, every=4)
        assert "Phase-time breakdown" in text
        assert "Per-round counters" in text
        assert "messages_lost" in text
        # every=4 keeps rows 0,4,8 plus the last round (11).
        lines = text[text.index("Per-round counters"):].splitlines()
        round_cells = [line.split("|")[0].strip() for line in lines[3:] if "|" in line]
        assert round_cells == ["0", "4", "8", "11"]

    def test_empty_trace(self):
        assert render_report([]) == "(empty trace)"


class TestStoreInstrumentation:
    def test_hit_miss_counts_and_blob_spans(self, tmp_path):
        trace = TraceRecorder()
        store = ResultStore(str(tmp_path / "cache"), probe=trace)
        spec = BIT_IDENTITY_SPECS["vectorized-uniform"]
        assert store.get(spec) is None  # miss
        result = run_scenario(spec)
        store.put(spec, result)
        assert store.get(spec) is not None  # hit
        counts = {}
        for record in trace.records:
            if record["kind"] == "count":
                counts[record["name"]] = counts.get(record["name"], 0) + record["value"]
        assert counts == {"store.misses": 1, "store.puts": 1, "store.hits": 1}
        spans = {r["name"] for r in trace.records if r["kind"] == "span"}
        assert {"blob_read", "blob_write"} <= spans

    def test_run_with_store_emits_outcome_events_once(self, tmp_path):
        spec = BIT_IDENTITY_SPECS["vectorized-uniform"]
        trace = TraceRecorder()
        store = ResultStore(str(tmp_path / "cache"), probe=trace)
        run_scenario(spec, store=store, probe=trace)
        run_scenario(spec, store=store, probe=trace)
        outcomes = [r["outcome"] for r in trace.records
                    if r["kind"] == "event" and r["name"] == "store"]
        assert outcomes == ["miss", "hit"]
        counts = [r for r in trace.records if r["kind"] == "count"]
        # Counter stream stays single-sourced (no double counting when the
        # same probe rides both the store and run_with_backend).
        assert sum(1 for r in counts if r["name"] == "store.hits") == 1
        assert sum(1 for r in counts if r["name"] == "store.misses") == 1


class TestSweepInstrumentation:
    def _sweep(self):
        base = ScenarioSpec(protocol="push-sum-revert", n_hosts=60, rounds=6)
        return Sweep.over(base, seed=[0, 1, 2])

    def test_progress_heartbeats_on_stderr(self, capsys):
        SweepRunner(progress=True).run(self._sweep())
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.startswith("[sweep")]
        assert len(lines) == 3
        assert "[sweep 1/3] executed" in lines[0]
        assert lines[0].rstrip().endswith("s")

    def test_progress_reports_cached_cells(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path / "cache"))
        sweep = self._sweep()
        SweepRunner(store=store, progress=True).run(sweep)
        capsys.readouterr()
        SweepRunner(store=store, progress=True).run(sweep)
        err = capsys.readouterr().err
        assert sum(1 for line in err.splitlines() if "cached" in line) == 3

    def test_probe_records_cells_and_threads_into_runs(self):
        trace = TraceRecorder()
        result = SweepRunner(probe=trace).run(self._sweep())
        assert len(result.rows) == 3
        cells = [r for r in trace.records if r["kind"] == "event" and r["name"] == "cell"]
        assert [c["index"] for c in cells] == [0, 1, 2]
        assert all(c["status"] == "executed" for c in cells)
        # The serial path hands the probe to run_scenario — kernel spans land.
        assert sum(1 for r in trace.records
                   if r["kind"] == "span" and r["name"] == "execute") == 3

    def test_quiet_default_prints_nothing(self, capsys):
        SweepRunner().run(self._sweep())
        assert capsys.readouterr().err == ""


class TestOverheadGuard:
    def test_trace_recorder_overhead_under_ten_percent(self):
        # The smoke-bench shape: a vectorised population large enough that
        # per-round kernel work dominates.  min-of-repeats absorbs noise.
        spec = ScenarioSpec(protocol="push-sum-revert", n_hosts=2000, rounds=40, seed=1)
        run_scenario(spec)  # warm caches/imports

        def best(probe=None, repeats=5):
            timings = []
            for _ in range(repeats):
                start = time.perf_counter()
                run_scenario(spec, probe=probe)
                timings.append(time.perf_counter() - start)
            return min(timings)

        bare = best()
        probed = best(probe=TraceRecorder())
        # <10% per the design contract, plus 5 ms absolute slack so a
        # loaded CI worker cannot flake a sub-50ms baseline.
        assert probed <= bare * 1.10 + 0.005, (
            f"probe overhead too high: bare={bare * 1e3:.1f}ms probed={probed * 1e3:.1f}ms"
        )
