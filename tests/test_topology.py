"""Tests for graph generators and connectivity utilities."""

import pytest

from repro.topology import (
    bfs_distances,
    bfs_tree,
    complete_graph,
    connected_component,
    connected_components,
    empty_graph,
    erdos_renyi_graph,
    grid_graph,
    induced_subgraph,
    is_connected,
    random_geometric_graph,
    ring_lattice,
    star_graph,
    union_adjacency,
)
from repro.topology.graphs import grid_positions


def _is_symmetric(graph):
    return all(node in graph[neighbor] for node, nbrs in graph.items() for neighbor in nbrs)


class TestGenerators:
    def test_empty_graph(self):
        graph = empty_graph(4)
        assert len(graph) == 4
        assert all(not neighbors for neighbors in graph.values())

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            empty_graph(-1)

    def test_complete_graph_degree(self):
        graph = complete_graph(6)
        assert all(len(neighbors) == 5 for neighbors in graph.values())
        assert _is_symmetric(graph)

    def test_complete_graph_no_self_loops(self):
        graph = complete_graph(5)
        assert all(node not in graph[node] for node in graph)

    def test_star_graph(self):
        graph = star_graph(5, center=2)
        assert len(graph[2]) == 4
        assert all(len(graph[node]) == 1 for node in graph if node != 2)

    def test_star_graph_center_validation(self):
        with pytest.raises(ValueError):
            star_graph(3, center=5)

    def test_ring_lattice_degree(self):
        graph = ring_lattice(10, k=2)
        assert all(len(neighbors) == 4 for neighbors in graph.values())
        assert _is_symmetric(graph)

    def test_ring_lattice_k_validation(self):
        with pytest.raises(ValueError):
            ring_lattice(10, k=0)

    def test_grid_graph_structure(self):
        graph = grid_graph(3, 3)
        assert len(graph) == 9
        assert len(graph[4]) == 4  # centre has 4 neighbours
        assert len(graph[0]) == 2  # corner has 2
        assert _is_symmetric(graph)

    def test_grid_graph_diagonal(self):
        graph = grid_graph(3, 3, diagonal=True)
        assert len(graph[4]) == 8

    def test_grid_positions(self):
        positions = grid_positions(3, 2)
        assert positions[0] == (0, 0)
        assert positions[5] == (2, 1)

    def test_erdos_renyi_extremes(self):
        assert all(not nbrs for nbrs in erdos_renyi_graph(10, 0.0, seed=1).values())
        full = erdos_renyi_graph(10, 1.0, seed=1)
        assert all(len(nbrs) == 9 for nbrs in full.values())

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_reproducible(self):
        a = erdos_renyi_graph(30, 0.2, seed=5)
        b = erdos_renyi_graph(30, 0.2, seed=5)
        assert a == b

    def test_random_geometric_graph_radius_behaviour(self):
        sparse, _ = random_geometric_graph(30, 0.01, seed=2)
        dense, _ = random_geometric_graph(30, 2.0, seed=2)
        assert sum(len(v) for v in sparse.values()) < sum(len(v) for v in dense.values())
        assert all(len(nbrs) == 29 for nbrs in dense.values())

    def test_random_geometric_graph_positions_returned(self):
        graph, positions = random_geometric_graph(10, 0.3, seed=2)
        assert set(graph) == set(positions)
        assert all(0 <= x <= 1 and 0 <= y <= 1 for x, y in positions.values())

    def test_random_geometric_graph_explicit_positions(self):
        positions = [(0.0, 0.0), (0.05, 0.0), (0.9, 0.9)]
        graph, _ = random_geometric_graph(3, 0.1, positions=positions)
        assert 1 in graph[0]
        assert 2 not in graph[0]


class TestConnectivity:
    def setup_method(self):
        # Two triangles joined by nothing, plus an isolated node.
        self.graph = {
            0: {1, 2},
            1: {0, 2},
            2: {0, 1},
            3: {4, 5},
            4: {3, 5},
            5: {3, 4},
            6: set(),
        }

    def test_connected_component(self):
        assert connected_component(self.graph, 0) == {0, 1, 2}
        assert connected_component(self.graph, 6) == {6}

    def test_connected_component_respects_alive(self):
        assert connected_component(self.graph, 0, alive={0, 1}) == {0, 1}
        assert connected_component(self.graph, 0, alive={1, 2}) == set()

    def test_connected_components_partition(self):
        components = connected_components(self.graph)
        assert sorted(len(c) for c in components) == [1, 3, 3]
        assert set().union(*components) == set(self.graph)

    def test_connected_components_alive_subset(self):
        components = connected_components(self.graph, alive={0, 1, 3, 6})
        assert sorted(len(c) for c in components) == [1, 1, 2]

    def test_is_connected(self):
        assert not is_connected(self.graph)
        assert is_connected(complete_graph(5))
        assert is_connected(self.graph, alive={0, 1, 2})
        assert is_connected(empty_graph(1))
        assert is_connected(empty_graph(0))

    def test_bfs_distances(self):
        graph = grid_graph(3, 3)
        distances = bfs_distances(graph, 0)
        assert distances[0] == 0
        assert distances[8] == 4  # opposite corner via Manhattan path

    def test_bfs_distances_unreachable_excluded(self):
        distances = bfs_distances(self.graph, 0)
        assert 3 not in distances

    def test_bfs_tree_parents(self):
        graph = grid_graph(3, 1)  # path 0-1-2
        parents = bfs_tree(graph, 0)
        assert parents == {0: None, 1: 0, 2: 1}

    def test_bfs_tree_respects_alive(self):
        graph = grid_graph(3, 1)
        parents = bfs_tree(graph, 0, alive={0, 2})
        assert parents == {0: None}

    def test_induced_subgraph(self):
        sub = induced_subgraph(self.graph, {0, 1, 3})
        assert sub == {0: {1}, 1: {0}, 3: set()}

    def test_union_adjacency(self):
        first = {0: {1}, 1: {0}}
        second = {1: {2}, 2: {1}}
        union = union_adjacency([first, second])
        assert union[1] == {0, 2}
        assert union[2] == {1}
