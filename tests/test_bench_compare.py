"""Tests for the CI perf-regression gate (benchmarks/compare_bench.py)."""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.perf import (
    AGENT_ONLY_PROTOCOLS,
    DEFAULT_MIN_SECONDS,
    DEFAULT_SIZES,
    SMOKE_SIZES,
    compare_benchmarks,
    render_comparison,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
COMPARE_SCRIPT = os.path.join(REPO_ROOT, "benchmarks", "compare_bench.py")
COMMITTED_BASELINE = os.path.join(REPO_ROOT, "BENCH_core.json")


def record(protocol="push-sum-revert", backend="agent", n_hosts=1024, mean=0.1):
    return {
        "protocol": protocol,
        "backend": backend,
        "n_hosts": n_hosts,
        "rounds": 10,
        "repeats": 3,
        "best_seconds": mean * 0.9,
        "mean_seconds": mean,
    }


def payload(records):
    return {"benchmark": "core-backends", "schema_version": 1, "records": records}


def baseline_payload():
    return payload(
        [
            record(backend="agent", n_hosts=1024, mean=0.2),
            record(backend="vectorized", n_hosts=1024, mean=0.01),
            record(protocol="count-sketch-reset", backend="agent", n_hosts=1024, mean=0.5),
        ]
    )


class TestCompareBenchmarks:
    def test_smoke_cells_exist_in_the_default_configuration(self):
        # The bench-gate compares a smoke run against the committed
        # baseline, so a baseline regenerated with the plain defaults must
        # contain every smoke cell — and the committed file must, too.
        assert set(SMOKE_SIZES) <= set(DEFAULT_SIZES)
        with open(COMMITTED_BASELINE) as handle:
            baseline = json.load(handle)
        cells = {(r["protocol"], r["backend"], r["n_hosts"]) for r in baseline["records"]}
        for protocol in baseline["config"]["protocols"]:
            backend = "agent" if protocol in AGENT_ONLY_PROTOCOLS else "vectorized"
            for size in SMOKE_SIZES:
                assert (protocol, backend, size) in cells

    def test_identical_payloads_pass(self):
        report = compare_benchmarks(baseline_payload(), baseline_payload())
        assert report["compared"] == 3
        assert report["regressions"] == []
        assert "OK" in render_comparison(report)

    def test_synthetic_regression_fails(self):
        candidate = baseline_payload()
        candidate["records"][0]["mean_seconds"] *= 10.0  # inject a 10x slowdown
        report = compare_benchmarks(baseline_payload(), candidate)
        assert len(report["regressions"]) == 1
        row = report["regressions"][0]
        assert (row["protocol"], row["backend"]) == ("push-sum-revert", "agent")
        assert row["ratio"] == pytest.approx(10.0)
        assert "FAIL" in render_comparison(report)

    def test_speedups_and_threshold_boundary_pass(self):
        candidate = baseline_payload()
        candidate["records"][0]["mean_seconds"] *= 0.2  # 5x faster
        candidate["records"][2]["mean_seconds"] *= 1.99  # just under the 2x gate
        report = compare_benchmarks(baseline_payload(), candidate)
        assert report["regressions"] == []
        statuses = {row["status"] for row in report["rows"]}
        assert "fast" in statuses and "REGRESSION" not in statuses

    def test_sub_noise_floor_records_never_gate(self):
        base = payload([record(backend="vectorized", n_hosts=256, mean=0.0004)])
        candidate = copy.deepcopy(base)
        candidate["records"][0]["mean_seconds"] *= 50.0
        report = compare_benchmarks(base, candidate)
        assert report["regressions"] == []
        assert report["rows"][0]["status"] == "noise"
        assert DEFAULT_MIN_SECONDS > 0.0004

    def test_one_sided_records_are_listed_not_gated(self):
        base = baseline_payload()
        candidate = payload(base["records"][:1] + [record(n_hosts=999999, mean=0.3)])
        report = compare_benchmarks(base, candidate)
        assert report["compared"] == 1
        assert len(report["baseline_only"]) == 2
        assert len(report["candidate_only"]) == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks(baseline_payload(), baseline_payload(), threshold=1.0)
        with pytest.raises(ValueError):
            compare_benchmarks(baseline_payload(), baseline_payload(), min_seconds=-1)


class TestCompareScript:
    """End-to-end through the script CI runs."""

    def run_script(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, COMPARE_SCRIPT, *argv],
            capture_output=True, text=True, env=env,
        )

    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_committed_baseline_passes_against_itself(self):
        completed = self.run_script(COMMITTED_BASELINE, COMMITTED_BASELINE)
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout

    def test_injected_regression_exits_nonzero(self, tmp_path):
        with open(COMMITTED_BASELINE) as handle:
            candidate = json.load(handle)
        slowed = max(
            (r for r in candidate["records"] if r["mean_seconds"] >= DEFAULT_MIN_SECONDS),
            key=lambda r: r["mean_seconds"],
        )
        slowed["mean_seconds"] *= 10.0
        completed = self.run_script(
            COMMITTED_BASELINE, self.write(tmp_path, "cand.json", candidate)
        )
        assert completed.returncode == 1
        assert "FAIL" in completed.stdout and "REGRESSION" in completed.stdout

    def test_disjoint_payloads_exit_usage_error(self, tmp_path):
        left = self.write(tmp_path, "left.json", payload([record(n_hosts=1)]))
        right = self.write(tmp_path, "right.json", payload([record(n_hosts=2)]))
        completed = self.run_script(left, right)
        assert completed.returncode == 2
        assert "no benchmark records" in completed.stderr

    def test_unreadable_payload_exits_usage_error(self, tmp_path):
        completed = self.run_script(COMMITTED_BASELINE, str(tmp_path / "missing.json"))
        assert completed.returncode == 2
