"""Tests for the continuous-time event-driven engine (repro.events)."""

import json

import pytest

from repro.api import ScenarioSpec, resolve_backend, run_scenario
from repro.cli import main as cli_main
from repro.core import PushSumRevert
from repro.environments import UniformEnvironment
from repro.events import (
    DELIVER,
    MEMBERSHIP,
    SAMPLE,
    TICK,
    EventCalendar,
    EventSimulation,
    draw_rate,
    make_clock,
)
from repro.failures import ExplicitFailure, FailureEvent, JoinEvent, ValueChangeEvent
from repro.network import BernoulliLossNetwork, LatencyNetwork, MassConservationError
from repro.simulator import Simulation
from repro.workloads import uniform_values

RECORD_FIELDS = (
    "round_index",
    "truth",
    "n_alive",
    "mean_estimate",
    "stddev_error",
    "max_abs_error",
    "mean_abs_error",
    "bytes_sent",
    "estimates",
    "group_sizes",
    "messages_delivered",
    "messages_lost",
    "messages_in_flight",
)


def membership_events():
    """A failure, a join and a value change — the full membership menu."""
    return [
        FailureEvent(round=8, model=ExplicitFailure([0, 3, 5])),
        JoinEvent(round=12, count=4),
        ValueChangeEvent(round=16, new_values={7: 250.0, 9: -40.0}),
    ]


def event_simulation(n_hosts=48, seed=11, **overrides):
    """A small event-engine run over the standard uniform scenario."""
    values = uniform_values(n_hosts, seed=seed)
    kwargs = dict(
        seed=seed,
        mode="push",
        duration=20.0,
        sample_interval=1.0,
        mass_check="event",
    )
    kwargs.update(overrides)
    return EventSimulation(
        PushSumRevert(0.05), UniformEnvironment(n_hosts), values, **kwargs
    )


# ---------------------------------------------------------------------------
# Calendar ordering
# ---------------------------------------------------------------------------
class TestEventCalendar:
    def test_orders_by_time_then_priority(self):
        calendar = EventCalendar()
        calendar.schedule(2.0, TICK, ("tick", 1))
        calendar.schedule(1.0, TICK, ("tick", 2))
        calendar.schedule(1.0, SAMPLE, ("sample", 1))
        calendar.schedule(1.0, DELIVER, ("deliver",))
        calendar.schedule(1.0, MEMBERSHIP, ("membership", None))
        kinds = [calendar.pop()[3][0] for _ in range(len(calendar))]
        assert kinds == ["membership", "deliver", "tick", "sample", "tick"]

    def test_equal_time_equal_priority_pops_in_schedule_order(self):
        # The monotone sequence number breaks ties deterministically and
        # keeps payloads (which may be uncomparable dicts) out of the heap
        # comparison entirely.
        calendar = EventCalendar()
        for index in range(10):
            calendar.schedule(1.0, TICK, ("tick", {"payload": index}))
        popped = [calendar.pop()[3][1]["payload"] for _ in range(10)]
        assert popped == list(range(10))

    def test_len_and_bool(self):
        calendar = EventCalendar()
        assert not calendar and len(calendar) == 0
        calendar.schedule(1.0, TICK, ("tick", 0))
        assert calendar and len(calendar) == 1


# ---------------------------------------------------------------------------
# Host clocks
# ---------------------------------------------------------------------------
class TestClocks:
    def test_synchronized_clocks_tick_on_the_global_grid(self, rng):
        clock = make_clock(0, 0.5, join_time=0.0, synchronized=True, rng=rng)
        times = [clock.next_time()]
        for _ in range(3):
            clock.advance()
            times.append(clock.next_time())
        assert times == [2.0, 4.0, 6.0, 8.0]

    def test_synchronized_joiner_starts_on_the_next_grid_point(self, rng):
        late = make_clock(1, 1.0, join_time=2.5, synchronized=True, rng=rng)
        assert late.next_time() == 3.0
        on_grid = make_clock(2, 1.0, join_time=3.0, synchronized=True, rng=rng)
        assert on_grid.next_time() == 3.0  # round-engine join semantics

    def test_unsynchronized_phase_is_random_but_within_one_period(self, rng):
        clock = make_clock(0, 2.0, join_time=1.0, synchronized=False, rng=rng)
        first = clock.next_time()
        assert 1.0 < first <= 1.5
        clock.advance()
        assert clock.next_time() == pytest.approx(first + 0.5)

    def test_rate_distributions(self, rng):
        assert draw_rate({"distribution": "uniform", "rate": 2.5}, rng) == 2.5
        fast_slow = {
            draw_rate(
                {"distribution": "heterogeneous", "fast": 2.0, "slow": 0.5}, rng
            )
            for _ in range(64)
        }
        assert fast_slow == {2.0, 0.5}
        floored = {"distribution": "lognormal", "mean": 0.0, "sigma": 2.0, "min_rate": 1.0}
        assert all(draw_rate(floored, rng) >= 1.0 for _ in range(64))

    def test_nonpositive_rate_is_rejected(self, rng):
        with pytest.raises(ValueError, match="rate"):
            make_clock(0, 0.0, join_time=0.0, synchronized=True, rng=rng)


# ---------------------------------------------------------------------------
# Equivalence with the round engine
# ---------------------------------------------------------------------------
class TestRoundEngineEquivalence:
    def test_unit_delay_synchronized_push_matches_the_round_engine(self):
        # Unit fixed delay + synchronized 1 Hz clocks + 1 s samples is the
        # round engine reconstructed on the calendar: a message sent in
        # tick t arrives before the ticks of t+1, membership events fire
        # between rounds, and every record must match bit for bit —
        # including failure, join and value-change handling.
        n_hosts, rounds, seed = 48, 25, 11
        values = uniform_values(n_hosts, seed=seed)

        round_engine = Simulation(
            PushSumRevert(0.05),
            UniformEnvironment(n_hosts),
            values,
            seed=seed,
            mode="push",
            events=membership_events(),
            network=LatencyNetwork(distribution="fixed", delay=1),
        )
        reference = round_engine.run(rounds)

        event_engine = EventSimulation(
            PushSumRevert(0.05),
            UniformEnvironment(n_hosts),
            values,
            seed=seed,
            mode="push",
            events=membership_events(),
            network=LatencyNetwork(distribution="fixed", delay=1),
            duration=float(rounds),
            sample_interval=1.0,
            synchronized=True,
            mass_check="event",
        )
        candidate = event_engine.run()

        assert len(candidate.rounds) == len(reference.rounds) == rounds
        for ours, theirs in zip(candidate.rounds, reference.rounds):
            for field in RECORD_FIELDS:
                assert getattr(ours, field) == getattr(theirs, field), field
            assert ours.time == float(ours.round_index + 1)
            assert theirs.time is None

    def test_equal_seeds_are_bit_deterministic(self):
        kwargs = dict(
            mode="exchange",
            network=LatencyNetwork(distribution="uniform", low=0, high=2),
            rates={"distribution": "heterogeneous", "fast": 2.0, "slow": 0.25},
            synchronized=False,
        )
        first = event_simulation(**kwargs).run()
        second = event_simulation(**kwargs).run()
        assert first.to_payload() == second.to_payload()
        different = event_simulation(seed=12, **kwargs).run()
        assert different.to_payload() != first.to_payload()


# ---------------------------------------------------------------------------
# Mass conservation
# ---------------------------------------------------------------------------
class TestMassConservation:
    def test_latency_exchange_conserves_mass_at_every_event(self):
        # The combination the round engine rejects outright: exchanges
        # over a delaying network, checked after every single event.
        simulation = event_simulation(
            mode="exchange",
            events=membership_events(),
            network=LatencyNetwork(distribution="uniform", low=0, high=2),
            mass_check="event",
        )
        result = simulation.run()
        assert len(result.rounds) == 20
        assert result.final_error() < 20.0

    def test_latency_push_conserves_mass_with_lognormal_rates(self):
        simulation = event_simulation(
            mode="push",
            network=LatencyNetwork(distribution="lognormal", mean=0.3, sigma=0.6),
            rates={"distribution": "lognormal", "mean": 0.0, "sigma": 0.5},
            synchronized=False,
            mass_check="event",
        )
        simulation.run()

    def test_a_leaking_protocol_is_caught(self):
        class LeakyPushSumRevert(PushSumRevert):
            def integrate(self, state, payloads, rng):
                super().integrate(state, payloads, rng)
                state.weight *= 0.9  # silently drop mass outside any hook

        values = uniform_values(16, seed=3)
        simulation = EventSimulation(
            LeakyPushSumRevert(0.05),
            UniformEnvironment(16),
            values,
            seed=3,
            mode="push",
            duration=5.0,
            mass_check="event",
        )
        with pytest.raises(MassConservationError):
            simulation.run()

    def test_mass_check_off_skips_the_books(self):
        simulation = event_simulation(mass_check="off")
        assert simulation._track_mass is False
        simulation.run()


# ---------------------------------------------------------------------------
# Engine API guards
# ---------------------------------------------------------------------------
class TestEngineGuards:
    def test_run_rejects_a_round_count(self):
        with pytest.raises(ValueError, match="duration"):
            event_simulation().run(10)

    def test_run_is_single_shot(self):
        simulation = event_simulation()
        simulation.run()
        with pytest.raises(RuntimeError, match="once"):
            simulation.run()

    def test_step_is_not_part_of_the_contract(self):
        with pytest.raises(NotImplementedError):
            event_simulation().step()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="sample_interval"):
            event_simulation(sample_interval=0.0)
        with pytest.raises(ValueError, match="duration"):
            event_simulation(duration=0.5, sample_interval=1.0)
        with pytest.raises(ValueError, match="mass_check"):
            event_simulation(mass_check="sometimes")

    def test_result_carries_the_time_axis_and_engine_metadata(self):
        result = event_simulation(duration=6.0, sample_interval=2.0).run()
        assert result.times() == [2.0, 4.0, 6.0]
        assert result.round_indices() == [0, 1, 2]
        assert result.metadata["engine"]["name"] == "events"
        assert result.metadata["engine"]["sample_interval"] == 2.0

    def test_payload_round_trip_keeps_time_and_tolerates_legacy_blobs(self):
        result = event_simulation(duration=4.0).run()
        from repro.simulator import SimulationResult

        rebuilt = SimulationResult.from_payload(result.to_payload())
        assert rebuilt.times() == result.times() == [1.0, 2.0, 3.0, 4.0]
        legacy = result.to_payload()
        for entry in legacy["rounds"]:
            del entry["time"]  # blobs written before the event engine
        assert SimulationResult.from_payload(legacy).times() == [None] * 4


# ---------------------------------------------------------------------------
# Spec validation and dispatch
# ---------------------------------------------------------------------------
def events_spec(**overrides):
    base = dict(
        protocol="push-sum-revert",
        protocol_params={"reversion": 0.05},
        n_hosts=32,
        rounds=8,
        seed=5,
        engine="events",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioSpec:
    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            events_spec(engine="ticks")

    def test_engine_params_are_rejected_under_the_round_engine(self):
        with pytest.raises(ValueError, match="events"):
            events_spec(engine="rounds", engine_params={"duration": 10.0})

    @pytest.mark.parametrize(
        "params, match",
        [
            ({"cadence": 2.0}, "unknown engine_params"),
            ({"sample_interval": 0}, "sample_interval"),
            ({"sample_interval": True}, "sample_interval"),
            ({"duration": 0.5}, "duration"),
            ({"synchronized": "yes"}, "synchronized"),
            ({"mass_check": "sometimes"}, "mass_check"),
            ({"rates": "fast"}, "rates"),
            ({"rates": {"distribution": "bimodal"}}, "unknown rate distribution"),
            ({"rates": {"rate": 0.0}}, "positive 'rate'"),
            ({"rates": {"distribution": "heterogeneous", "fast": 1.0}}, "slow"),
            (
                {
                    "rates": {
                        "distribution": "heterogeneous",
                        "fast": 1.0,
                        "slow": 1.0,
                        "fast_fraction": 1.5,
                    }
                },
                "fast_fraction",
            ),
            ({"rates": {"distribution": "lognormal", "sigma": -1.0}}, "sigma"),
            ({"rates": {"distribution": "lognormal", "min_rate": 0}}, "min_rate"),
            ({"rates": {"distribution": "uniform", "fast": 2.0}}, "unknown keys"),
        ],
    )
    def test_bad_engine_params_fail_eagerly(self, params, match):
        with pytest.raises(ValueError, match=match):
            events_spec(engine_params=params)

    def test_latency_exchange_is_legal_only_on_the_event_engine(self):
        with pytest.raises(ValueError, match="event engine"):
            events_spec(
                engine="rounds",
                mode="exchange",
                network="latency",
                network_params={"distribution": "fixed", "delay": 2},
            )
        spec = events_spec(
            mode="exchange",
            network="latency",
            network_params={"distribution": "fixed", "delay": 2},
        )
        assert spec.engine == "events"

    def test_engine_settings_resolve_defaults(self):
        settings = events_spec(engine_params={"sample_interval": 2.0}).engine_settings()
        assert settings["duration"] == 16.0  # rounds * sample_interval
        assert settings["synchronized"] is True
        assert settings["mass_check"] == "sample"

    def test_engine_fields_address_distinct_cache_keys(self):
        rounds_key = events_spec(engine="rounds").key()
        events_key = events_spec().key()
        tuned_key = events_spec(engine_params={"duration": 30.0}).key()
        assert len({rounds_key, events_key, tuned_key}) == 3

    def test_spec_round_trips_through_json(self):
        spec = events_spec(
            engine_params={
                "duration": 12.0,
                "rates": {"distribution": "heterogeneous", "fast": 2.0, "slow": 0.5},
            }
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_vectorized_backend_rejects_unvectorised_events_and_auto_falls_back(self):
        # The bucketed calendar vectorises push-sum-revert only; any other
        # protocol under engine="events" still needs the agent engine, with
        # a structured (axis, feature, reason) rejection explaining why.
        from repro.api.plan import PlanRejectionError, resolve_plan

        agent_only = dict(
            protocol="count-sketch-reset",
            protocol_params={"bins": 8, "bits": 12},
            workload="constant",
        )
        with pytest.raises(PlanRejectionError, match="event calendar") as excinfo:
            events_spec(backend="vectorized", **agent_only)
        rejection = excinfo.value.rejections[0]
        assert rejection.axis == "protocol"
        assert rejection.feature == "count-sketch-reset"
        assert excinfo.value.nearest.backend == "agent"
        assert resolve_backend(events_spec(backend="auto", **agent_only)) == "agent"
        # ...whereas push-sum-revert over uniform gossip now auto-resolves
        # to the vectorised calendar.
        plan = resolve_plan(events_spec(backend="auto"))
        assert (plan.engine, plan.backend) == ("events", "vectorized")
        assert not plan.rejections

    def test_run_scenario_dispatches_to_the_event_engine(self):
        result = run_scenario(events_spec(backend="auto"))
        assert result.metadata["backend"] == "vectorized"
        assert result.metadata["engine"]["name"] == "events"
        assert result.times() == [float(j) for j in range(1, 9)]
        agent = run_scenario(events_spec(backend="agent"))
        assert agent.metadata["backend"] == "agent"
        assert agent.metadata["engine"]["name"] == "events"
        assert agent.times() == result.times()


# ---------------------------------------------------------------------------
# Membership: clock restarts and exchange accounting
# ---------------------------------------------------------------------------
class _ReviveEvent:
    """Scheduled membership event bringing explicit hosts back to life.

    Mirrors what a churn model's revival path does: the hosts are mutated
    directly, so only the engine's post-membership clock restart can get
    them gossiping again.
    """

    def __init__(self, round, host_ids):
        self.round = round
        self.host_ids = list(host_ids)

    def apply(self, simulation, round_index):
        for host_id in self.host_ids:
            simulation.hosts[host_id].revive(round_index)


class TestMembershipClocks:
    def test_revived_hosts_resume_ticking(self):
        # Regression: a host that dies has its pending tick fire without
        # rescheduling, so before the post-membership clock restart a
        # revived host never gossiped again — it sat in the alive set
        # soaking up payloads with a frozen estimate forever.
        sim = event_simulation(
            events=[
                FailureEvent(round=4, model=ExplicitFailure([0, 1])),
                _ReviveEvent(10, [0, 1]),
            ]
        )
        result = sim.run()
        record = result.final_record()
        assert record.n_alive == 48
        truth = record.truth
        for host_id in (0, 1):
            # The tick chain restarted: the clock kept advancing past the
            # end of the run instead of freezing at the time of death...
            assert sim._clocks[host_id].next_time() > sim.duration
            # ...and the host re-converged with everyone else.
            estimate = sim.protocol.estimate(sim.hosts[host_id].state)
            assert abs(estimate - truth) < 10.0

    def test_revival_keeps_the_mass_books_balanced(self):
        # mass_check="event" in event_simulation(): the departure's mass
        # removal and the revival's re-injection must both be booked, or
        # the per-event conservation check raises mid-run.
        sim = event_simulation(
            events=[
                FailureEvent(round=3, model=ExplicitFailure([5])),
                _ReviveEvent(9, [5]),
            ]
        )
        result = sim.run()
        assert result.alive_counts()[-1] == 48

    def test_late_revival_does_not_schedule_past_the_horizon(self):
        # A host revived on the last sample has no room left on its grid;
        # the restart must not schedule a tick beyond the duration.
        sim = event_simulation(
            events=[
                FailureEvent(round=4, model=ExplicitFailure([2])),
                _ReviveEvent(18, [2]),
            ]
        )
        sim.run()
        for _ in range(len(sim.calendar)):
            time, _, _, _ = sim.calendar.pop()
            assert time > sim.duration


class TestExchangeAccounting:
    def test_dead_responder_request_loses_both_legs(self):
        # The fixed branch (DESIGN.md §11): a request arriving at a
        # departed host kills the whole exchange, and every attempted
        # exchange accounts exactly two messages.  Before the fix this
        # counted a single lost message, so exchange totals diverged from
        # the round engine's lost-exchange accounting.
        sim = event_simulation(
            n_hosts=8,
            mode="exchange",
            network=LatencyNetwork(distribution="fixed", delay=1),
            mass_check="off",
        )
        sim._alive_set.discard(1)
        before = sim.delivery.total_lost
        sim._adapter.handle(("xreq", 0, 1, 16), 1.0)
        assert sim.delivery.total_lost - before == 2
        assert sim.delivery.total_delivered == 0

    def test_departures_under_latency_lose_exchanges_in_pairs(self):
        # Integration: explicit departures at round 8 strand requests that
        # are already in flight, so the dead-responder branch must fire —
        # and every loss it books is a pair, keeping delivered + lost even
        # per attempted exchange.
        lost_counts = []
        sim = event_simulation(
            mode="exchange",
            network=LatencyNetwork(distribution="fixed", delay=1),
            events=[FailureEvent(round=8, model=ExplicitFailure(list(range(24))))],
            mass_check="off",
        )
        original = sim.delivery.record_lost

        def recording_lost(bin_index, count=1, **kwargs):
            lost_counts.append(count)
            return original(bin_index, count, **kwargs)

        sim.delivery.record_lost = recording_lost
        sim.run()
        # The only loss sources in a pure-latency exchange run are the
        # dead-responder request (2) and the dead-initiator reply (1).
        assert set(lost_counts) <= {1, 2}
        assert 2 in lost_counts

    def test_exchange_totals_are_even_on_both_engines(self):
        # Cross-engine counter agreement under loss + departures: with no
        # leg left in flight at the horizon, both engines account every
        # attempted exchange as exactly two messages — delivered, lost,
        # or one of each — so the totals are even on both sides.
        n_hosts, rounds, seed = 48, 20, 11
        values = uniform_values(n_hosts, seed=seed)
        events = [FailureEvent(round=8, model=ExplicitFailure([0, 3, 5]))]

        round_engine = Simulation(
            PushSumRevert(0.05),
            UniformEnvironment(n_hosts),
            values,
            seed=seed,
            mode="exchange",
            events=events,
            network=BernoulliLossNetwork(0.2),
        )
        round_result = round_engine.run(rounds)

        event_engine = EventSimulation(
            PushSumRevert(0.05),
            UniformEnvironment(n_hosts),
            values,
            seed=seed,
            mode="exchange",
            events=[FailureEvent(round=8, model=ExplicitFailure([0, 3, 5]))],
            network=BernoulliLossNetwork(0.2),
            duration=float(rounds),
            sample_interval=1.0,
            mass_check="event",
        )
        event_result = event_engine.run()

        for result in (round_result, event_result):
            delivered = sum(result.delivered_per_round())
            lost = sum(result.lost_per_round())
            assert delivered > 0
            assert lost > 0
            assert (delivered + lost) % 2 == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_run_with_engine_flags(self, capsys):
        exit_code = cli_main(
            [
                "run",
                "--protocol", "push-sum-revert",
                "--hosts", "32",
                "--rounds", "6",
                "--engine", "events",
                "--engine-params",
                json.dumps({"rates": {"distribution": "heterogeneous",
                                      "fast": 2.0, "slow": 0.5}}),
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["result"]["metadata"]["engine"]["name"] == "events"
        assert [entry["time"] for entry in payload["result"]["rounds"]] == [
            float(j) for j in range(1, 7)
        ]

    def test_list_includes_the_engines(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "engine" in out
        assert "events" in out

    def test_heterogeneous_rates_example_spec_runs(self, capsys):
        exit_code = cli_main(
            ["run", "--config", "examples/specs/heterogeneous_rates.json",
             "--hosts", "32", "--rounds", "5"]
        )
        assert exit_code == 0
