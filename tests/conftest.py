"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.workloads.values import uniform_values


@pytest.fixture
def rng():
    """A deterministic NumPy generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_values():
    """Twenty deterministic uniform values in [0, 100)."""
    return uniform_values(20, seed=7)


@pytest.fixture
def medium_values():
    """Two hundred deterministic uniform values in [0, 100)."""
    return uniform_values(200, seed=7)
