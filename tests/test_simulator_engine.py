"""Tests for the agent-based simulation engine and its result records."""

import math

import numpy as np
import pytest

from repro.baselines import PushSum, SketchCount
from repro.core import CountSketchReset, PushSumRevert
from repro.environments import NeighborhoodEnvironment, UniformEnvironment
from repro.failures import CorrelatedFailure, FailureEvent, JoinEvent, UncorrelatedFailure
from repro.simulator import Simulation
from repro.simulator.host import Host
from repro.simulator.result import RoundRecord, SimulationResult
from repro.topology import complete_graph
from repro.workloads import uniform_values


class TestHost:
    def test_fail_marks_round(self):
        host = Host(host_id=0, value=1.0)
        host.fail(7)
        assert not host.alive
        assert host.failed_round == 7

    def test_fail_twice_keeps_first_round(self):
        host = Host(host_id=0, value=1.0)
        host.fail(3)
        host.fail(9)
        assert host.failed_round == 3

    def test_revive_restores_liveness(self):
        host = Host(host_id=0, value=1.0)
        host.fail(3)
        host.revive(10)
        assert host.alive
        assert host.failed_round is None
        assert host.joined_round == 10


class TestSimulationBasics:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            Simulation(PushSum(), UniformEnvironment(4), [1.0] * 4, mode="broadcast")

    def test_exchange_mode_requires_exchange_protocol(self):
        from repro.core import FullTransferPushSumRevert

        with pytest.raises(TypeError):
            Simulation(
                FullTransferPushSumRevert(0.1),
                UniformEnvironment(4),
                [1.0] * 4,
                mode="exchange",
            )

    def test_group_relative_requires_group_environment(self):
        with pytest.raises(ValueError):
            Simulation(
                PushSum(), UniformEnvironment(4), [1.0] * 4, group_relative=True
            )

    def test_initial_population(self):
        sim = Simulation(PushSum(), UniformEnvironment(5), [1.0, 2.0, 3.0, 4.0, 5.0])
        assert len(sim.hosts) == 5
        assert sim.alive_ids() == [0, 1, 2, 3, 4]

    def test_truth_average(self):
        sim = Simulation(PushSum(), UniformEnvironment(4), [1.0, 2.0, 3.0, 6.0])
        assert sim._truth_for(sim.alive_ids()) == pytest.approx(3.0)

    def test_truth_count_and_sum(self):
        count_sim = Simulation(
            CountSketchReset(bins=4, bits=8), UniformEnvironment(4), [1.0] * 4
        )
        assert count_sim._truth_for(count_sim.alive_ids()) == 4.0
        sum_sim = Simulation(
            CountSketchReset(bins=4, bits=8, value_as_identifiers=True),
            UniformEnvironment(3),
            [2.0, 3.0, 5.0],
        )
        assert sum_sim._truth_for(sum_sim.alive_ids()) == 10.0

    def test_add_and_fail_host(self):
        sim = Simulation(PushSum(), UniformEnvironment(3), [1.0, 2.0, 3.0])
        new_host = sim.add_host(9.0)
        assert new_host.host_id == 3
        assert 3 in sim.alive_ids()
        sim.fail_host(1)
        assert 1 not in sim.alive_ids()


class TestSimulationRuns:
    def test_push_sum_converges_on_uniform_environment(self, medium_values):
        sim = Simulation(
            PushSum(), UniformEnvironment(len(medium_values)), medium_values, seed=3, mode="push"
        )
        result = sim.run(30)
        truth = sum(medium_values) / len(medium_values)
        assert result.final_truth() == pytest.approx(truth)
        assert result.final_error() < 0.5

    def test_push_sum_exchange_converges(self, medium_values):
        sim = Simulation(
            PushSum(),
            UniformEnvironment(len(medium_values)),
            medium_values,
            seed=3,
            mode="exchange",
        )
        result = sim.run(30)
        assert result.final_error() < 0.5

    def test_same_seed_reproduces_run(self, small_values):
        def run_once():
            sim = Simulation(
                PushSumRevert(0.01),
                UniformEnvironment(len(small_values)),
                small_values,
                seed=11,
                mode="exchange",
            )
            return sim.run(15).errors()

        assert run_once() == run_once()

    def test_different_seeds_differ(self, small_values):
        def run_with(seed):
            sim = Simulation(
                PushSum(),
                UniformEnvironment(len(small_values)),
                small_values,
                seed=seed,
                mode="push",
            )
            return sim.run(5).errors()

        assert run_with(1) != run_with(2)

    def test_failure_event_reduces_population(self, medium_values):
        events = [FailureEvent(round=5, model=UncorrelatedFailure(0.5))]
        sim = Simulation(
            PushSum(),
            UniformEnvironment(len(medium_values)),
            medium_values,
            seed=3,
            mode="push",
            events=events,
        )
        result = sim.run(10)
        assert result.rounds[4].n_alive == len(medium_values)
        assert result.rounds[5].n_alive == len(medium_values) // 2

    def test_correlated_failure_changes_truth(self, medium_values):
        events = [FailureEvent(round=5, model=CorrelatedFailure(0.5, highest=True))]
        sim = Simulation(
            PushSum(),
            UniformEnvironment(len(medium_values)),
            medium_values,
            seed=3,
            mode="push",
            events=events,
        )
        result = sim.run(10)
        assert result.rounds[5].truth < result.rounds[4].truth

    def test_join_event_grows_population(self, small_values):
        events = [JoinEvent(round=3, count=5)]
        sim = Simulation(
            PushSum(),
            UniformEnvironment(len(small_values)),
            small_values,
            seed=3,
            mode="push",
            events=events,
        )
        result = sim.run(6)
        assert result.rounds[2].n_alive == len(small_values)
        assert result.rounds[3].n_alive == len(small_values) + 5

    def test_bandwidth_recorded_for_push_mode(self, small_values):
        sim = Simulation(
            PushSum(), UniformEnvironment(len(small_values)), small_values, seed=3, mode="push"
        )
        result = sim.run(3)
        assert all(record.bytes_sent > 0 for record in result.rounds)

    def test_bandwidth_recorded_for_exchange_mode(self, small_values):
        sim = Simulation(
            PushSum(),
            UniformEnvironment(len(small_values)),
            small_values,
            seed=3,
            mode="exchange",
        )
        result = sim.run(3)
        assert all(record.bytes_sent > 0 for record in result.rounds)

    def test_store_estimates_keeps_per_host_values(self, small_values):
        sim = Simulation(
            PushSum(),
            UniformEnvironment(len(small_values)),
            small_values,
            seed=3,
            mode="push",
            store_estimates=True,
        )
        result = sim.run(2)
        assert set(result.rounds[0].estimates) == set(range(len(small_values)))

    def test_group_relative_metrics_on_neighborhood(self):
        # Two disconnected cliques with very different values: the
        # group-relative error should be small once each clique converges,
        # even though the two groups have different true averages.
        adjacency = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}, 3: {4, 5}, 4: {3, 5}, 5: {3, 4}}
        values = [10.0, 10.0, 10.0, 90.0, 90.0, 90.0]
        sim = Simulation(
            PushSum(),
            NeighborhoodEnvironment(adjacency),
            values,
            seed=3,
            mode="exchange",
            group_relative=True,
        )
        result = sim.run(20)
        assert result.final_error() < 1.0
        assert result.rounds[-1].group_sizes == pytest.approx(3.0)

    def test_sketch_count_never_decreases_after_failure(self):
        n = 60
        events = [FailureEvent(round=10, model=UncorrelatedFailure(0.5))]
        sim = Simulation(
            SketchCount(bins=8, bits=16),
            UniformEnvironment(n),
            [1.0] * n,
            seed=5,
            mode="exchange",
            events=events,
        )
        result = sim.run(20)
        before = result.rounds[9].mean_estimate
        after = result.rounds[-1].mean_estimate
        assert after >= before - 1e-9  # static sketches cannot forget

    def test_count_sketch_reset_recovers_after_failure(self):
        n = 60
        events = [FailureEvent(round=12, model=UncorrelatedFailure(0.5))]
        sim = Simulation(
            CountSketchReset(bins=8, bits=16),
            UniformEnvironment(n),
            [1.0] * n,
            seed=5,
            mode="exchange",
            events=events,
        )
        result = sim.run(35)
        before = result.rounds[11].mean_estimate
        after = result.rounds[-1].mean_estimate
        # the estimate must shrink substantially towards the surviving half
        assert after < before * 0.75


class TestSimulationResult:
    def _result_with_errors(self, errors):
        result = SimulationResult(protocol_name="x", aggregate="average", seed=0)
        for index, error in enumerate(errors):
            result.append(
                RoundRecord(
                    round_index=index,
                    truth=10.0,
                    n_alive=5,
                    mean_estimate=10.0,
                    stddev_error=error,
                    max_abs_error=error,
                    mean_abs_error=error,
                )
            )
        return result

    def test_series_accessors(self):
        result = self._result_with_errors([3.0, 2.0, 1.0])
        assert result.errors() == [3.0, 2.0, 1.0]
        assert result.round_indices() == [0, 1, 2]
        assert result.truths() == [10.0, 10.0, 10.0]
        assert result.final_error() == 1.0

    def test_convergence_round(self):
        result = self._result_with_errors([5.0, 3.0, 0.5, 0.4, 0.6, 0.3])
        assert result.convergence_round(1.0) == 2
        assert result.convergence_round(1.0, sustained=2) == 2
        assert result.convergence_round(0.45, sustained=2) is None

    def test_convergence_round_relative(self):
        result = self._result_with_errors([5.0, 0.9, 0.9])
        assert result.convergence_round(0.1, relative=True) == 1

    def test_plateau_error(self):
        result = self._result_with_errors([9.0, 1.0, 1.0, 1.0])
        assert result.plateau_error(tail=3) == pytest.approx(1.0)

    def test_error_at_missing_round_raises(self):
        result = self._result_with_errors([1.0])
        with pytest.raises(KeyError):
            result.error_at(10)

    def test_empty_result_raises(self):
        result = SimulationResult(protocol_name="x", aggregate="average", seed=0)
        with pytest.raises(ValueError):
            result.final_record()

    def test_stddev_from_truth(self):
        assert SimulationResult.stddev_from_truth([3.0, 5.0], 4.0) == pytest.approx(1.0)
        assert math.isnan(SimulationResult.stddev_from_truth([], 4.0))

    def test_as_dict_round_trip_fields(self):
        result = self._result_with_errors([1.0, 2.0])
        payload = result.as_dict()
        assert payload["protocol"] == "x"
        assert len(payload["rounds"]) == 2
        assert payload["rounds"][1]["stddev_error"] == 2.0
