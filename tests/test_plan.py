"""Tests for the execution-plan capability layer (repro.api.plan)."""

from types import SimpleNamespace

import pytest

from repro.api import ScenarioSpec, run_scenario
from repro.api.backends import BACKENDS, VectorizedBackend
from repro.api.plan import (
    ExecutionPlan,
    PlanRejectionError,
    Rejection,
    capability_matrix,
    resolve_plan,
    vectorized_rejections,
)


def make_spec(**overrides):
    base = dict(protocol="push-sum-revert", n_hosts=32, rounds=4)
    base.update(overrides)
    return ScenarioSpec(**base)


# ---------------------------------------------------------------------------
# resolve_plan
# ---------------------------------------------------------------------------
class TestResolvePlan:
    def test_clean_spec_resolves_vectorized(self):
        plan = resolve_plan(make_spec())
        assert (plan.engine, plan.backend) == ("rounds", "vectorized")
        assert plan.rejections == ()
        assert plan.reasons == []
        assert plan.runnable
        assert plan.nearest_runnable() is plan

    def test_rejected_auto_spec_falls_back_to_agent(self):
        plan = resolve_plan(make_spec(protocol="invert-average"))
        assert (plan.engine, plan.backend) == ("rounds", "agent")
        assert plan.rejections and plan.runnable

    def test_events_engine_is_carried_through(self):
        plan = resolve_plan(make_spec(engine="events"))
        assert (plan.engine, plan.backend) == ("events", "vectorized")
        agent_plan = resolve_plan(make_spec(engine="events", protocol="push-sum"))
        assert (agent_plan.engine, agent_plan.backend) == ("events", "agent")

    def test_explicit_backends_are_kept_as_requested(self):
        assert resolve_plan(make_spec(backend="agent")).backend == "agent"
        assert resolve_plan(make_spec(backend="vectorized")).backend == "vectorized"

    def test_resolve_plan_never_raises_for_auto(self):
        # Every rejection-carrying auto spec still resolves (to the agent
        # engine) instead of raising.
        for overrides in (
            {"protocol": "invert-average"},
            {"group_relative": True},
            {"network": "latency", "mode": "push"},
            {"engine": "events", "protocol": "extrema-gossip", "mode": "exchange"},
        ):
            plan = resolve_plan(make_spec(**overrides))
            assert plan.backend == "agent" and plan.runnable

    def test_unrunnable_plan_and_nearest(self):
        rejection = Rejection("mode", "push", "not in this mode")
        plan = ExecutionPlan("rounds", "vectorized", (rejection,))
        assert not plan.runnable
        nearest = plan.nearest_runnable()
        assert nearest == ExecutionPlan("rounds", "agent", (rejection,))
        assert nearest.runnable

    def test_run_scenario_dispatches_through_the_plan(self):
        spec = make_spec(rounds=3)
        result = run_scenario(spec)
        assert result.metadata["backend"] == resolve_plan(spec).backend == "vectorized"


# ---------------------------------------------------------------------------
# Rejection paths: round engine
# ---------------------------------------------------------------------------
ROUNDS_REJECTIONS = [
    pytest.param(
        dict(protocol="push-sum-revert-full-transfer", environment="ring", mode="push"),
        "environment", "uniform gossip", id="full-transfer-on-topology",
    ),
    pytest.param(
        dict(environment="trace", environment_params={"dataset": 1, "broadcast": True},
             n_hosts=9),
        "environment", "broadcast trace", id="broadcast-trace",
    ),
    pytest.param(
        dict(group_relative=True),
        "accounting", "environment that defines groups", id="group-relative-uniform",
    ),
    pytest.param(
        dict(protocol="invert-average"),
        "protocol", "no vectorised kernel", id="no-kernel",
    ),
    pytest.param(
        dict(protocol="extrema-gossip", mode="push"),
        "mode", "only vectorised in mode", id="unsupported-mode",
    ),
    pytest.param(
        dict(protocol_params={"weight_epsilon": 1e-9}),
        "protocol", "weight_epsilon", id="unknown-kernel-parameter",
    ),
    pytest.param(
        dict(network="latency", mode="push",
             network_params={"distribution": "fixed", "delay": 1}),
        "network", "'perfect' and 'bernoulli-loss' only", id="latency-network",
    ),
    pytest.param(
        dict(protocol="sketch-count", workload="constant",
             network="bernoulli-loss", network_params={"p": 0.1}),
        "network", "only vectorised for", id="loss-on-counting-kernel",
    ),
    pytest.param(
        dict(events=({"event": "failure", "round": 2, "model": "bernoulli", "p": 0.1},)),
        "events", "failure model 'bernoulli'", id="bernoulli-failure",
    ),
    pytest.param(
        dict(protocol="count-sketch-reset", protocol_params={"bins": 8, "bits": 12},
             workload="constant",
             events=({"event": "value-change", "round": 2, "values": {"0": 2.0}},)),
        "events", "value-change", id="value-change-on-counting-kernel",
    ),
    pytest.param(
        dict(environment="ring", events=({"event": "join", "round": 2, "count": 4},)),
        "events", "only vectorised under uniform gossip", id="join-on-topology",
    ),
    pytest.param(
        dict(environment="ring",
             events=({"event": "churn", "start": 1, "stop": 3,
                      "model": "uncorrelated", "fraction": 0.01,
                      "arrivals_per_round": 2},)),
        "events", "churn with arrivals", id="churn-arrivals-on-topology",
    ),
    pytest.param(
        dict(events=({"event": "churn", "start": 1, "stop": 3,
                      "model": "bernoulli", "p": 0.1},)),
        "events", "churn failure model 'bernoulli'", id="churn-bernoulli",
    ),
]


class TestRoundEngineRejections:
    @pytest.mark.parametrize("overrides, axis, needle", ROUNDS_REJECTIONS)
    def test_rejection_axis_and_reason(self, overrides, axis, needle):
        spec = make_spec(**overrides)
        rejections = vectorized_rejections(spec)
        assert rejections, overrides
        hits = [r for r in rejections if r.axis == axis and needle in r.reason]
        assert hits, [f"{r.axis}: {r.reason}" for r in rejections]
        assert resolve_plan(spec).backend == "agent"

    @pytest.mark.parametrize("overrides, axis, needle", ROUNDS_REJECTIONS)
    def test_explicit_vectorized_request_raises_structured(self, overrides, axis, needle):
        with pytest.raises(PlanRejectionError) as excinfo:
            make_spec(backend="vectorized", **overrides)
        error = excinfo.value
        assert isinstance(error, ValueError)  # legacy except-clauses keep working
        assert error.rejections
        assert needle in str(error)
        assert error.nearest is not None and error.nearest.backend == "agent"

    def test_all_rejections_are_collected_not_just_the_first(self):
        spec = make_spec(
            protocol="push-sum-revert-full-transfer", environment="ring", mode="push",
            events=({"event": "join", "round": 2, "count": 4},),
        )
        axes = [r.axis for r in vectorized_rejections(spec)]
        assert "environment" in axes and "events" in axes
        assert len(axes) >= 2

    def test_paths_unreachable_from_validated_specs(self):
        # Unknown environments and event kinds are rejected eagerly by
        # ScenarioSpec itself, but the capability layer must still answer
        # for duck-typed specs (it is consulted before spec validation in
        # some embedding scenarios).
        fake = SimpleNamespace(
            engine="rounds", protocol="push-sum-revert", protocol_params={},
            environment="mesh", environment_params={}, group_relative=False,
            network="perfect", mode="exchange",
            events=({"event": "reshuffle"},),
        )
        rejections = vectorized_rejections(fake)
        axes = {r.axis for r in rejections}
        assert "environment" in axes
        assert any(r.axis == "events" and "reshuffle" in r.reason for r in rejections)


# ---------------------------------------------------------------------------
# Rejection paths: event engine (the bucketed calendar)
# ---------------------------------------------------------------------------
EVENTS_REJECTIONS = [
    pytest.param(
        dict(protocol="sketch-count", workload="constant"),
        "protocol", "event calendar is only vectorised", id="protocol-not-psr",
    ),
    pytest.param(
        dict(environment="ring"),
        "environment", "uniform gossip only", id="topology-under-events",
    ),
    pytest.param(
        dict(group_relative=True),
        "accounting", "environment that defines groups", id="group-relative",
    ),
    pytest.param(
        dict(network="bandwidth-cap", network_params={"bytes_per_round": 64}),
        "network", "not vectorised under engine='events'", id="bandwidth-cap",
    ),
    pytest.param(
        dict(protocol_params={"reversion": 0.1, "adaptive": True}),
        "protocol", "indegree-adaptive", id="adaptive-reversion",
    ),
    pytest.param(
        dict(events=({"event": "failure", "round": 2, "model": "bernoulli", "p": 0.1},)),
        "events", "failure model 'bernoulli'", id="bernoulli-failure",
    ),
]


class TestEventEngineRejections:
    @pytest.mark.parametrize("overrides, axis, needle", EVENTS_REJECTIONS)
    def test_rejection_axis_and_reason(self, overrides, axis, needle):
        spec = make_spec(engine="events", **overrides)
        rejections = vectorized_rejections(spec)
        hits = [r for r in rejections if r.axis == axis and needle in r.reason]
        assert hits, [f"{r.axis}: {r.reason}" for r in rejections]
        assert resolve_plan(spec).backend == "agent"

    def test_supported_events_scenarios_have_no_rejections(self):
        for overrides in (
            {},
            {"network": "latency",
             "network_params": {"distribution": "uniform", "low": 0, "high": 2},
             "mode": "exchange"},
            {"network": "bernoulli-loss", "network_params": {"p": 0.2}},
            {"events": ({"event": "join", "round": 2, "count": 4},)},
            {"engine_params": {"rates": {"distribution": "lognormal"},
                               "synchronized": False}},
        ):
            spec = make_spec(engine="events", **overrides)
            assert vectorized_rejections(spec) == [], overrides


# ---------------------------------------------------------------------------
# The deprecated supports() shim
# ---------------------------------------------------------------------------
class TestSupportsShim:
    def test_supports_none_for_clean_specs(self):
        backend = BACKENDS.get("vectorized")
        assert isinstance(backend, VectorizedBackend)
        assert backend.supports(make_spec()) is None

    def test_supports_returns_the_first_rejection_reason(self):
        backend = BACKENDS.get("vectorized")
        spec = make_spec(protocol="invert-average")
        assert backend.supports(spec) == vectorized_rejections(spec)[0].reason


# ---------------------------------------------------------------------------
# capability_matrix
# ---------------------------------------------------------------------------
class TestCapabilityMatrix:
    def test_matrix_shape_and_registry_coverage(self):
        from repro.api import PROTOCOLS

        matrix = capability_matrix()
        assert matrix["engines"] == ("rounds", "events")
        assert matrix["backends"] == ("agent", "vectorized")
        assert [row["protocol"] for row in matrix["rows"]] == sorted(PROTOCOLS.keys())

    def test_push_sum_revert_is_vectorised_everywhere(self):
        matrix = capability_matrix()
        row = next(r for r in matrix["rows"] if r["protocol"] == "push-sum-revert")
        for engine in ("rounds", "events"):
            assert row["cells"][engine] == {"agent": "yes", "vectorized": "yes"}
        assert row["reasons"] == {}

    def test_agent_only_rows_carry_a_reason(self):
        matrix = capability_matrix()
        row = next(r for r in matrix["rows"] if r["protocol"] == "invert-average")
        assert row["cells"]["rounds"]["vectorized"] == "no"
        assert row["cells"]["rounds"]["agent"] == "yes"
        assert "no vectorised kernel" in row["reasons"]["rounds"]
        # Vectorised under rounds, but not yet on the bucketed calendar.
        sketch = next(r for r in matrix["rows"] if r["protocol"] == "sketch-count")
        assert sketch["cells"]["rounds"]["vectorized"] == "yes"
        assert sketch["cells"]["events"]["vectorized"] == "no"
        assert "event calendar" in sketch["reasons"]["events"]

    def test_kernel_and_notes_sections(self):
        matrix = capability_matrix()
        kernels = {entry["kernel"]: entry for entry in matrix["kernels"]}
        assert kernels["push-sum-revert"]["modes"] == "exchange/push"
        assert kernels["push-sum-revert-full-transfer"]["topology"] == "uniform-only"
        assert len(matrix["notes"]) == 4
