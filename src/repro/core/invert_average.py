"""Invert-Average: dynamic summation as size × average (paper Section IV-B).

Registering a host's integer value as that many sketch identifiers
(multiple-insertion summation) scales poorly: the sketch has to be large
enough for the *sum*, and its full width travels in every message.
Invert-Average instead runs two cheap protocols side by side —
Count-Sketch-Reset to estimate the number of live hosts and
Push-Sum-Revert to estimate their average value — and multiplies the two
estimates.  Errors multiply too, but Push-Sum-Revert's state is two floats
versus the sketch's hundreds of counters, and one sketch instance can be
amortised across any number of simultaneous sum queries (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.push_sum import MassState
from repro.core.count_sketch_reset import CountSketchReset, CountSketchResetState
from repro.core.cutoff import default_cutoff
from repro.core.push_sum_revert import PushSumRevert
from repro.simulator.protocol import ExchangeProtocol

__all__ = ["InvertAverage", "InvertAverageState"]


@dataclass
class InvertAverageState:
    """Per-host state: the two sub-protocol states, side by side."""

    count_state: CountSketchResetState
    average_state: MassState


class InvertAverage(ExchangeProtocol):
    """Network-wide sum as (estimated size) × (estimated average).

    Parameters
    ----------
    reversion:
        Reversion constant λ for the averaging half.
    bins, bits, cutoff, identifiers_per_host:
        Parameters of the Count-Sketch-Reset half (see
        :class:`repro.core.CountSketchReset`).
    adaptive:
        Indegree-adaptive reversion for the averaging half.
    """

    name = "invert-average"
    aggregate = "sum"
    fanout = 1

    def __init__(
        self,
        reversion: float = 0.01,
        *,
        bins: int = 64,
        bits: int = 24,
        cutoff: Callable[[int], float] = default_cutoff,
        identifiers_per_host: int = 1,
        adaptive: bool = False,
    ):
        self.counter = CountSketchReset(
            bins,
            bits,
            cutoff=cutoff,
            identifiers_per_host=identifiers_per_host,
        )
        self.averager = PushSumRevert(reversion, adaptive=adaptive)

    # ------------------------------------------------------------------ state
    def create_state(
        self, host_id: int, value: float, rng: np.random.Generator
    ) -> InvertAverageState:
        return InvertAverageState(
            count_state=self.counter.create_state(host_id, value, rng),
            average_state=self.averager.create_state(host_id, value, rng),
        )

    def rebase(self, state: InvertAverageState, value: float) -> None:
        self.averager.rebase(state.average_state, value)

    # ------------------------------------------------------------- round hooks
    def begin_round(
        self, state: InvertAverageState, round_index: int, rng: np.random.Generator
    ) -> None:
        self.counter.begin_round(state.count_state, round_index, rng)
        self.averager.begin_round(state.average_state, round_index, rng)

    def make_payloads(
        self,
        state: InvertAverageState,
        peers: Sequence[int],
        rng: np.random.Generator,
    ) -> List[Tuple[Optional[int], Any]]:
        count_payloads = dict(self._keyed(self.counter.make_payloads(state.count_state, peers, rng)))
        average_payloads = dict(self._keyed(self.averager.make_payloads(state.average_state, peers, rng)))
        destinations = set(count_payloads) | set(average_payloads)
        return [
            (destination, (count_payloads.get(destination), average_payloads.get(destination)))
            for destination in destinations
        ]

    @staticmethod
    def _keyed(payloads: Sequence[Tuple[Optional[int], Any]]):
        for destination, payload in payloads:
            yield destination, payload

    def integrate(
        self,
        state: InvertAverageState,
        payloads: Sequence[Any],
        rng: np.random.Generator,
    ) -> None:
        count_parts = [count for count, _ in payloads if count is not None]
        average_parts = [average for _, average in payloads if average is not None]
        if count_parts:
            self.counter.integrate(state.count_state, count_parts, rng)
        # The averaging half must integrate even an empty list: receiving no
        # mass is meaningful for Push-Sum.
        self.averager.integrate(state.average_state, average_parts, rng)

    def finalize_round(
        self, state: InvertAverageState, received_count: int, rng: np.random.Generator
    ) -> None:
        self.counter.finalize_round(state.count_state, received_count, rng)
        self.averager.finalize_round(state.average_state, received_count, rng)

    # --------------------------------------------------------- exchange hooks
    def exchange(
        self,
        state_a: InvertAverageState,
        state_b: InvertAverageState,
        rng: np.random.Generator,
    ) -> None:
        self.counter.exchange(state_a.count_state, state_b.count_state, rng)
        self.averager.exchange(state_a.average_state, state_b.average_state, rng)

    def exchange_size(self, state_a: InvertAverageState, state_b: InvertAverageState) -> int:
        return self.counter.exchange_size(
            state_a.count_state, state_b.count_state
        ) + self.averager.exchange_size(state_a.average_state, state_b.average_state)

    # -------------------------------------------------------------- estimates
    def estimate(self, state: InvertAverageState) -> float:
        size = self.counter.estimate(state.count_state)
        average = self.averager.estimate(state.average_state)
        return size * average

    def size_estimate(self, state: InvertAverageState) -> float:
        """The Count-Sketch-Reset half's network-size estimate."""
        return self.counter.estimate(state.count_state)

    def average_estimate(self, state: InvertAverageState) -> float:
        """The Push-Sum-Revert half's average estimate."""
        return self.averager.estimate(state.average_state)

    # ---------------------------------------------------------- sign-off hook
    def sign_off(
        self,
        state: InvertAverageState,
        peer_state: Optional[InvertAverageState],
        rng: np.random.Generator,
    ) -> None:
        """Graceful departure: sign off both halves."""
        self.counter.sign_off(
            state.count_state, peer_state.count_state if peer_state else None, rng
        )
        self.averager.sign_off(
            state.average_state, peer_state.average_state if peer_state else None, rng
        )

    def payload_size(self, payload: Any) -> int:
        count_payload, average_payload = payload
        size = 0
        if count_payload is not None:
            size += self.counter.payload_size(count_payload)
        if average_payload is not None:
            size += self.averager.payload_size(average_payload)
        return size

    def describe(self) -> dict:
        return {
            "name": self.name,
            "aggregate": self.aggregate,
            "counter": self.counter.describe(),
            "averager": self.averager.describe(),
        }
