"""Count-Sketch-Reset: dynamic distributed counting (paper Section IV).

Static sketch counting cannot forget: once a bit is set, it stays set, so
a host that silently departs remains counted forever.  Count-Sketch-Reset
replaces each bit with a *freshness counter*:

* each host deterministically selects (bin, bit) positions exactly as in a
  Flajolet–Martin sketch and pins their counters at 0 (it "sources" them);
* every round all other counters are incremented, and gossip merges take
  the element-wise minimum;
* a position is treated as set only while its counter is at most a cutoff
  ``f(k) = 7 + k/4`` — a bound on how stale a still-sourced position can
  get that is independent of the network size (it depends only on the bit's
  sourcing probability 2^-(k+1)).

When the last host sourcing a position departs, its counter starts ageing
and crosses the cutoff within a bounded number of rounds, at which point
the position — and the departed host's contribution to the estimate —
decays out of the sketch.  The estimate itself is computed exactly as in
Sketch-Count from the derived bit image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cutoff import default_cutoff
from repro.simulator.protocol import ExchangeProtocol
from repro.sketches.counter_matrix import CounterMatrix

__all__ = ["CountSketchReset", "CountSketchResetState"]


@dataclass
class CountSketchResetState:
    """Per-host state: the freshness-counter matrix."""

    matrix: CounterMatrix
    own_identifiers: int


class CountSketchReset(ExchangeProtocol):
    """Dynamic counting/summation with freshness-counter sketches (Figure 5).

    Parameters
    ----------
    bins:
        Stochastic-averaging bins ``m`` (the paper's experiments use 64,
        giving an expected error of ≈9.7 %).
    bits:
        Bit positions per bin ``L``.
    cutoff:
        The freshness cutoff ``f(k)``; defaults to the paper's ``7 + k/4``.
        Pass :func:`repro.core.cutoff.no_decay_cutoff` to disable decay
        (recovering static Sketch-Count behaviour) or
        :func:`repro.core.cutoff.scaled_cutoff` for slower decay.
    value_as_identifiers:
        When true, each host registers ``round(value)`` identifiers and the
        protocol estimates the network-wide **sum** (multiple-insertion
        summation).  When false it registers ``identifiers_per_host``
        identifiers per host and estimates the network **size**.
    identifiers_per_host:
        Identifier multiplier for counting mode.  Fig 11 registers 100
        identifiers per device so that tiny populations land in the sketch's
        accurate range; the estimate is divided by this factor.
    """

    name = "count-sketch-reset"
    aggregate = "count"
    fanout = 1

    def __init__(
        self,
        bins: int = 64,
        bits: int = 24,
        *,
        cutoff: Callable[[int], float] = default_cutoff,
        value_as_identifiers: bool = False,
        identifiers_per_host: int = 1,
    ):
        if identifiers_per_host < 1:
            raise ValueError("identifiers_per_host must be >= 1")
        self.bins = int(bins)
        self.bits = int(bits)
        self.cutoff = cutoff
        self.value_as_identifiers = bool(value_as_identifiers)
        self.identifiers_per_host = int(identifiers_per_host)
        if self.value_as_identifiers:
            self.aggregate = "sum"

    # ------------------------------------------------------------------ state
    def _identifier_count(self, value: float) -> int:
        if self.value_as_identifiers:
            count = int(round(value))
            if count < 0:
                raise ValueError("sketch summation requires non-negative values")
            return count
        return self.identifiers_per_host

    def create_state(
        self, host_id: int, value: float, rng: np.random.Generator
    ) -> CountSketchResetState:
        count = self._identifier_count(value)
        identifiers = [(host_id, j) for j in range(count)]
        matrix = CounterMatrix.for_identifiers(identifiers, self.bins, self.bits)
        return CountSketchResetState(matrix=matrix, own_identifiers=count)

    # ------------------------------------------------------------- round hooks
    def begin_round(
        self, state: CountSketchResetState, round_index: int, rng: np.random.Generator
    ) -> None:
        state.matrix.increment()

    def make_payloads(
        self,
        state: CountSketchResetState,
        peers: Sequence[int],
        rng: np.random.Generator,
    ) -> List[Tuple[Optional[int], Any]]:
        if not peers:
            return []
        payload = state.matrix.payload()
        return [(peer, payload) for peer in peers]

    def integrate(
        self,
        state: CountSketchResetState,
        payloads: Sequence[Any],
        rng: np.random.Generator,
    ) -> None:
        for counters in payloads:
            state.matrix.merge_min_array(counters)

    # --------------------------------------------------------- exchange hooks
    def exchange(
        self,
        state_a: CountSketchResetState,
        state_b: CountSketchResetState,
        rng: np.random.Generator,
    ) -> None:
        # Both directions: the contacted peer "can also respond by sending its
        # own array", which the paper recommends to accelerate convergence and
        # thereby lower the achievable cutoff.
        merged = np.minimum(state_a.matrix.counters, state_b.matrix.counters)
        state_a.matrix.merge_min_array(merged)
        state_b.matrix.merge_min_array(merged)

    def exchange_size(
        self, state_a: CountSketchResetState, state_b: CountSketchResetState
    ) -> int:
        return state_a.matrix.size_bytes()

    # -------------------------------------------------------------- estimates
    def estimate(self, state: CountSketchResetState) -> float:
        divisor = 1 if self.value_as_identifiers else self.identifiers_per_host
        return state.matrix.estimate(self.cutoff, identifiers_per_host=divisor)

    def payload_size(self, payload: Any) -> int:
        # Two bytes per counter models a practical wire encoding (counters are
        # bounded by cutoff + convergence time).
        return int(payload.size * 2)

    # ---------------------------------------------------------- sign-off hook
    def sign_off(
        self,
        state: CountSketchResetState,
        peer_state: Optional[CountSketchResetState],
        rng: np.random.Generator,
    ) -> None:
        """Graceful departure: stop sourcing the host's positions.

        The positions begin ageing at once; whether they actually leave the
        derived bit image depends on whether any other live host sources
        them, which the departing host cannot determine (Section IV).
        """
        state.matrix.disown_all()

    def describe(self) -> dict:
        cutoff_name = getattr(self.cutoff, "__name__", repr(self.cutoff))
        return {
            "name": self.name,
            "aggregate": self.aggregate,
            "bins": self.bins,
            "bits": self.bits,
            "cutoff": cutoff_name,
            "value_as_identifiers": self.value_as_identifiers,
            "identifiers_per_host": self.identifiers_per_host,
        }
