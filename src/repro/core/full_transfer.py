"""The Full-Transfer optimisation of Push-Sum-Revert (paper Section III-A).

Push-Sum-Revert's residual error comes from each host continually
re-injecting its *own* initial value: the host's estimate is biased towards
itself and its neighbourhood.  The Full-Transfer optimisation removes that
bias by making each host export its **entire** mass every round, split into
``N`` parcels sent to ``N`` independently chosen peers (paper Figure 4):

    send ⟨((1−λ)·w + λ)/N , ((1−λ)·v + λ·v₀)/N⟩  to each of N peers.

The host's next-round mass is purely imported, so successive estimates are
no longer correlated through the host's own value.  The price is variance —
a host may receive little or no mass in a given round — which is recovered
by estimating from the sum of the mass received over the last ``T`` rounds
during which any mass arrived.

With λ = 0.5 the paper reports convergence in under 10 rounds at a standard
deviation of ≈2.13 (8.5 % of the true average 25); with λ = 0.1 convergence
takes ≈35 rounds but the plateau drops to ≈0.69 (2.8 %).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.push_sum import MassState
from repro.core.push_sum_revert import PushSumRevert

__all__ = ["FullTransferPushSumRevert"]


class FullTransferPushSumRevert(PushSumRevert):
    """Push-Sum-Revert with the Full-Transfer optimisation.

    Parameters
    ----------
    reversion:
        The reversion constant λ.
    parcels:
        ``N``: number of peers the mass is split across each round (the
        paper's experiments use 4).
    history:
        ``T``: number of most recent mass-bearing rounds averaged into the
        estimate (the paper's experiments use 3).
    adaptive:
        Indegree-adaptive λ, as in :class:`PushSumRevert`.

    Notes
    -----
    Full-Transfer is a push-pattern protocol (a host addresses N distinct
    peers per round); run the engine with ``mode="push"``.
    """

    name = "push-sum-revert-full-transfer"
    #: Full-Transfer addresses N distinct peers per round; it has no pairwise
    #: exchange form, so the engine must run it in push mode.
    supports_exchange = False

    def __init__(
        self,
        reversion: float = 0.1,
        *,
        parcels: int = 4,
        history: int = 3,
        adaptive: bool = False,
        weight_epsilon: float = 1e-12,
    ):
        super().__init__(reversion, adaptive=adaptive, weight_epsilon=weight_epsilon)
        if parcels < 1:
            raise ValueError("parcels must be >= 1")
        if history < 1:
            raise ValueError("history must be >= 1")
        self.parcels = int(parcels)
        self.history = int(history)
        self.fanout = int(parcels)

    # ------------------------------------------------------------- push hooks
    def make_payloads(
        self,
        state: MassState,
        peers: Sequence[int],
        rng: np.random.Generator,
    ) -> List[Tuple[Optional[int], Any]]:
        lam = self.reversion
        outgoing_weight = (1.0 - lam) * state.weight + lam * 1.0
        outgoing_total = (1.0 - lam) * state.total + lam * state.initial_value
        if not peers:
            # Nobody in range: the host keeps its (reverted) mass itself.
            return [(None, (outgoing_weight, outgoing_total))]
        share = float(len(peers))
        parcel = (outgoing_weight / share, outgoing_total / share)
        return [(peer, parcel) for peer in peers]

    def integrate(
        self, state: MassState, payloads: Sequence[Any], rng: np.random.Generator
    ) -> None:
        if not payloads:
            # All mass was exported and nothing arrived this round.
            state.weight = 0.0
            state.total = 0.0
            return
        state.weight = float(sum(weight for weight, _ in payloads))
        state.total = float(sum(total for _, total in payloads))

    def finalize_round(
        self, state: MassState, received_count: int, rng: np.random.Generator
    ) -> None:
        # Reversion was already applied on the outgoing parcels (Figure 4
        # folds it into the message), so no additional revert here.  Record
        # the round's imported mass for the windowed estimator, skipping
        # rounds in which no mass arrived (as the paper prescribes).
        if state.weight > self.weight_epsilon:
            state.history.append((state.weight, state.total))
            if len(state.history) > self.history:
                del state.history[: len(state.history) - self.history]
        self._refresh_estimate(state)

    # -------------------------------------------------------------- estimates
    def estimate(self, state: MassState) -> float:
        if state.history:
            weight_sum = sum(weight for weight, _ in state.history)
            total_sum = sum(total for _, total in state.history)
            if weight_sum > self.weight_epsilon:
                return total_sum / weight_sum
        return super().estimate(state)

    # ------------------------------------------------------------- exchange
    def exchange(self, state_a: MassState, state_b: MassState, rng: np.random.Generator) -> None:
        raise NotImplementedError(
            "Full-Transfer is a push-pattern optimisation; run the engine with mode='push'"
        )

    def describe(self) -> dict:
        description = super().describe()
        description.update({"parcels": self.parcels, "history": self.history})
        return description
