"""The paper's contribution: dynamic distributed aggregation protocols.

Static gossip aggregation (Push-Sum, Sketch-Count) assumes a fixed
participant set; a host that silently departs leaves its contribution
stuck in the computation forever.  The protocols in this package trade a
small, bounded local error for the ability to *forget*:

* :class:`PushSumRevert` — Push-Sum plus a per-round reversion of each
  host's mass towards its initial value (Section III); the reversion
  constant λ trades reconvergence speed against plateau error.
* :class:`FullTransferPushSumRevert` — the Full-Transfer optimisation
  (Section III-A): hosts export their entire mass in ``N`` parcels and
  estimate from the last ``T`` mass-bearing rounds, removing the
  self-value bias and cutting the plateau error further.
* :class:`CountSketchReset` — FM counting sketches whose bits are replaced
  by freshness counters with a size-agnostic cutoff ``f(k) = 7 + k/4``
  (Section IV), so contributions of departed hosts age out.
* :class:`InvertAverage` — network sum as (Count-Sketch-Reset size) ×
  (Push-Sum-Revert average), far cheaper than multiple-insertion
  summation (Section IV-B).
"""

from repro.core.count_sketch_reset import CountSketchReset, CountSketchResetState
from repro.core.cutoff import default_cutoff, linear_cutoff, no_decay_cutoff, scaled_cutoff
from repro.core.departure import GracefulDepartureEvent
from repro.core.full_transfer import FullTransferPushSumRevert
from repro.core.invert_average import InvertAverage, InvertAverageState
from repro.core.push_sum_revert import PushSumRevert

__all__ = [
    "CountSketchReset",
    "CountSketchResetState",
    "FullTransferPushSumRevert",
    "GracefulDepartureEvent",
    "InvertAverage",
    "InvertAverageState",
    "PushSumRevert",
    "default_cutoff",
    "linear_cutoff",
    "no_decay_cutoff",
    "scaled_cutoff",
]
