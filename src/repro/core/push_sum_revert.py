"""Push-Sum-Revert: dynamic distributed averaging (paper Section III).

Push-Sum-Revert composes classic Push-Sum with a *revert* step: after each
round the host nudges its mass back towards its initial value,

    w ← λ·1  + (1−λ)·Σ ŵ          v ← λ·v₀ + (1−λ)·Σ v̂,

where the sums are over the mass received during the round and λ is the
systemwide reversion constant.  While the node set is static the revert
step conserves total mass, so the protocol still converges near the true
average; when hosts silently depart, the continual re-injection of every
surviving host's initial value gradually flushes the departed hosts' mass
out of the system and the estimate re-converges to the average of the
survivors.  λ = 0 is exactly Push-Sum (never recovers from correlated
departures); larger λ recovers faster but plateaus at a larger residual
error — the trade-off swept in Figure 10.

Two optimisations from Section III-A are available here:

* push/pull exchange (run the engine with ``mode="exchange"``), which
  roughly halves convergence time;
* adaptive reversion (``adaptive=True``): instead of a fixed λ per round, a
  host applies λ/2 for every message it receives (including its own
  self-message), so well-connected hosts — which receive more counteracting
  mass — revert harder, halving reconvergence time under uniform values.

The Full-Transfer optimisation is a separate class
(:class:`repro.core.full_transfer.FullTransferPushSumRevert`) because it
changes the message pattern and the estimator, not just the revert step.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.push_sum import MassState, PushSum

__all__ = ["PushSumRevert"]


class PushSumRevert(PushSum):
    """Dynamic averaging via reversion towards each host's initial value.

    Parameters
    ----------
    reversion:
        The reversion constant λ ∈ [0, 1].  0 degenerates to static
        Push-Sum; the paper sweeps {0, 0.001, 0.01, 0.1, 0.5}.
    adaptive:
        Apply λ/2 per received message instead of a fixed λ per round
        (Section III-A's indegree-adaptive variant).
    weight_epsilon:
        Threshold below which a host is considered massless (it then reports
        its last well-defined estimate).
    """

    name = "push-sum-revert"
    aggregate = "average"

    def __init__(
        self,
        reversion: float = 0.01,
        *,
        adaptive: bool = False,
        weight_epsilon: float = 1e-12,
    ):
        super().__init__(weight_epsilon=weight_epsilon)
        if not 0.0 <= reversion <= 1.0:
            raise ValueError(f"reversion constant must be in [0, 1], got {reversion}")
        self.reversion = float(reversion)
        self.adaptive = bool(adaptive)

    # ----------------------------------------------------------------- revert
    def _effective_lambda(self, received_count: int) -> float:
        """The λ actually applied this round."""
        if not self.adaptive:
            return self.reversion
        # λ/2 per received message (the message a host sends to itself counts,
        # so a host with in-degree 1 applies exactly λ).
        return min(1.0, 0.5 * self.reversion * max(received_count, 0))

    def _revert(self, state: MassState, effective_lambda: float) -> None:
        lam = effective_lambda
        state.weight = lam * 1.0 + (1.0 - lam) * state.weight
        state.total = lam * state.initial_value + (1.0 - lam) * state.total

    def finalize_round(
        self, state: MassState, received_count: int, rng: np.random.Generator
    ) -> None:
        if self.reversion > 0.0:
            self._revert(state, self._effective_lambda(received_count))
        self._refresh_estimate(state)

    # ------------------------------------------------------------- exchange
    # Pairwise exchange is inherited from PushSum (mass averaging); the revert
    # step runs in finalize_round, once per host per round, matching the
    # composition "Push-Sum followed by Revert" used in the paper's analysis.

    def describe(self) -> dict:
        return {
            "name": self.name,
            "aggregate": self.aggregate,
            "fanout": self.fanout,
            "reversion": self.reversion,
            "adaptive": self.adaptive,
        }
