"""Freshness cutoff functions for Count-Sketch-Reset.

Section IV derives that, under uniform gossip, the freshness counter of a
bit still being sourced by at least one live host is bounded with high
probability by a function that is *linear in the bit index* and
independent of the network size:

    f(k) ≈ 7 + k/4

(the experimentally fitted bound shown in Figure 6).  A counter above the
cutoff means the bit has not been refreshed for longer than any live
source could explain, so the bit is treated as dead and the departed
host's contribution decays out of the sketch.

These helpers build the standard cutoff and the variants used by the
ablation experiments ("reversion off" = never decay, "reversion slow" =
a doubled cutoff).
"""

from __future__ import annotations

from typing import Callable

from repro.sketches.counter_matrix import INFINITY

__all__ = ["default_cutoff", "linear_cutoff", "scaled_cutoff", "no_decay_cutoff"]

#: The intercept of the paper's experimentally derived bound.
DEFAULT_INTERCEPT = 7.0
#: The slope of the paper's experimentally derived bound (1 extra round per
#: 4 bit indices).
DEFAULT_SLOPE = 0.25


def linear_cutoff(intercept: float, slope: float) -> Callable[[int], float]:
    """A cutoff of the form ``f(k) = intercept + slope·k``."""
    if intercept < 0 or slope < 0:
        raise ValueError("cutoff intercept and slope must be non-negative")

    def cutoff(bit_index: int) -> float:
        return intercept + slope * bit_index

    cutoff.intercept = intercept  # type: ignore[attr-defined]
    cutoff.slope = slope  # type: ignore[attr-defined]
    return cutoff


def default_cutoff(bit_index: int) -> float:
    """The paper's cutoff: ``f(k) = 7 + k/4``."""
    return DEFAULT_INTERCEPT + DEFAULT_SLOPE * bit_index


def scaled_cutoff(factor: float) -> Callable[[int], float]:
    """The default cutoff scaled by ``factor`` (the "reversion slow" variant)."""
    if factor <= 0:
        raise ValueError("factor must be positive")

    def cutoff(bit_index: int) -> float:
        return factor * default_cutoff(bit_index)

    cutoff.factor = factor  # type: ignore[attr-defined]
    return cutoff


def no_decay_cutoff(bit_index: int) -> float:
    """A cutoff that never expires anything — Count-Sketch-Reset degenerates
    to static Sketch-Count ("reversion off" / "propagation limiting off").

    The value sits just below the counter matrices' "never heard of"
    sentinel, so positions nobody ever sourced still read as unset.
    """
    return float(INFINITY - 1)
