"""Graceful departure (sign-off) support.

The paper's failure model is the *silent* departure: a host vanishes and
its contribution is stuck in the computation (that is the problem the
dynamic protocols solve).  Section II-C notes the alternative — "where it
is infeasible for the host to gracefully depart the network (i.e., by
performing a sign-off protocol), an error is introduced" — implying the
sign-off path as the graceful best case.  This module implements that
path, both to serve as the no-error baseline in failure experiments and
because a real deployment would use it whenever a device *does* get the
chance to say goodbye:

* a Push-Sum–family host hands its entire mass to a live peer before
  leaving, so conservation of mass is preserved exactly;
* a Count-Sketch-Reset host stops sourcing its positions (disowns them),
  so they begin ageing immediately and decay as soon as no other live host
  sources them — the fastest forgetting the sketch structure permits (the
  host cannot know whether another source exists, exactly as the paper
  observes);
* an Invert-Average host does both.

:class:`GracefulDepartureEvent` mirrors
:class:`repro.failures.FailureEvent` but performs the sign-off before
marking the hosts failed.  Protocols opt in by implementing a
``sign_off(state, peer_state, rng)`` method; hosts whose protocol lacks the
hook simply leave silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.push_sum import MassState
from repro.core.count_sketch_reset import CountSketchResetState
from repro.core.invert_average import InvertAverageState
from repro.failures.models import FailureModel

__all__ = [
    "GracefulDepartureEvent",
    "sign_off_mass",
    "sign_off_counters",
    "sign_off_invert_average",
]


def sign_off_mass(state: MassState, peer_state: MassState) -> None:
    """Hand the departing host's entire mass to a live peer.

    Total mass is conserved exactly, so even static Push-Sum keeps
    converging to the average *of the hosts that remain plus the departed
    host's value* — the departed value is only fully forgotten by the
    reverting variants.  The departing host is left massless.
    """
    peer_state.weight += state.weight
    peer_state.total += state.total
    state.weight = 0.0
    state.total = 0.0


def sign_off_counters(state: CountSketchResetState) -> None:
    """Stop sourcing every position the departing host owns.

    The positions start ageing immediately; they disappear from the derived
    bit image once their counters exceed the cutoff, unless another live
    host also sources them (which the departing host cannot know — the
    observation that motivates the cutoff design in Section IV).
    """
    state.matrix.disown_all()


def sign_off_invert_average(state: InvertAverageState, peer_state: InvertAverageState) -> None:
    """Sign off both halves of an Invert-Average host."""
    sign_off_mass(state.average_state, peer_state.average_state)
    sign_off_counters(state.count_state)


@dataclass
class GracefulDepartureEvent:
    """Depart the hosts selected by ``model`` after performing a sign-off.

    The sign-off target for mass hand-over is a uniformly random live host
    that is *not* departing in the same event (if every host departs, the
    mass has nowhere to go and is dropped, exactly as in reality).

    Parameters
    ----------
    round:
        Round at whose start the departure happens.
    model:
        Failure model choosing which hosts leave (reused from
        :mod:`repro.failures.models`).
    """

    round: int
    model: FailureModel
    seed_salt: str = "graceful-departure"

    def apply(self, simulation, round_index: int) -> None:
        rng = simulation.streams.get(f"{self.seed_salt}:{round_index}")
        alive_ids = simulation.alive_ids()
        values = {host_id: simulation.hosts[host_id].value for host_id in alive_ids}
        departing = self.model.select(alive_ids, values, rng)
        departing_set = set(departing)
        survivors = [host_id for host_id in alive_ids if host_id not in departing_set]
        for host_id in departing:
            self._sign_off(simulation, host_id, survivors, rng)
            simulation.fail_host(host_id, round_index)

    @staticmethod
    def _sign_off(simulation, host_id: int, survivors, rng: np.random.Generator) -> None:
        protocol = simulation.protocol
        state = simulation.hosts[host_id].state
        peer_state = None
        if survivors:
            peer_id = survivors[int(rng.integers(0, len(survivors)))]
            peer_state = simulation.hosts[peer_id].state
        sign_off = getattr(protocol, "sign_off", None)
        if sign_off is not None:
            sign_off(state, peer_state, rng)

    def describe(self) -> dict:
        return {"event": "graceful-departure", "round": self.round, **self.model.describe()}
