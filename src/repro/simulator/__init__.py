"""Round-based gossip simulation substrate.

The paper evaluates its protocols with a round-based (synchronous) gossip
simulator: at every round each participating host selects one (or more)
peers according to the *gossip environment* and performs the protocol's
exchange with them.  This package provides that substrate:

* :mod:`repro.simulator.rng` — deterministic, per-purpose random streams;
* :mod:`repro.simulator.message` — message and bandwidth accounting;
* :mod:`repro.simulator.host` — per-host bookkeeping (value, state, liveness);
* :mod:`repro.simulator.protocol` — the abstract protocol interface that both
  the static baselines and the paper's dynamic protocols implement;
* :mod:`repro.simulator.engine` — the :class:`Simulation` driver;
* :mod:`repro.simulator.result` — per-round records and summaries;
* :mod:`repro.simulator.vectorized` — NumPy kernels used for the large
  (10^4–10^5 host) experiments;
* :mod:`repro.simulator.sparse` — sparse-adjacency (CSR) peer sampling
  that lets the kernels run graph-restricted gossip (ring, grid,
  random-geometric, spatial-grid) instead of uniform gossip.
"""

from repro.simulator.engine import Simulation
from repro.simulator.host import Host
from repro.simulator.message import BandwidthMeter, Message
from repro.simulator.protocol import AggregationProtocol, ExchangeProtocol
from repro.simulator.result import RoundRecord, SimulationResult
from repro.simulator.rng import RandomStreams
from repro.simulator.sparse import CSRTopology, GridRingTopology

__all__ = [
    "AggregationProtocol",
    "BandwidthMeter",
    "CSRTopology",
    "ExchangeProtocol",
    "GridRingTopology",
    "Host",
    "Message",
    "RandomStreams",
    "RoundRecord",
    "Simulation",
    "SimulationResult",
]
