"""Deterministic random-number streams for reproducible simulations.

Gossip simulations consume randomness for several independent purposes:
initial value assignment, sketch identifier selection, per-round peer
selection, failure sampling, and mobility.  Drawing all of these from a
single stream makes results fragile — adding one extra draw in an
unrelated subsystem perturbs every later decision.  :class:`RandomStreams`
derives an independent :class:`numpy.random.Generator` per named purpose
from a single root seed, so each subsystem owns its own stream and
experiments remain bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np

__all__ = ["RandomStreams", "derive_seed", "spawn_generator"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a purpose ``name``.

    The derivation hashes the pair so that distinct names give statistically
    independent child seeds and the mapping is stable across platforms and
    Python versions (unlike the builtin ``hash``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_generator(root_seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``name`` under ``root_seed``."""
    return np.random.default_rng(derive_seed(root_seed, name))


class RandomStreams:
    """A collection of named, independently seeded random generators.

    Parameters
    ----------
    seed:
        The root seed.  ``None`` selects a nondeterministic seed (useful for
        exploratory runs; experiments always pass an explicit seed).

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("peer-selection").integers(0, 100)
    >>> b = RandomStreams(seed=7).get("peer-selection").integers(0, 100)
    >>> int(a) == int(b)
    True
    """

    def __init__(self, seed: Optional[int] = None):
        if seed is None:
            seed = int(np.random.SeedSequence().entropy % (2**63))
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this collection was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_generator(self._seed, name)
        return self._streams[name]

    def child(self, name: str) -> "RandomStreams":
        """Return a new :class:`RandomStreams` rooted at a derived seed.

        Useful when a subsystem (e.g. a mobility model) itself needs several
        named streams without risking collisions with the parent's names.
        """
        return RandomStreams(derive_seed(self._seed, name))

    def reset(self) -> None:
        """Forget all derived streams so they restart from their seeds."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
