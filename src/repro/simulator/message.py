"""Messages and bandwidth accounting.

The paper's motivation is bandwidth- and power-constrained wireless
devices, so the simulator accounts for every payload a protocol places on
the (simulated) radio.  A :class:`Message` couples a payload with its
source/destination and the round it was sent in; :class:`BandwidthMeter`
accumulates per-round and per-host traffic so experiments can compare the
communication cost of protocol variants (e.g. Invert-Average versus
multiple-insertion summation).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Message", "BandwidthMeter", "estimate_payload_size"]


def estimate_payload_size(payload: Any) -> int:
    """Best-effort estimate of a payload's size in bytes.

    Protocols may override this by implementing ``payload_size``; this
    fallback understands the payload shapes used by the built-in protocols:
    numbers (8 bytes), tuples/lists (sum of elements), dicts (sum of values),
    NumPy arrays (``nbytes``) and booleans (1 bit rounded up to a byte per 8).
    """
    import numpy as np

    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, np.ndarray):
        if payload.dtype == bool:
            return int(np.ceil(payload.size / 8))
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(estimate_payload_size(item) for item in payload)
    if isinstance(payload, dict):
        return sum(estimate_payload_size(value) for value in payload.values())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    # Dataclasses and small objects: count their public attributes.
    if hasattr(payload, "__dict__"):
        return sum(
            estimate_payload_size(value)
            for key, value in vars(payload).items()
            if not key.startswith("_")
        )
    return 8


@dataclass
class Message:
    """A single protocol payload in flight during one gossip round.

    Attributes
    ----------
    source:
        Identifier of the sending host.
    destination:
        Identifier of the receiving host.  A message whose destination equals
        its source models the "send to Self" step of Push-Sum and costs no
        bandwidth.
    payload:
        Protocol-defined content (mass tuple, counter matrix, ...).
    round_index:
        The round during which the message was emitted and delivered.
    """

    source: int
    destination: int
    payload: Any
    round_index: int

    @property
    def is_self_message(self) -> bool:
        """Whether this message never leaves the sending host."""
        return self.source == self.destination

    def size_bytes(self) -> int:
        """Size of the payload in bytes (0 for self-messages)."""
        if self.is_self_message:
            return 0
        return estimate_payload_size(self.payload)


@dataclass
class BandwidthMeter:
    """Accumulates simulated radio traffic.

    Traffic is recorded both per round (``bytes_per_round``,
    ``messages_per_round``) and per host (``bytes_per_host``), which is what
    the power argument in the paper's introduction cares about.
    Self-messages are free.
    """

    bytes_per_round: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    messages_per_round: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    bytes_per_host: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message, size: Optional[int] = None) -> None:
        """Record one message.  ``size`` overrides the payload estimate."""
        if message.is_self_message:
            return
        nbytes = message.size_bytes() if size is None else int(size)
        self.bytes_per_round[message.round_index] += nbytes
        self.messages_per_round[message.round_index] += 1
        self.bytes_per_host[message.source] += nbytes

    def record_exchange(self, round_index: int, host_a: int, host_b: int, size: int) -> None:
        """Record a pairwise push/pull exchange of ``size`` bytes each way."""
        self.bytes_per_round[round_index] += 2 * size
        self.messages_per_round[round_index] += 2
        self.bytes_per_host[host_a] += size
        self.bytes_per_host[host_b] += size

    def record_lost_exchange(self, round_index: int, initiator: int, size: int) -> None:
        """Record a push/pull attempt whose link dropped it.

        The initiator transmitted its half (those radio bytes — and the
        power they cost — are spent either way, exactly like a lost push
        payload); the reply never happened and costs nothing.
        """
        self.bytes_per_round[round_index] += size
        self.messages_per_round[round_index] += 1
        self.bytes_per_host[initiator] += size

    @property
    def total_bytes(self) -> int:
        """All bytes placed on the simulated network."""
        return sum(self.bytes_per_round.values())

    @property
    def total_messages(self) -> int:
        """All non-self messages sent."""
        return sum(self.messages_per_round.values())

    def bytes_in_round(self, round_index: int) -> int:
        """Bytes sent during ``round_index`` (0 if nothing was sent)."""
        return self.bytes_per_round.get(round_index, 0)

    def rounds(self) -> List[int]:
        """Rounds in which any traffic was recorded, in ascending order."""
        return sorted(self.bytes_per_round)

    def merge(self, other: "BandwidthMeter") -> None:
        """Fold another meter's counters into this one (used by Invert-Average)."""
        for round_index, nbytes in other.bytes_per_round.items():
            self.bytes_per_round[round_index] += nbytes
        for round_index, count in other.messages_per_round.items():
            self.messages_per_round[round_index] += count
        for host, nbytes in other.bytes_per_host.items():
            self.bytes_per_host[host] += nbytes
