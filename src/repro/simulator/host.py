"""Per-host bookkeeping used by the agent-based simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Host"]


@dataclass
class Host:
    """A participating device.

    A host couples the device's *local value* (the datum being aggregated:
    a song rating, a sensor reading, the constant 1 for counting) with the
    protocol-specific state the aggregation protocol maintains on it, and
    with liveness bookkeeping used by the failure models.

    Attributes
    ----------
    host_id:
        Stable integer identifier.  Identifiers are never reused, so a host
        that leaves and a host that joins later are distinct.
    value:
        The host's local contribution to the aggregate.
    state:
        Opaque protocol state created by
        :meth:`repro.simulator.protocol.AggregationProtocol.create_state`.
    alive:
        Whether the host currently participates.  Dead hosts neither send nor
        receive; their state is retained only for post-mortem inspection.
    joined_round / failed_round:
        Rounds at which the host entered / silently left the computation
        (``None`` when not applicable).
    """

    host_id: int
    value: float
    state: Any = None
    alive: bool = True
    joined_round: int = 0
    failed_round: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def fail(self, round_index: int) -> None:
        """Silently remove the host from the computation at ``round_index``."""
        if self.alive:
            self.alive = False
            self.failed_round = round_index

    def revive(self, round_index: int) -> None:
        """Bring a previously failed host back (used by churn models)."""
        if not self.alive:
            self.alive = True
            self.failed_round = None
            self.joined_round = round_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else f"failed@{self.failed_round}"
        return f"Host(id={self.host_id}, value={self.value:.3g}, {status})"
