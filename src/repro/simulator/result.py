"""Per-round records and end-of-run summaries produced by the engine."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["RoundRecord", "SimulationResult"]


@dataclass
class RoundRecord:
    """Everything the engine measured at the end of one gossip round.

    Attributes
    ----------
    round_index:
        Zero-based round number.
    truth:
        The correct value of the aggregate over the hosts alive at the end of
        the round (for group-relative runs this is the *population-weighted*
        mean of the per-group truths and is reported for reference only —
        ``stddev_error`` is always computed against each host's own truth).
    n_alive:
        Number of live hosts.
    mean_estimate:
        Mean of the live hosts' estimates.
    stddev_error:
        The paper's error metric: the root-mean-square deviation of the live
        hosts' estimates from the correct value ("standard deviation from the
        correct value").
    max_abs_error / mean_abs_error:
        Additional error summaries used by some analyses.
    bytes_sent:
        Radio bytes placed on the network during the round.
    messages_delivered / messages_lost / messages_in_flight:
        Delivery outcomes on the simulated network during the round
        (``repro.network``): non-self messages delivered, messages lost
        (link loss, over-budget drops, sends to departed hosts) and the
        in-flight backlog at the end of the round.  All zero for runs
        without a network model (the perfect-delivery fast path).
    estimates:
        Per-host estimates, retained only when the engine was created with
        ``store_estimates=True`` (small runs / debugging).
    group_sizes:
        Mean group size when the run is group-relative (trace environments),
        otherwise ``None``.  This is the "Avg Group Size" series of Fig 11.
    time:
        Simulated time (seconds) at which the record was sampled.  Set by
        the event engine (:mod:`repro.events`), where "round" *r* is the
        sample taken at ``(r + 1) * sample_interval``; ``None`` for the
        round engine, whose rounds have no wall-clock meaning.
    """

    round_index: int
    truth: float
    n_alive: int
    mean_estimate: float
    stddev_error: float
    max_abs_error: float
    mean_abs_error: float
    bytes_sent: int = 0
    estimates: Optional[Dict[int, float]] = None
    group_sizes: Optional[float] = None
    messages_delivered: int = 0
    messages_lost: int = 0
    messages_in_flight: int = 0
    time: Optional[float] = None


@dataclass
class SimulationResult:
    """The full trajectory of one simulation run.

    The result is a thin, list-backed container designed to be cheap to
    produce inside benchmark loops while still convenient to analyse: all the
    per-round series are exposed as plain lists (``errors()``, ``truths()``,
    ...), and a couple of summary helpers answer the questions the paper's
    figures ask (convergence round, plateau error).
    """

    protocol_name: str
    aggregate: str
    seed: int
    rounds: List[RoundRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------- recording
    def append(self, record: RoundRecord) -> None:
        """Append one round's record (used by the engine)."""
        self.rounds.append(record)

    # ---------------------------------------------------------------- series
    def round_indices(self) -> List[int]:
        """Round numbers in order."""
        return [record.round_index for record in self.rounds]

    def times(self) -> List[Optional[float]]:
        """Per-record simulated sample times (``None`` entries for round-engine runs)."""
        return [record.time for record in self.rounds]

    def errors(self) -> List[float]:
        """Per-round standard deviation from the correct value."""
        return [record.stddev_error for record in self.rounds]

    def truths(self) -> List[float]:
        """Per-round correct aggregate values."""
        return [record.truth for record in self.rounds]

    def mean_estimates(self) -> List[float]:
        """Per-round mean host estimate."""
        return [record.mean_estimate for record in self.rounds]

    def alive_counts(self) -> List[int]:
        """Per-round number of live hosts."""
        return [record.n_alive for record in self.rounds]

    def bytes_per_round(self) -> List[int]:
        """Per-round bytes placed on the simulated radio."""
        return [record.bytes_sent for record in self.rounds]

    def group_size_series(self) -> List[Optional[float]]:
        """Per-round mean group size (``None`` entries for non-trace runs)."""
        return [record.group_sizes for record in self.rounds]

    def delivered_per_round(self) -> List[int]:
        """Per-round messages the simulated network delivered."""
        return [record.messages_delivered for record in self.rounds]

    def lost_per_round(self) -> List[int]:
        """Per-round messages the simulated network lost."""
        return [record.messages_lost for record in self.rounds]

    def in_flight_per_round(self) -> List[int]:
        """Per-round in-flight backlog at the end of each round."""
        return [record.messages_in_flight for record in self.rounds]

    def total_lost(self) -> int:
        """Messages lost over the whole run."""
        return sum(record.messages_lost for record in self.rounds)

    # -------------------------------------------------------------- summaries
    def final_record(self) -> RoundRecord:
        """The last recorded round."""
        if not self.rounds:
            raise ValueError("simulation produced no rounds")
        return self.rounds[-1]

    def final_error(self) -> float:
        """Standard deviation from truth at the end of the run."""
        return self.final_record().stddev_error

    def mean_estimate(self) -> float:
        """Mean host estimate at the end of the run."""
        return self.final_record().mean_estimate

    def final_truth(self) -> float:
        """Correct aggregate at the end of the run."""
        return self.final_record().truth

    def convergence_round(
        self,
        threshold: float,
        *,
        relative: bool = False,
        start: int = 0,
        sustained: int = 1,
    ) -> Optional[int]:
        """First round (>= ``start``) whose error stays below ``threshold``.

        Parameters
        ----------
        threshold:
            Error bound.  When ``relative`` is true the bound is interpreted
            as a fraction of the round's truth (e.g. ``0.05`` = 5 %).
        sustained:
            Number of consecutive rounds that must satisfy the bound; guards
            against declaring convergence on a transient dip.

        Returns ``None`` when the run never satisfies the bound.
        """
        run_length = 0
        for record in self.rounds:
            if record.round_index < start:
                continue
            bound = threshold * abs(record.truth) if relative else threshold
            if record.stddev_error <= bound:
                run_length += 1
                if run_length >= sustained:
                    return record.round_index - sustained + 1
            else:
                run_length = 0
        return None

    def plateau_error(self, tail: int = 5) -> float:
        """Mean error over the last ``tail`` rounds (the figure's plateau)."""
        if not self.rounds:
            raise ValueError("simulation produced no rounds")
        tail_records = self.rounds[-tail:]
        return sum(record.stddev_error for record in tail_records) / len(tail_records)

    def error_at(self, round_index: int) -> float:
        """Error recorded at ``round_index`` (exact match required)."""
        for record in self.rounds:
            if record.round_index == round_index:
                return record.stddev_error
        raise KeyError(f"round {round_index} was not recorded")

    def total_bytes(self) -> int:
        """Total radio bytes over the whole run."""
        return sum(record.bytes_sent for record in self.rounds)

    def as_dict(self) -> dict:
        """A JSON-friendly representation (used by the CLI and EXPERIMENTS.md)."""
        return {
            "protocol": self.protocol_name,
            "aggregate": self.aggregate,
            "seed": self.seed,
            "metadata": dict(self.metadata),
            "rounds": [
                {
                    "round": record.round_index,
                    "truth": record.truth,
                    "n_alive": record.n_alive,
                    "mean_estimate": record.mean_estimate,
                    "stddev_error": record.stddev_error,
                    "bytes_sent": record.bytes_sent,
                    "messages_delivered": record.messages_delivered,
                    "messages_lost": record.messages_lost,
                    "messages_in_flight": record.messages_in_flight,
                    # The time axis only exists for event-engine runs; omit
                    # it otherwise so round-engine CLI output is unchanged.
                    **({"time": record.time} if record.time is not None else {}),
                }
                for record in self.rounds
            ],
        }

    # -------------------------------------------------------- full round-trip
    def to_payload(self) -> dict:
        """A lossless JSON-friendly representation of the whole trajectory.

        Unlike :meth:`as_dict` (the CLI's trimmed view), the payload keeps
        every :class:`RoundRecord` field — including ``max_abs_error``,
        ``mean_abs_error``, stored per-host ``estimates`` and
        ``group_sizes`` — so :meth:`from_payload` rebuilds a result equal
        to the original bit for bit (floats round-trip exactly through
        ``repr``-fidelity JSON).  This is the blob format of
        :class:`repro.store.ResultStore`.
        """
        return {
            "protocol_name": self.protocol_name,
            "aggregate": self.aggregate,
            "seed": self.seed,
            "metadata": dict(self.metadata),
            "rounds": [
                {
                    "round_index": record.round_index,
                    "truth": record.truth,
                    "n_alive": record.n_alive,
                    "mean_estimate": record.mean_estimate,
                    "stddev_error": record.stddev_error,
                    "max_abs_error": record.max_abs_error,
                    "mean_abs_error": record.mean_abs_error,
                    "bytes_sent": record.bytes_sent,
                    "estimates": None
                    if record.estimates is None
                    else {str(host): value for host, value in record.estimates.items()},
                    "group_sizes": record.group_sizes,
                    "messages_delivered": record.messages_delivered,
                    "messages_lost": record.messages_lost,
                    "messages_in_flight": record.messages_in_flight,
                    "time": record.time,
                }
                for record in self.rounds
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_payload` output (exact inverse)."""
        if not isinstance(payload, dict):
            raise TypeError(f"expected a payload dict, got {type(payload).__name__}")
        rounds = []
        for entry in payload["rounds"]:
            estimates = entry.get("estimates")
            rounds.append(
                RoundRecord(
                    round_index=int(entry["round_index"]),
                    truth=entry["truth"],
                    n_alive=int(entry["n_alive"]),
                    mean_estimate=entry["mean_estimate"],
                    stddev_error=entry["stddev_error"],
                    max_abs_error=entry["max_abs_error"],
                    mean_abs_error=entry["mean_abs_error"],
                    bytes_sent=int(entry["bytes_sent"]),
                    estimates=None
                    if estimates is None
                    else {int(host): value for host, value in estimates.items()},
                    group_sizes=entry.get("group_sizes"),
                    messages_delivered=int(entry.get("messages_delivered", 0)),
                    messages_lost=int(entry.get("messages_lost", 0)),
                    messages_in_flight=int(entry.get("messages_in_flight", 0)),
                    time=entry.get("time"),
                )
            )
        return cls(
            protocol_name=payload["protocol_name"],
            aggregate=payload["aggregate"],
            seed=int(payload["seed"]),
            rounds=rounds,
            metadata=dict(payload.get("metadata") or {}),
        )

    # ------------------------------------------------------------- utilities
    @staticmethod
    def stddev_from_truth(estimates: Sequence[float], truth: float) -> float:
        """Root-mean-square deviation of ``estimates`` from ``truth``.

        This is the error statistic every evaluation figure in the paper
        plots ("the standard deviation from the correct value").
        """
        if not estimates:
            return float("nan")
        total = 0.0
        for estimate in estimates:
            delta = estimate - truth
            total += delta * delta
        return math.sqrt(total / len(estimates))
