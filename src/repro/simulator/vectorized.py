"""Vectorised NumPy kernels for large gossip experiments.

The agent-based engine (:mod:`repro.simulator.engine`) is the reference
implementation: it runs any protocol over any environment with per-host
objects, which is ideal for the small trace-driven populations of Fig 11
but too slow for the 10⁴–10⁵-host sweeps of Figs 6, 8, 9 and 10.  The
kernels here re-implement the gossip protocols — Push-Sum-Revert (with
all its optimisations), Count-Sketch-Reset, static FM Sketch-Count and
extrema gossip (with and without freshness reset) — as array programs
over the whole population.  Unit tests cross-check the kernels against
the agent-based implementations on small populations, and the backend
layer (:mod:`repro.api.backends`) dispatches declarative scenarios onto
them.

Peer selection is pluggable: by default gossip is *uniform* (any live
host may contact any other), but every kernel except Full-Transfer also
accepts a ``topology`` — a :class:`~repro.simulator.sparse.CSRTopology`
or :class:`~repro.simulator.sparse.GridRingTopology` — and then samples
partners from the graph instead of the whole population, which is what
runs the paper's Section IV-A grid-restricted scenarios at kernel speed.

Differences from the agent engine worth knowing about:

* push/pull is realised as a random perfect matching of the live hosts per
  round (every host takes part in exactly one pairwise exchange), rather
  than "every host contacts one random peer" with incidental collisions.
  Both schemes mix mass at the same rate and the matching form vectorises
  exactly.  Under a topology the matching runs along sampled graph edges
  (:meth:`~repro.simulator.sparse._Topology.sample_matching`), so hosts
  whose neighbourhood is exhausted simply sit the round out — like an
  agent-engine host whose ``select_peers`` comes back empty.
* failures are applied by masking hosts out; their mass/counters simply
  stop participating, which is precisely the silent-departure semantics.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.core.cutoff import default_cutoff
from repro.obs.probe import NULL_PROBE
from repro.sketches.fm_sketch import PHI

__all__ = [
    "VectorizedPushSumRevert",
    "VectorizedCountSketchReset",
    "VectorizedSketchCount",
    "VectorizedExtrema",
]

#: Sentinel for "never heard of" in the vectorised counter kernel (int16-safe).
_COUNTER_INFINITY = np.int16(30_000)


def _geometric_identifier_mask(
    rng: np.random.Generator, n: int, bins: int, bits: int, identifiers_per_host: int
) -> np.ndarray:
    """The (host, bin, bit) ownership mask of the FM-style sketch kernels.

    Each identifier lands in a uniform bin with a geometric bit index
    (P[bit = k] = 2^-(k+1), clamped to L-1) — the array analogue of the
    hash-based coordinates in :mod:`repro.sketches.hashing`.
    """
    mask = np.zeros((n, bins, bits), dtype=bool)
    for _ in range(identifiers_per_host):
        owned_bins = rng.integers(0, bins, size=n)
        owned_bits = np.minimum(rng.geometric(0.5, size=n) - 1, bits - 1)
        mask[np.arange(n), owned_bins, owned_bits] = True
    return mask


def _draw_push_targets(
    topology, alive_idx: np.ndarray, alive: np.ndarray, rng: np.random.Generator
):
    """``(senders, targets)`` for one "everyone contacts one peer" round.

    Uniform gossip draws a random live host per sender (self-contact
    allowed, as in the agent engine); topology-restricted gossip draws a
    random live graph neighbour, and hosts whose live neighbourhood is
    empty drop out of the round (the agent engine's isolated-host rule).
    """
    if topology is None:
        targets = alive_idx[rng.integers(0, alive_idx.size, size=alive_idx.size)]
        return alive_idx, targets
    drawn = topology.sample_peers(alive_idx, alive, rng)
    has_peer = drawn >= 0
    return alive_idx[has_peer], drawn[has_peer]


def _prefix_rank(image: np.ndarray, bits: int) -> np.ndarray:
    """Per (host, bin) length of the prefix of ones in a boolean bit image.

    ``argmin`` over a boolean axis returns the first False; all-True rows
    return 0 and must be mapped to the full width.
    """
    first_false = np.argmin(image, axis=2)
    all_true = image.all(axis=2)
    return np.where(all_true, bits, first_false)


class _VectorizedKernel:
    """Shared population machinery for the array kernels.

    Subclass constructors set ``n`` (population size), ``rng`` (the kernel's
    seeded generator), ``alive`` (boolean mask) and ``round_index``;
    subclasses implement :meth:`step`, :meth:`estimates` and :meth:`truth`.
    """

    n: int
    rng: np.random.Generator
    alive: np.ndarray
    round_index: int

    #: Instrumentation sink (:mod:`repro.obs`); the backend swaps a real
    #: probe in for one run and restores the null default afterwards.
    #: Probes never draw from ``rng``, so attaching one is bit-neutral.
    probe = NULL_PROBE

    #: Cumulative network accounting, maintained by every kernel so the
    #: vectorised path exposes the same delivery series the agent
    #: engine's RoundRecord carries.  One pairwise exchange counts as two
    #: messages and self-messages cost no radio bytes, matching
    #: :class:`repro.simulator.message.BandwidthMeter`.
    messages_delivered: int = 0
    messages_lost: int = 0
    bytes_sent: int = 0

    def step(self) -> None:
        """Execute one gossip round over the live hosts."""
        raise NotImplementedError

    def estimates(self) -> np.ndarray:
        """Per-live-host estimates of the kernel's aggregate."""
        raise NotImplementedError

    def truth(self) -> float:
        """The correct aggregate over the currently live hosts."""
        raise NotImplementedError

    def step_many(self, rounds: int) -> None:
        """Execute several rounds."""
        for _ in range(rounds):
            self.step()

    # ------------------------------------------------------------- membership
    def join(self, values: Sequence[float]) -> np.ndarray:
        """Grow the population: one new live host per value; returns their ids.

        New hosts get fresh per-host state exactly as the agent engine's
        ``add_host`` does (a joining host knows only itself), and host ids
        extend the existing range, matching the agent engine's
        ``_next_host_id`` assignment.  Joins are uniform-gossip only: a
        static or trace topology has no slots (or edges) for new hosts, so
        those scenarios stay on the agent engine.
        """
        fresh = np.asarray(list(values), dtype=float)
        if fresh.size == 0:
            return np.array([], dtype=np.int64)
        if getattr(self, "topology", None) is not None:
            raise ValueError(
                "joins under a topology are not vectorised; "
                "topology-restricted joins require the agent engine"
            )
        start = self.n
        self.n = start + fresh.size
        self.alive = np.concatenate([self.alive, np.ones(fresh.size, dtype=bool)])
        self._grow(fresh, start)
        return np.arange(start, self.n, dtype=np.int64)

    def _grow(self, values: np.ndarray, start: int) -> None:
        """Append per-host state rows for hosts ``start .. start+len(values)``."""
        raise NotImplementedError

    def depart_gracefully(self, host_indices: Sequence[int]) -> None:
        """Remove hosts that sign off cleanly, transferring state if possible.

        The default is indistinguishable from a silent failure; kernels
        whose protocols define a hand-over (:meth:`VectorizedPushSumRevert.
        depart_gracefully` transfers mass, the counter kernel disowns its
        sketch positions) override this to mirror
        :class:`repro.core.departure.GracefulDepartureEvent`.
        """
        self.fail(host_indices)

    # --------------------------------------------------------------- failures
    def fail(self, host_indices: Sequence[int]) -> None:
        """Silently remove the given hosts from the computation."""
        indices = np.asarray(list(host_indices), dtype=np.int64)
        self.alive[indices] = False

    def fail_random_fraction(self, fraction: float) -> np.ndarray:
        """Fail a uniformly random fraction of the live hosts; returns their indices."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        alive_idx = np.nonzero(self.alive)[0]
        count = int(round(fraction * alive_idx.size))
        chosen = (
            self.rng.choice(alive_idx, size=count, replace=False)
            if count
            else np.array([], dtype=np.int64)
        )
        self.alive[chosen] = False
        return chosen

    # -------------------------------------------------------------- estimates
    def error(self) -> float:
        """Standard deviation of the live hosts' estimates from the truth."""
        estimates = self.estimates()
        if estimates.size == 0:
            return float("nan")
        return float(np.sqrt(np.mean((estimates - self.truth()) ** 2)))


class _ValueKernel(_VectorizedKernel):
    """Kernels carrying one value per host.

    The value array is what correlated failures order hosts by and what
    value-change events rewrite; subclasses expose it via
    :meth:`_host_values` and apply updates in :meth:`_set_host_value`.
    """

    def _host_values(self) -> np.ndarray:
        raise NotImplementedError

    def _set_host_value(self, index: int, value: float) -> None:
        raise NotImplementedError

    def fail_extreme_fraction(self, fraction: float, *, highest: bool = True) -> np.ndarray:
        """Fail the most extreme-valued fraction of live hosts; returns their indices."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        alive_idx = np.nonzero(self.alive)[0]
        count = int(round(fraction * alive_idx.size))
        if count == 0:
            return np.array([], dtype=np.int64)
        order = alive_idx[np.argsort(self._host_values()[alive_idx])]
        chosen = order[-count:] if highest else order[:count]
        self.alive[chosen] = False
        return chosen

    def change_values(self, new_values: Mapping[int, float]) -> None:
        """Change hosts' underlying values mid-run (the value-change workload)."""
        for host_id, value in new_values.items():
            index = int(host_id)
            if not 0 <= index < self.n:
                raise ValueError(f"host {host_id} outside population of {self.n}")
            self._set_host_value(index, float(value))


class VectorizedPushSumRevert(_ValueKernel):
    """Array implementation of Push-Sum(-Revert) under uniform gossip.

    Parameters
    ----------
    values:
        Initial host values.
    reversion:
        The reversion constant λ (0 = static Push-Sum).
    mode:
        ``"pushpull"`` (random perfect matching per round; the evaluation's
        default), ``"push"`` (each host pushes half its mass to one random
        peer), or ``"full-transfer"`` (the Figure 4 optimisation).
    parcels, history:
        Full-Transfer parameters ``N`` and ``T``.
    adaptive:
        Indegree-adaptive reversion (push and full-transfer modes only;
        under the matching-based push/pull every host has indegree 1, so the
        adaptive rule coincides with the fixed rule).
    loss:
        Bernoulli message-loss probability (the ``bernoulli-loss`` network
        model of :mod:`repro.network`).  In push and full-transfer modes
        each emitted mass parcel is lost independently with probability
        ``loss`` — the mass leaves the system and accumulates in
        :attr:`mass_lost` — while in pushpull mode a lossy link makes the
        atomic pairwise exchange simply not happen (no mass at risk),
        matching the agent engine's exchange semantics.  ``loss=0`` draws
        no extra randomness, so it is bit-identical to the lossless kernel.
    topology:
        Optional :mod:`~repro.simulator.sparse` topology restricting who
        may gossip with whom (push and pushpull modes; Full-Transfer's
        multi-parcel fan-out is uniform-only).  ``None`` keeps the
        uniform behaviour bit for bit.
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        values: Sequence[float],
        reversion: float = 0.0,
        *,
        mode: str = "pushpull",
        parcels: int = 4,
        history: int = 3,
        adaptive: bool = False,
        loss: float = 0.0,
        topology=None,
        seed: int = 0,
    ):
        if mode not in ("push", "pushpull", "full-transfer"):
            raise ValueError(f"unknown mode {mode!r}")
        if not 0.0 <= reversion <= 1.0:
            raise ValueError("reversion must be in [0, 1]")
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be in [0, 1]")
        if parcels < 1 or history < 1:
            raise ValueError("parcels and history must be >= 1")
        if topology is not None and mode == "full-transfer":
            raise ValueError(
                "full-transfer mode is uniform-only; topology-restricted "
                "gossip supports the push and pushpull modes"
            )
        self.initial = np.asarray(list(values), dtype=float)
        self.n = self.initial.size
        if self.n < 1:
            raise ValueError("need at least one host")
        if topology is not None and topology.n != self.n:
            raise ValueError(
                f"topology covers {topology.n} hosts but the kernel has {self.n}"
            )
        self.topology = topology
        self.reversion = float(reversion)
        self.mode = mode
        self.parcels = int(parcels)
        self.history = int(history)
        self.adaptive = bool(adaptive)
        self.loss = float(loss)
        #: Conserved mass (weight) destroyed by lost messages so far.
        self.mass_lost = 0.0
        #: Conserved mass (weight) created by reversion so far (the fixed
        #: revert blends each host's weight towards 1, injecting mass the
        #: event calendar's per-bucket ledger must account for).
        self.mass_injected = 0.0
        #: Cumulative network delivery outcomes (non-self messages; one
        #: pairwise exchange counts as two, matching the agent engine).
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_sent = 0
        self.rng = np.random.default_rng(seed)
        self.alive = np.ones(self.n, dtype=bool)
        self.weight = np.ones(self.n, dtype=float)
        self.total = self.initial.copy()
        self.round_index = 0
        # Full-Transfer history ring: most recent mass-bearing rounds first.
        self._history_weight = np.zeros((self.n, self.history), dtype=float)
        self._history_total = np.zeros((self.n, self.history), dtype=float)
        self._history_filled = np.zeros(self.n, dtype=np.int64)
        self._last_estimate = self.initial.copy()

    # ------------------------------------------------------------------ steps
    def step(self) -> None:
        """Execute one gossip round over the live hosts."""
        alive_idx = np.nonzero(self.alive)[0]
        if alive_idx.size >= 2:
            if self.mode == "pushpull":
                self._step_matching(alive_idx)
            elif self.mode == "push":
                self._step_push(alive_idx)
            else:
                self._step_full_transfer(alive_idx)
        adaptive_push = self.adaptive and self.mode == "push"
        if self.mode != "full-transfer" and self.reversion > 0.0 and not adaptive_push:
            # (Adaptive push mode applies its per-indegree revert inside
            # _step_push, so the fixed revert is skipped for it.)
            self.revert_subset(alive_idx)
        self._refresh_last_estimates(alive_idx)
        self.round_index += 1

    def revert_subset(self, host_idx: np.ndarray) -> None:
        """Apply the fixed revert to ``host_idx`` (one tick's worth each).

        Exactly the arithmetic the whole-population round step applies, so
        calling it with the full alive index keeps :meth:`step` bit-identical;
        the event calendar calls it with just the bucket's ticking hosts.
        The injected weight is tallied in :attr:`mass_injected` so the
        per-bucket mass ledger can balance its books.
        """
        lam = self.reversion
        new_weight = lam + (1.0 - lam) * self.weight[host_idx]
        self.mass_injected += float(new_weight.sum() - self.weight[host_idx].sum())
        self.weight[host_idx] = new_weight
        self.total[host_idx] = (
            lam * self.initial[host_idx] + (1.0 - lam) * self.total[host_idx]
        )

    def merge_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        """Atomic pairwise exchanges, serialised where endpoints collide.

        ``(left[i], right[i])`` are exchange pairs whose endpoints may
        repeat (the event calendar draws partners independently, unlike the
        round engine's perfect matching).  Conflicting exchanges are
        resolved in pair order: each pass takes every pair that is the
        lowest-indexed remaining claimant of *both* its endpoints (those
        are endpoint-disjoint, so their mean-merges commute), then repeats
        on the rest.  Pass counts stay tiny in practice — collisions are
        rare at gossip fan-out — and the lowest remaining pair is always
        taken, so the loop terminates.
        """
        with self.probe.span("scatter"):
            while left.size:
                # One interleaved write in descending pair order, so the
                # last (winning) write for any endpoint is its *lowest*
                # claiming pair index across both sides — pair 0 always
                # claims both its endpoints, guaranteeing progress.
                claim = np.full(self.n, -1, dtype=np.int64)
                rev = np.arange(left.size - 1, -1, -1)
                endpoints = np.column_stack([left[rev], right[rev]]).ravel()
                claim[endpoints] = np.repeat(rev, 2)
                idx = np.arange(left.size)
                take = (claim[left] == idx) & (claim[right] == idx)
                a, b = left[take], right[take]
                mean_weight = (self.weight[a] + self.weight[b]) / 2.0
                mean_total = (self.total[a] + self.total[b]) / 2.0
                self.weight[a] = mean_weight
                self.weight[b] = mean_weight
                self.total[a] = mean_total
                self.total[b] = mean_total
                left, right = left[~take], right[~take]

    def emit_push(self, senders: np.ndarray):
        """Split ``senders``' mass in half; return the outgoing halves.

        The halves leave the senders immediately (they are now in flight);
        the caller delivers them — instantly via :meth:`apply_deliveries`
        or after a network delay.  ``senders`` must be unique live hosts.
        """
        outgoing_weight = self.weight[senders] / 2.0
        outgoing_total = self.total[senders] / 2.0
        self.weight[senders] = outgoing_weight
        self.total[senders] = outgoing_total
        return outgoing_weight, outgoing_total

    def apply_deliveries(
        self, targets: np.ndarray, weight: np.ndarray, total: np.ndarray
    ) -> None:
        """Scatter-add in-flight push halves into live ``targets``.

        One ``np.add.at`` per mass array replaces one agent-engine DELIVER
        event per message; duplicate targets accumulate, matching
        sequential delivery order-independently (addition commutes).
        """
        with self.probe.span("scatter"):
            np.add.at(self.weight, targets, weight)
            np.add.at(self.total, targets, total)
        # Duplicate targets are fine: the refresh is a plain fancy-index
        # assignment, so deduplicating first would only cost a sort.
        self._refresh_last_estimates(targets)

    def step_subset(self, ticking: np.ndarray) -> None:
        """One gossip tick for just ``ticking`` (unique live hosts).

        The event calendar's bucketed drain: every host whose clock fires
        in the current bucket gossips once, against partners drawn from the
        *full* live population (non-ticking hosts can be pulled into an
        exchange or receive a push, exactly as in the agent event engine).
        Reversion applies per tick to the ticking hosts only.  Unlike
        :meth:`step` this never bumps :attr:`round_index` — sample indices
        are the calendar's business, not the kernel's.
        """
        if self.mode == "full-transfer":
            raise ValueError("full-transfer mode has no subset step")
        if self.adaptive:
            raise ValueError("adaptive reversion has no subset step")
        ticking = np.asarray(ticking, dtype=np.int64)
        alive_idx = np.nonzero(self.alive)[0]
        touched = ticking
        if alive_idx.size >= 2 and ticking.size:
            if self.mode == "pushpull":
                with self.probe.span("sampling"):
                    # Partner uniformly among the *other* live hosts: offset
                    # the ticker's own position in the sorted live index by
                    # 1..n_alive-1 (no self-exchanges, like the agent peer
                    # sampler).
                    pos = np.searchsorted(alive_idx, ticking)
                    offset = self.rng.integers(1, alive_idx.size, size=ticking.size)
                    partners = alive_idx[(pos + offset) % alive_idx.size]
                left, right = ticking, partners
                if self.loss > 0.0:
                    kept = self.rng.random(left.size) >= self.loss
                    dropped = int(left.size - int(kept.sum()))
                    left = left[kept]
                    right = right[kept]
                    self.messages_lost += 2 * dropped
                    self.bytes_sent += 16 * dropped
                self.messages_delivered += 2 * int(left.size)
                self.bytes_sent += 32 * int(left.size)
                self.merge_pairs(left, right)
                touched = np.concatenate([ticking, partners])
            else:  # push
                with self.probe.span("sampling"):
                    targets = alive_idx[
                        self.rng.integers(0, alive_idx.size, size=ticking.size)
                    ]
                self.bytes_sent += 16 * int(np.count_nonzero(targets != ticking))
                outgoing_weight, outgoing_total = self.emit_push(ticking)
                if self.loss > 0.0:
                    kept = self.rng.random(ticking.size) >= self.loss
                    self.mass_lost += float(outgoing_weight[~kept].sum())
                    self.messages_lost += int(ticking.size - int(kept.sum()))
                    targets = targets[kept]
                    outgoing_weight = outgoing_weight[kept]
                    outgoing_total = outgoing_total[kept]
                self.messages_delivered += int(targets.size)
                with self.probe.span("scatter"):
                    np.add.at(self.weight, targets, outgoing_weight)
                    np.add.at(self.total, targets, outgoing_total)
                touched = np.concatenate([ticking, targets])
        if self.reversion > 0.0 and ticking.size:
            self.revert_subset(ticking)
        self._refresh_last_estimates(touched)

    def _step_matching(self, alive_idx: np.ndarray) -> None:
        with self.probe.span("matching"):
            if self.topology is not None:
                left, right = self.topology.sample_matching(alive_idx, self.alive, self.rng)
            else:
                order = self.rng.permutation(alive_idx)
                pair_count = order.size // 2
                left = order[:pair_count]
                right = order[pair_count : 2 * pair_count]
        pair_count = left.size
        if self.loss > 0.0:
            # A lossy link makes the atomic exchange not happen: the pair
            # keeps its masses untouched (no mass is ever at risk here).
            kept = self.rng.random(pair_count) >= self.loss
            left = left[kept]
            right = right[kept]
            self.messages_lost += 2 * int(pair_count - left.size)
            # The initiator's half still crossed the radio (agent parity:
            # record_lost_exchange); the reply never happened.
            self.bytes_sent += 16 * int(pair_count - left.size)
        self.messages_delivered += 2 * int(left.size)
        self.bytes_sent += 32 * int(left.size)  # 16 bytes each way per exchange
        with self.probe.span("scatter"):
            mean_weight = (self.weight[left] + self.weight[right]) / 2.0
            mean_total = (self.total[left] + self.total[right]) / 2.0
            self.weight[left] = mean_weight
            self.weight[right] = mean_weight
            self.total[left] = mean_total
            self.total[right] = mean_total

    def _step_push(self, alive_idx: np.ndarray) -> None:
        # Hosts whose live neighbourhood is empty drop out of `senders` and
        # keep their whole mass (the agent engine's isolated-host rule).
        with self.probe.span("sampling"):
            senders, targets = _draw_push_targets(
                self.topology, alive_idx, self.alive, self.rng
            )
        # Radio bytes are spent when the half is pushed, lost or not
        # (agent parity: the bandwidth meter records before the network
        # plans); self-messages never touch the radio.
        self.bytes_sent += 16 * int(np.count_nonzero(targets != senders))
        outgoing_weight = self.weight[senders] / 2.0
        outgoing_total = self.total[senders] / 2.0
        new_weight = np.zeros(self.n, dtype=float)
        new_total = np.zeros(self.n, dtype=float)
        new_weight[alive_idx] = self.weight[alive_idx]
        new_total[alive_idx] = self.total[alive_idx]
        # Half the mass stays home, half lands at the target (which may be the
        # sender itself — self-selection is allowed in uniform push gossip).
        new_weight[senders] -= outgoing_weight
        new_total[senders] -= outgoing_total
        if self.loss > 0.0:
            # The pushed halves traverse the network; each is lost
            # independently and its mass leaves the system for good.
            kept = self.rng.random(senders.size) >= self.loss
            targets = targets[kept]
            self.mass_lost += float(outgoing_weight[~kept].sum())
            self.messages_lost += int(senders.size - targets.size)
            outgoing_weight = outgoing_weight[kept]
            outgoing_total = outgoing_total[kept]
        self.messages_delivered += int(targets.size)
        with self.probe.span("scatter"):
            np.add.at(new_weight, targets, outgoing_weight)
            np.add.at(new_total, targets, outgoing_total)
        received = np.zeros(self.n, dtype=np.int64)
        np.add.at(received, targets, 1)
        received[alive_idx] += 1  # the self-message
        self.weight[alive_idx] = new_weight[alive_idx]
        self.total[alive_idx] = new_total[alive_idx]
        if self.adaptive and self.reversion > 0.0:
            lam = np.minimum(1.0, 0.5 * self.reversion * received[alive_idx])
            self.weight[alive_idx] = lam + (1.0 - lam) * self.weight[alive_idx]
            self.total[alive_idx] = (
                lam * self.initial[alive_idx] + (1.0 - lam) * self.total[alive_idx]
            )

    def _step_full_transfer(self, alive_idx: np.ndarray) -> None:
        lam = self.reversion
        outgoing_weight = (1.0 - lam) * self.weight[alive_idx] + lam
        outgoing_total = (1.0 - lam) * self.total[alive_idx] + lam * self.initial[alive_idx]
        parcel_weight = outgoing_weight / self.parcels
        parcel_total = outgoing_total / self.parcels
        new_weight = np.zeros(self.n, dtype=float)
        new_total = np.zeros(self.n, dtype=float)
        for _ in range(self.parcels):
            targets = alive_idx[self.rng.integers(0, alive_idx.size, size=alive_idx.size)]
            # Every non-self parcel costs radio bytes whether or not the
            # network then loses it (agent parity).
            self.bytes_sent += 16 * int(np.count_nonzero(targets != alive_idx))
            if self.loss > 0.0:
                # Every parcel is a message; lost parcels drain mass.
                kept = self.rng.random(alive_idx.size) >= self.loss
                np.add.at(new_weight, targets[kept], parcel_weight[kept])
                np.add.at(new_total, targets[kept], parcel_total[kept])
                self.mass_lost += float(parcel_weight[~kept].sum())
                self.messages_lost += int(alive_idx.size - int(kept.sum()))
                self.messages_delivered += int(kept.sum())
            else:
                np.add.at(new_weight, targets, parcel_weight)
                np.add.at(new_total, targets, parcel_total)
                self.messages_delivered += int(alive_idx.size)
        self.weight[alive_idx] = new_weight[alive_idx]
        self.total[alive_idx] = new_total[alive_idx]
        # Record this round in the history of hosts that received any mass.
        received_mass = np.zeros(self.n, dtype=bool)
        received_mass[alive_idx] = new_weight[alive_idx] > 1e-12
        idx = np.nonzero(received_mass)[0]
        if idx.size:
            self._history_weight[idx, 1:] = self._history_weight[idx, :-1]
            self._history_total[idx, 1:] = self._history_total[idx, :-1]
            self._history_weight[idx, 0] = new_weight[idx]
            self._history_total[idx, 0] = new_total[idx]
            self._history_filled[idx] = np.minimum(self._history_filled[idx] + 1, self.history)

    # ------------------------------------------------------------- membership
    def _grow(self, values: np.ndarray, start: int) -> None:
        count = values.size
        self.initial = np.concatenate([self.initial, values])
        self.weight = np.concatenate([self.weight, np.ones(count, dtype=float)])
        self.total = np.concatenate([self.total, values])
        self._last_estimate = np.concatenate([self._last_estimate, values])
        self._history_weight = np.concatenate(
            [self._history_weight, np.zeros((count, self.history), dtype=float)]
        )
        self._history_total = np.concatenate(
            [self._history_total, np.zeros((count, self.history), dtype=float)]
        )
        self._history_filled = np.concatenate(
            [self._history_filled, np.zeros(count, dtype=np.int64)]
        )

    def depart_gracefully(self, host_indices: Sequence[int]) -> None:
        """Sign-off departure: each leaver hands its mass to a random survivor.

        Mirrors :func:`repro.core.departure.sign_off_mass` — the departing
        weight/total move to a live peer, so the conserved mass stays in the
        system and the average re-converges instead of drifting.  With no
        survivors left the mass leaves the system (tracked in
        :attr:`mass_lost`).
        """
        indices = np.asarray(list(host_indices), dtype=np.int64)
        if indices.size == 0:
            return
        self.alive[indices] = False
        survivors = np.nonzero(self.alive)[0]
        if survivors.size == 0:
            self.mass_lost += float(self.weight[indices].sum())
        else:
            heirs = survivors[self.rng.integers(0, survivors.size, size=indices.size)]
            np.add.at(self.weight, heirs, self.weight[indices])
            np.add.at(self.total, heirs, self.total[indices])
        self.weight[indices] = 0.0
        self.total[indices] = 0.0

    # ------------------------------------------------- failures/value changes
    def fail_highest_fraction(self, fraction: float) -> np.ndarray:
        """Fail the highest-valued fraction of live hosts (correlated failure)."""
        return self.fail_extreme_fraction(fraction, highest=True)

    def _host_values(self) -> np.ndarray:
        return self.initial

    def _set_host_value(self, index: int, value: float) -> None:
        # Mirrors ValueChangeEvent with rebase_state=True: only the revert
        # anchor moves, so reversion gradually pulls the circulating mass
        # towards the new value while the in-flight totals stay untouched —
        # exactly the agent protocol's ``rebase`` hook.
        self.initial[index] = value

    # -------------------------------------------------------------- estimates
    def _refresh_last_estimates(self, alive_idx: np.ndarray) -> None:
        has_weight = self.weight[alive_idx] > 1e-12
        idx = alive_idx[has_weight]
        self._last_estimate[idx] = self.total[idx] / self.weight[idx]

    def estimates(self) -> np.ndarray:
        """Per-live-host estimates of the network average."""
        alive_idx = np.nonzero(self.alive)[0]
        if self.mode == "full-transfer":
            weight_sum = self._history_weight[alive_idx].sum(axis=1)
            total_sum = self._history_total[alive_idx].sum(axis=1)
            estimates = np.where(
                weight_sum > 1e-12, total_sum / np.maximum(weight_sum, 1e-300), self._last_estimate[alive_idx]
            )
            return estimates
        weight = self.weight[alive_idx]
        return np.where(
            weight > 1e-12, self.total[alive_idx] / np.maximum(weight, 1e-300), self._last_estimate[alive_idx]
        )

    def truth(self) -> float:
        """The correct average over the currently live hosts."""
        alive_idx = np.nonzero(self.alive)[0]
        if alive_idx.size == 0:
            return float("nan")
        return float(self.initial[alive_idx].mean())


class VectorizedCountSketchReset(_VectorizedKernel):
    """Array implementation of Count-Sketch-Reset under uniform gossip.

    Parameters
    ----------
    n:
        Number of hosts.
    bins, bits:
        Sketch dimensions ``m`` × ``L``.
    cutoff:
        Freshness cutoff ``f(k)``; ``None`` disables decay (static
        Sketch-Count behaviour, the "propagation limiting off" curve of
        Fig 9).
    identifiers_per_host:
        Identifiers registered per host (values > 1 implement
        multiple-insertion summation of equal integer values, or the
        100-identifiers-per-device trick of Fig 11).
    pull:
        Whether the contacted peer responds with its own array (recommended
        by the paper; on by default).
    topology:
        Optional :mod:`~repro.simulator.sparse` topology restricting who
        may gossip with whom; ``None`` keeps uniform gossip bit for bit.
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        n: int,
        *,
        bins: int = 64,
        bits: int = 20,
        cutoff: Optional[Callable[[int], float]] = default_cutoff,
        identifiers_per_host: int = 1,
        pull: bool = True,
        topology=None,
        seed: int = 0,
    ):
        if n < 1:
            raise ValueError("need at least one host")
        if bins < 1 or bits < 1:
            raise ValueError("bins and bits must be >= 1")
        if identifiers_per_host < 1:
            raise ValueError("identifiers_per_host must be >= 1")
        if topology is not None and topology.n != n:
            raise ValueError(f"topology covers {topology.n} hosts but the kernel has {n}")
        self.topology = topology
        self.n = int(n)
        self.bins = int(bins)
        self.bits = int(bits)
        self.cutoff = cutoff
        self.identifiers_per_host = int(identifiers_per_host)
        self.pull = bool(pull)
        self.rng = np.random.default_rng(seed)
        self.alive = np.ones(self.n, dtype=bool)
        self.round_index = 0

        self.counters = np.full((self.n, self.bins, self.bits), _COUNTER_INFINITY, dtype=np.int16)
        self.own_mask = np.zeros((self.n, self.bins, self.bits), dtype=bool)
        self._register_identifiers()

        # With decay disabled the threshold must still exclude the "never
        # heard of" sentinel, otherwise untouched positions would read as set.
        no_decay_threshold = float(_COUNTER_INFINITY) - 1.0
        thresholds = np.array(
            [
                no_decay_threshold if cutoff is None else min(float(cutoff(k)), no_decay_threshold)
                for k in range(self.bits)
            ],
            dtype=float,
        )
        self._thresholds = thresholds

    def _register_identifiers(self) -> None:
        self.own_mask |= _geometric_identifier_mask(
            self.rng, self.n, self.bins, self.bits, self.identifiers_per_host
        )
        self.counters[self.own_mask] = 0

    # ------------------------------------------------------------- membership
    def _grow(self, values: np.ndarray, start: int) -> None:
        count = values.size
        new_own = _geometric_identifier_mask(
            self.rng, count, self.bins, self.bits, self.identifiers_per_host
        )
        new_counters = np.full(
            (count, self.bins, self.bits), _COUNTER_INFINITY, dtype=np.int16
        )
        new_counters[new_own] = 0
        self.counters = np.concatenate([self.counters, new_counters])
        self.own_mask = np.concatenate([self.own_mask, new_own])

    def depart_gracefully(self, host_indices: Sequence[int]) -> None:
        """Sign-off departure: the leaver disowns its sketch positions.

        Mirrors :func:`repro.core.departure.sign_off_counters` — the
        departed host's identifiers stop being refreshed, so their counters
        age past the cutoff and the live count drops without waiting for
        the silent-failure detection delay.
        """
        indices = np.asarray(list(host_indices), dtype=np.int64)
        if indices.size == 0:
            return
        self.own_mask[indices] = False
        self.alive[indices] = False

    # ------------------------------------------------------------------ steps
    def step(self) -> None:
        """Execute one gossip round over the live hosts."""
        alive_idx = np.nonzero(self.alive)[0]
        if alive_idx.size == 0:
            self.round_index += 1
            return
        # Phase 1: age every counter except the owned positions of live hosts.
        with self.probe.span("ageing"):
            live_counters = self.counters[alive_idx]
            live_counters = np.minimum(live_counters + 1, _COUNTER_INFINITY).astype(np.int16)
            live_own = self.own_mask[alive_idx]
            live_counters[live_own] = 0
            self.counters[alive_idx] = live_counters
        # Phase 2: gossip.  Each live host sends its array to one random live
        # peer (a live graph neighbour under a topology); receivers take the
        # element-wise min.  With pull enabled the sender also merges the
        # (pre-round) array of its target.
        if alive_idx.size >= 2:
            with self.probe.span("sampling"):
                senders, targets = _draw_push_targets(
                    self.topology, alive_idx, self.alive, self.rng
                )
            non_self = int(np.count_nonzero(targets != senders))
            payload_bytes = 2 * self.bins * self.bits  # agent parity: 2 B/counter
            legs = 2 if self.pull else 1  # the pull reply is a second array
            self.messages_delivered += legs * non_self
            self.bytes_sent += legs * payload_bytes * non_self
            with self.probe.span("scatter"):
                before = self.counters.copy() if self.pull else None
                np.minimum.at(self.counters, targets, self.counters[senders])
                if self.pull:
                    # Fancy indexing returns copies, so write the merged result
                    # back explicitly rather than relying on an `out=` view.
                    self.counters[senders] = np.minimum(self.counters[senders], before[targets])
                # Owned positions stay pinned at zero regardless of merges.
                self.counters[self.own_mask & self.alive[:, None, None]] = 0
        self.round_index += 1

    # -------------------------------------------------------------- estimates
    def bit_image(self) -> np.ndarray:
        """Derived bit matrix per live host: counter ≤ f(k)."""
        return self.counters <= self._thresholds[None, None, :]

    def ranks(self) -> np.ndarray:
        """Per (host, bin) prefix-of-ones length of the derived bit image."""
        return _prefix_rank(self.bit_image(), self.bits)

    def estimates(self) -> np.ndarray:
        """Per-live-host estimates of the live population size (or sum)."""
        alive_idx = np.nonzero(self.alive)[0]
        mean_rank = self.ranks()[alive_idx].mean(axis=1)
        raw = self.bins / PHI * np.exp2(mean_rank)
        return raw / self.identifiers_per_host

    def truth(self) -> float:
        """The correct count (number of live hosts)."""
        return float(self.alive.sum())

    # ------------------------------------------------------- Fig 6 diagnostics
    def counter_values_for_bit(self, bit_index: int, *, finite_only: bool = True) -> np.ndarray:
        """All live hosts' counter values for bit ``bit_index`` (all bins).

        This is the raw data behind Fig 6's per-bit CDFs.
        """
        if not 0 <= bit_index < self.bits:
            raise ValueError(f"bit_index must be in [0, {self.bits})")
        alive_idx = np.nonzero(self.alive)[0]
        values = self.counters[alive_idx, :, bit_index].reshape(-1).astype(np.int64)
        if finite_only:
            values = values[values < int(_COUNTER_INFINITY)]
        return values


class VectorizedSketchCount(_VectorizedKernel):
    """Array implementation of static FM Sketch-Count under uniform gossip.

    This is the Considine et al. baseline (:class:`repro.baselines.SketchCount`)
    as a whole-population array program: every host owns bit positions in an
    ``m`` × ``L`` boolean sketch, gossip merges by bitwise OR, and — the
    static counting weakness the paper's Figure 9 demonstrates — the
    estimate can never decrease, so departed hosts stay counted forever.

    Parameters
    ----------
    n:
        Number of hosts.
    bins, bits:
        Sketch dimensions ``m`` × ``L``.
    identifiers_per_host:
        Identifiers registered per host (the estimate divides by this).
    pull:
        Whether the contacted peer responds with its own sketch.
    topology:
        Optional :mod:`~repro.simulator.sparse` topology restricting who
        may gossip with whom; ``None`` keeps uniform gossip bit for bit.
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        n: int,
        *,
        bins: int = 64,
        bits: int = 20,
        identifiers_per_host: int = 1,
        pull: bool = True,
        topology=None,
        seed: int = 0,
    ):
        if n < 1:
            raise ValueError("need at least one host")
        if bins < 1 or bits < 1:
            raise ValueError("bins and bits must be >= 1")
        if identifiers_per_host < 1:
            raise ValueError("identifiers_per_host must be >= 1")
        if topology is not None and topology.n != n:
            raise ValueError(f"topology covers {topology.n} hosts but the kernel has {n}")
        self.topology = topology
        self.n = int(n)
        self.bins = int(bins)
        self.bits = int(bits)
        self.identifiers_per_host = int(identifiers_per_host)
        self.pull = bool(pull)
        self.rng = np.random.default_rng(seed)
        self.alive = np.ones(self.n, dtype=bool)
        self.round_index = 0
        self.matrix = _geometric_identifier_mask(
            self.rng, self.n, self.bins, self.bits, self.identifiers_per_host
        )

    # ------------------------------------------------------------- membership
    def _grow(self, values: np.ndarray, start: int) -> None:
        self.matrix = np.concatenate(
            [
                self.matrix,
                _geometric_identifier_mask(
                    self.rng, values.size, self.bins, self.bits, self.identifiers_per_host
                ),
            ]
        )

    # ------------------------------------------------------------------ steps
    def step(self) -> None:
        """Execute one gossip round over the live hosts."""
        alive_idx = np.nonzero(self.alive)[0]
        if alive_idx.size >= 2:
            with self.probe.span("sampling"):
                senders, targets = _draw_push_targets(
                    self.topology, alive_idx, self.alive, self.rng
                )
            non_self = int(np.count_nonzero(targets != senders))
            # Agent parity: a boolean sketch packs to one bit per position.
            payload_bytes = int(np.ceil(self.bins * self.bits / 8))
            legs = 2 if self.pull else 1
            self.messages_delivered += legs * non_self
            self.bytes_sent += legs * payload_bytes * non_self
            with self.probe.span("scatter"):
                before = self.matrix.copy() if self.pull else None
                np.logical_or.at(self.matrix, targets, self.matrix[senders])
                if self.pull:
                    self.matrix[senders] = np.logical_or(self.matrix[senders], before[targets])
        self.round_index += 1

    # -------------------------------------------------------------- estimates
    def ranks(self) -> np.ndarray:
        """Per (host, bin) prefix-of-ones length of the bit matrix."""
        return _prefix_rank(self.matrix, self.bits)

    def estimates(self) -> np.ndarray:
        """Per-live-host estimates of the (ever-seen) population size."""
        alive_idx = np.nonzero(self.alive)[0]
        mean_rank = self.ranks()[alive_idx].mean(axis=1)
        return self.bins / PHI * np.exp2(mean_rank) / self.identifiers_per_host

    def truth(self) -> float:
        """The correct count (number of live hosts)."""
        return float(self.alive.sum())


class VectorizedExtrema(_ValueKernel):
    """Array implementation of extrema gossip (static and freshness-reset).

    Covers both agent protocols: with ``cutoff=None`` this is
    :class:`~repro.baselines.ExtremaGossip` (the best value spreads and is
    never forgotten); with an integer cutoff it is
    :class:`~repro.baselines.ExtremaReset` — the best value travels with an
    age that its originator keeps resetting, and a value whose age exceeds
    the cutoff is dropped in favour of the host's own value.

    Gossip is a random perfect matching of the live hosts per round (the
    same push/pull realisation as :class:`VectorizedPushSumRevert`); with
    a ``topology`` the matching runs along sampled graph edges instead.

    Parameters
    ----------
    values:
        Initial host values.
    maximum:
        Track the maximum (default) or the minimum.
    cutoff:
        Maximum tolerated age in rounds, or ``None`` for the static protocol.
    topology:
        Optional :mod:`~repro.simulator.sparse` topology restricting who
        may gossip with whom; ``None`` keeps uniform gossip bit for bit.
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        values: Sequence[float],
        *,
        maximum: bool = True,
        cutoff: Optional[int] = None,
        topology=None,
        seed: int = 0,
    ):
        self.own = np.asarray(list(values), dtype=float)
        self.n = self.own.size
        if self.n < 1:
            raise ValueError("need at least one host")
        if cutoff is not None and cutoff < 1:
            raise ValueError("cutoff must be >= 1")
        if topology is not None and topology.n != self.n:
            raise ValueError(
                f"topology covers {topology.n} hosts but the kernel has {self.n}"
            )
        self.topology = topology
        self.maximum = bool(maximum)
        self.cutoff = None if cutoff is None else int(cutoff)
        self.rng = np.random.default_rng(seed)
        self.alive = np.ones(self.n, dtype=bool)
        self.round_index = 0
        self.best_value = self.own.copy()
        self.best_id = np.arange(self.n, dtype=np.int64)
        self.best_age = np.zeros(self.n, dtype=np.int64)

    # ------------------------------------------------------------------ steps
    def step(self) -> None:
        """Execute one gossip round over the live hosts."""
        alive_idx = np.nonzero(self.alive)[0]
        if alive_idx.size == 0:
            self.round_index += 1
            return
        # Begin-round ageing (mirrors ExtremaReset.begin_round): own values
        # are always fresh; everything learned from others ages, and with a
        # cutoff a stale best falls back to the host's own value.
        is_own = self.best_id[alive_idx] == alive_idx
        self.best_age[alive_idx] = np.where(is_own, 0, self.best_age[alive_idx] + 1)
        if self.cutoff is not None:
            # Re-sync own-held bests to the current own value (a host may
            # have re-absorbed its own stale advertisement after a value
            # change; refreshing that would keep the outdated value alive).
            own_holders = alive_idx[is_own]
            self.best_value[own_holders] = self.own[own_holders]
            expired = alive_idx[self.best_age[alive_idx] > self.cutoff]
            self.best_value[expired] = self.own[expired]
            self.best_id[expired] = expired
            self.best_age[expired] = 0
        # Pairwise exchange over a random perfect matching (or a matching
        # along sampled graph edges when a topology restricts gossip).
        if alive_idx.size >= 2:
            with self.probe.span("matching"):
                if self.topology is not None:
                    left, right = self.topology.sample_matching(
                        alive_idx, self.alive, self.rng
                    )
                else:
                    order = self.rng.permutation(alive_idx)
                    pair_count = order.size // 2
                    left = order[:pair_count]
                    right = order[pair_count : 2 * pair_count]
            self.messages_delivered += 2 * int(left.size)
            self.bytes_sent += 32 * int(left.size)  # 16 bytes each way
            left_better = (
                self.best_value[left] > self.best_value[right]
                if self.maximum
                else self.best_value[left] < self.best_value[right]
            )
            # Equal values: the fresher (lower-age) copy wins, like _absorb.
            tie = self.best_value[left] == self.best_value[right]
            left_better |= tie & (self.best_age[left] < self.best_age[right])
            winner = np.where(left_better, left, right)
            for array in (self.best_value, self.best_id, self.best_age):
                array[left] = array[winner]
                array[right] = array[winner]
        self.round_index += 1

    # ------------------------------------------------------------- membership
    def _grow(self, values: np.ndarray, start: int) -> None:
        count = values.size
        self.own = np.concatenate([self.own, values])
        self.best_value = np.concatenate([self.best_value, values])
        self.best_id = np.concatenate(
            [self.best_id, np.arange(start, start + count, dtype=np.int64)]
        )
        self.best_age = np.concatenate([self.best_age, np.zeros(count, dtype=np.int64)])

    # ---------------------------------------------------------- value changes
    def _host_values(self) -> np.ndarray:
        return self.own

    def _set_host_value(self, index: int, value: float) -> None:
        # A host advertising its own value moves the advertised copy with it
        # (mirrors ExtremaGossip.rebase); a best learned elsewhere is kept.
        self.own[index] = value
        if self.best_id[index] == index:
            self.best_value[index] = value

    # -------------------------------------------------------------- estimates
    def estimates(self) -> np.ndarray:
        """Per-live-host best known values."""
        return self.best_value[self.alive].copy()

    def truth(self) -> float:
        """The correct extremum over the currently live hosts."""
        alive_values = self.own[self.alive]
        if alive_values.size == 0:
            return float("nan")
        return float(alive_values.max() if self.maximum else alive_values.min())
