"""Sparse-adjacency peer sampling for the vectorised kernels.

The kernels in :mod:`repro.simulator.vectorized` were born uniform: every
live host could gossip with every other live host, so peer selection was a
single ``rng.integers``/``rng.permutation`` call over the live index set.
This module is what lets the same kernels run *graph-restricted* gossip at
kernel speed: a topology object answers "one random live peer for each of
these hosts" as an array program, and the kernels treat the answer exactly
like the uniform draw they used before.

Two topologies are provided:

* :class:`CSRTopology` — an arbitrary static graph held as CSR
  ``indptr``/``indices`` arrays (ring lattices, grids, random-geometric
  and Erdős–Rényi graphs, anything a
  :class:`~repro.environments.NeighborhoodEnvironment` can describe).
  Failures are handled by caching a live-edge CSR that is rebuilt only
  when the alive mask actually changes, so steady-state rounds pay one
  gather per sample and nothing else.
* :class:`GridRingTopology` — the spatial-gossip rule of the paper's
  Section IV-A (Kempe–Kleinberg–Demers): hosts live on a 2-D grid, a
  gossip partner is found by sampling a distance ``d`` with probability
  proportional to ``1/d²`` and then a uniform live host on the L1 ring at
  exactly that distance.  The ring is never materialised: the 4·d lattice
  offsets of an L1 circle are enumerated arithmetically, so sampling is
  O(attempts) per host regardless of ``d``.

Both expose the same three operations the kernels and the backend need:
:meth:`sample_peers` (one live peer per requesting host, ``-1`` when the
host is isolated), :meth:`sample_matching` (a conflict-free set of
pairwise exchanges along sampled edges — the graph analogue of the
uniform kernels' random perfect matching) and :meth:`components` (the
connected components of the live-induced graph, for group-relative error
accounting à la Fig 11).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.obs.probe import NULL_PROBE
from repro.topology.connectivity import connected_components

__all__ = [
    "CSRTopology",
    "GridRingTopology",
    "TraceCSRTopology",
    "greedy_edge_matching",
]

Adjacency = Dict[int, Set[int]]


def greedy_edge_matching(
    left: np.ndarray, right: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """A matching among the candidate edges ``(left[i], right[i])``.

    Each candidate edge draws a distinct random priority; an edge is
    accepted when it holds the highest priority at *both* of its
    endpoints.  Accepted edges therefore never share a vertex (two
    accepted edges meeting at ``v`` would both have to carry ``v``'s
    unique maximum), which makes the result a valid matching computed in
    one vectorised pass — no sequential greedy loop.

    Returns the boolean acceptance mask over the candidate edges.
    """
    if left.size == 0:
        return np.zeros(0, dtype=bool)
    priority = rng.permutation(left.size)
    best = np.full(n, -1, dtype=np.int64)
    np.maximum.at(best, left, priority)
    np.maximum.at(best, right, priority)
    return (best[left] == priority) & (best[right] == priority)


class _Topology:
    """Shared sampling machinery; subclasses implement the raw peer draw.

    Subclasses set ``n`` and implement :meth:`sample_peers` and
    :meth:`_live_adjacency`; everything else (matching construction,
    component caching) lives here.
    """

    n: int

    #: Instrumentation sink (:mod:`repro.obs`).  Topologies are cached and
    #: shared across runs, so the backend installs a run's probe before
    #: stepping and restores this null default afterwards.
    probe = NULL_PROBE

    def sample_peers(
        self, requesters: np.ndarray, alive: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One uniform live peer per requester (``-1`` for isolated hosts)."""
        raise NotImplementedError

    def _live_adjacency(self, alive: np.ndarray) -> Adjacency:
        """The live-induced adjacency map (for component computation)."""
        raise NotImplementedError

    # ------------------------------------------------------------- matching
    def sample_matching(
        self,
        alive_idx: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
        *,
        passes: int = 3,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pairwise exchange partners along sampled edges.

        Every live host proposes one random live peer; proposals are
        resolved into a matching by :func:`greedy_edge_matching`, and hosts
        left unmatched get ``passes - 1`` further proposal rounds against
        the still-unmatched population.  This is the graph analogue of the
        uniform kernels' random perfect matching: on sparse graphs a
        perfect matching need not exist, so unmatched hosts simply sit the
        round out — exactly like an agent-engine host whose neighbourhood
        is empty.

        Returns ``(left, right)`` index arrays of the accepted exchanges.
        """
        matched_left: List[np.ndarray] = []
        matched_right: List[np.ndarray] = []
        available = alive.copy()
        requesters = alive_idx
        for _ in range(max(1, passes)):
            if requesters.size < 2:
                break
            targets = self.sample_peers(requesters, alive, rng)
            # A proposal only stands if its target is itself still
            # unmatched; everything else retries next pass.
            valid = (targets >= 0) & available[np.where(targets >= 0, targets, 0)]
            left = requesters[valid]
            right = targets[valid]
            accept = greedy_edge_matching(left, right, self.n, rng)
            if accept.any():
                matched_left.append(left[accept])
                matched_right.append(right[accept])
                available[left[accept]] = False
                available[right[accept]] = False
                requesters = requesters[available[requesters]]
            else:
                break
        if not matched_left:
            empty = np.array([], dtype=np.int64)
            return empty, empty
        return np.concatenate(matched_left), np.concatenate(matched_right)

    # ----------------------------------------------------------- components
    def components(self, alive: np.ndarray) -> List[Set[int]]:
        """Connected components of the live-induced graph (cached by mask).

        Group-relative error (the Fig 11 definition) needs the partition
        every round, but the partition only changes when hosts fail — so
        the answer is cached against the alive mask and recomputed on
        membership changes only.
        """
        key = alive.tobytes()
        cached = getattr(self, "_components_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        with self.probe.span("component_labelling"):
            live = {int(host) for host in np.nonzero(alive)[0]}
            parts = connected_components(self._live_adjacency(alive), alive=live)
        self._components_cache = (key, parts)
        return parts

    def component_labels(self, alive: np.ndarray):
        """``(labels, sizes)`` for the live components (cached by mask).

        ``labels[host]`` is the component index of every live host (``-1``
        for dead hosts) and ``sizes[c]`` the member count of component
        ``c`` — the array form of :meth:`components` that lets per-round
        group-relative error accounting stay fully vectorised.
        """
        key = alive.tobytes()
        cached = getattr(self, "_labels_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        labels = np.full(self.n, -1, dtype=np.int64)
        parts = self.components(alive)
        sizes = np.zeros(len(parts), dtype=np.int64)
        for index, part in enumerate(parts):
            members = np.fromiter(part, dtype=np.int64, count=len(part))
            labels[members] = index
            sizes[index] = members.size
        self._labels_cache = (key, labels, sizes)
        return labels, sizes


class CSRTopology(_Topology):
    """A static undirected graph in CSR form, sampled against a live mask.

    Parameters
    ----------
    indptr, indices:
        Standard CSR arrays: the neighbours of host ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]``.  Build from an adjacency map
        with :meth:`from_adjacency`.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size < 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be a 1-D array starting at 0")
        if self.indices.ndim != 1 or self.indptr[-1] != self.indices.size:
            raise ValueError("indices length must equal indptr[-1]")
        self.n = self.indptr.size - 1
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.n):
            raise ValueError("indices reference hosts outside 0..n-1")
        #: Owner of each CSR slot (precomputed once; drives live rebuilds).
        self._edge_owner = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
        )
        self._live_key: Optional[bytes] = None
        self._live_indptr = self.indptr
        self._live_indices = self.indices
        self._live_degree = np.diff(self.indptr)

    @classmethod
    def from_edges(cls, u: np.ndarray, v: np.ndarray, n: int) -> "CSRTopology":
        """Build from unique undirected edge arrays (no self-loops).

        This is the fast path for generators with a closed-form edge
        enumeration (:func:`~repro.topology.graphs.ring_lattice_edges`,
        :func:`~repro.topology.graphs.grid_edges`): no per-node Python
        sets are ever materialised, so a 10⁵-host topology builds in
        milliseconds.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError("edge arrays must be 1-D and of equal length")
        source = np.concatenate([u, v])
        destination = np.concatenate([v, u])
        order = np.lexsort((destination, source))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(source, minlength=n), out=indptr[1:])
        return cls(indptr, destination[order])

    @classmethod
    def from_adjacency(cls, adjacency: Adjacency, n: Optional[int] = None) -> "CSRTopology":
        """Build from an adjacency map (``repro.topology.graphs`` output)."""
        size = int(n) if n is not None else (max(adjacency, default=-1) + 1)
        degrees = np.zeros(size, dtype=np.int64)
        for node, neighbors in adjacency.items():
            if not 0 <= node < size:
                raise ValueError(f"adjacency references host {node} outside 0..{size - 1}")
            degrees[node] = len(neighbors)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.zeros(int(indptr[-1]), dtype=np.int64)
        for node, neighbors in adjacency.items():
            start = indptr[node]
            indices[start : start + len(neighbors)] = sorted(neighbors)
        return cls(indptr, indices)

    # ------------------------------------------------------------- sampling
    def _refresh_live(self, alive: np.ndarray) -> None:
        """Rebuild the live-edge CSR iff the alive mask changed."""
        key = alive.tobytes()
        if key == self._live_key:
            return
        with self.probe.span("csr_rebuild"):
            if bool(alive.all()):
                live_indptr, live_indices = self.indptr, self.indices
                live_degree = np.diff(self.indptr)
            else:
                edge_alive = alive[self.indices]
                live_degree = np.bincount(
                    self._edge_owner[edge_alive], minlength=self.n
                ).astype(np.int64)
                live_indptr = np.zeros(self.n + 1, dtype=np.int64)
                np.cumsum(live_degree, out=live_indptr[1:])
                # Boolean masking preserves CSR grouping: indices stay sorted
                # by owner, so the filtered array is already segment-aligned.
                live_indices = self.indices[edge_alive]
        self._live_key = key
        self._live_indptr = live_indptr
        self._live_indices = live_indices
        self._live_degree = live_degree

    def sample_peers(
        self, requesters: np.ndarray, alive: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        self._refresh_live(alive)
        if self._live_indices.size == 0:
            return np.full(requesters.size, -1, dtype=np.int64)
        degree = self._live_degree[requesters]
        draw = (rng.random(requesters.size) * degree).astype(np.int64)
        # Clamp the (probability-zero) draw == degree edge case, and keep
        # zero-degree gathers in bounds before masking them to -1.
        offset = np.minimum(draw, np.maximum(degree - 1, 0))
        slots = np.minimum(
            self._live_indptr[requesters] + offset, self._live_indices.size - 1
        )
        return np.where(degree > 0, self._live_indices[slots], -1)

    def _live_adjacency(self, alive: np.ndarray) -> Adjacency:
        self._refresh_live(alive)
        live_nodes = np.nonzero(alive)[0]
        indptr, indices = self._live_indptr, self._live_indices
        return {
            int(node): {int(peer) for peer in indices[indptr[node] : indptr[node + 1]]}
            for node in live_nodes
        }


def _min_label_components(u: np.ndarray, v: np.ndarray, n: int) -> np.ndarray:
    """Per-node component label via vectorised min-label propagation.

    Each node starts labelled with its own index; every pass pulls the
    minimum label across each edge and then pointer-jumps (``labels =
    labels[labels]``) until stable, so convergence needs O(log diameter)
    passes rather than O(diameter).  Isolated nodes keep their own index,
    i.e. they are singleton components — the same convention as
    :func:`repro.topology.connectivity.connected_components`.
    """
    labels = np.arange(n, dtype=np.int64)
    if u.size == 0:
        return labels
    while True:
        gathered = np.minimum(labels[u], labels[v])
        np.minimum.at(labels, u, gathered)
        np.minimum.at(labels, v, gathered)
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels[u], labels[v]):
            return labels


class TraceCSRTopology(_Topology):
    """A contact trace replayed as a per-round time-varying CSR graph.

    This is the vectorised counterpart of
    :class:`~repro.environments.TraceEnvironment`: round ``t`` happens at
    simulated time ``t * round_seconds``, the edges in range at that
    instant form the gossip graph, and the paper's "nearby group" is the
    connected components of the *union* of every edge seen in the last
    ``group_window_seconds``.

    The trace's merged contact intervals are held as flat NumPy arrays
    ``(u, v, start, end)``; the backend calls :meth:`set_round` before each
    kernel step, and the per-round live graph is materialised on demand as
    an ordinary :class:`CSRTopology` (one vectorised interval mask + one
    ``from_edges`` build, LRU-cached per round, so multi-seed sweeps that
    share the topology compile each round once).  ``sample_peers`` /
    ``sample_matching`` then reuse ``CSRTopology``'s live-edge rebuild
    unchanged, and group labels come from a vectorised min-label component
    pass over the window-union edges.

    Parameters
    ----------
    trace:
        The :class:`~repro.mobility.traces.ContactTrace` to replay.
    round_seconds:
        Simulated seconds per gossip round (the paper gossips every 30 s).
    group_window_seconds:
        Length of the group-union window (0 groups by the instantaneous
        graph, like the agent environment).
    cache_rounds:
        Number of per-round compiled graphs kept in each LRU cache.
    """

    def __init__(
        self,
        trace,
        *,
        round_seconds: float = 30.0,
        group_window_seconds: float = 600.0,
        cache_rounds: int = 32,
    ):
        if round_seconds <= 0:
            raise ValueError("round_seconds must be positive")
        if group_window_seconds < 0:
            raise ValueError("group_window_seconds must be non-negative")
        if cache_rounds < 1:
            raise ValueError("cache_rounds must be >= 1")
        self.n = int(trace.n_devices)
        self.round_seconds = float(round_seconds)
        self.group_window_seconds = float(group_window_seconds)
        self.total_rounds = int(trace.duration // self.round_seconds) + 1
        self._cache_rounds = int(cache_rounds)
        records = trace.records
        self._u = np.fromiter((r.a for r in records), dtype=np.int64, count=len(records))
        self._v = np.fromiter((r.b for r in records), dtype=np.int64, count=len(records))
        self._start = np.fromiter(
            (r.start for r in records), dtype=float, count=len(records)
        )
        self._end = np.fromiter((r.end for r in records), dtype=float, count=len(records))
        self._round = 0
        self._csr_cache: "OrderedDict[int, CSRTopology]" = OrderedDict()
        self._labels_by_round: "OrderedDict[int, np.ndarray]" = OrderedDict()

    # ---------------------------------------------------------------- rounds
    def set_round(self, round_index: int) -> None:
        """Select the round whose contact graph subsequent calls sample."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        self._round = int(round_index)

    def time_of_round(self, round_index: int) -> float:
        """Simulated time at which ``round_index`` happens."""
        return round_index * self.round_seconds

    def _round_csr(self, round_index: int) -> CSRTopology:
        """The instantaneous contact graph of one round (LRU-cached)."""
        cached = self._csr_cache.get(round_index)
        if cached is not None:
            self._csr_cache.move_to_end(round_index)
            cached.probe = self.probe
            return cached
        with self.probe.span("csr_rebuild", round=round_index):
            time = self.time_of_round(round_index)
            active = (self._start <= time) & (time < self._end)
            csr = CSRTopology.from_edges(self._u[active], self._v[active], self.n)
        csr.probe = self.probe
        self._csr_cache[round_index] = csr
        while len(self._csr_cache) > self._cache_rounds:
            self._csr_cache.popitem(last=False)
        return csr

    def _union_labels(self, round_index: int) -> np.ndarray:
        """Component labels of the full window-union graph (LRU-cached).

        Matches ``TraceEnvironment.groups``: the union covers every edge
        overlapping ``[time - window, time + 1e-9)`` regardless of which
        hosts are currently alive (a dead host can still bridge a group),
        and the intersection with the live set happens per call in
        :meth:`component_labels`.
        """
        cached = self._labels_by_round.get(round_index)
        if cached is not None:
            self._labels_by_round.move_to_end(round_index)
            return cached
        with self.probe.span("component_labelling", round=round_index):
            time = self.time_of_round(round_index)
            in_window = (self._start < time + 1e-9) & (
                self._end > time - self.group_window_seconds
            )
            labels = _min_label_components(self._u[in_window], self._v[in_window], self.n)
        self._labels_by_round[round_index] = labels
        while len(self._labels_by_round) > self._cache_rounds:
            self._labels_by_round.popitem(last=False)
        return labels

    # ------------------------------------------------------------- sampling
    def sample_peers(
        self, requesters: np.ndarray, alive: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return self._round_csr(self._round).sample_peers(requesters, alive, rng)

    def _live_adjacency(self, alive: np.ndarray) -> Adjacency:
        return self._round_csr(self._round)._live_adjacency(alive)

    # ----------------------------------------------------------- components
    def component_labels(self, alive: np.ndarray):
        """``(labels, sizes)`` of the window-union groups among live hosts.

        Groups are the full-union components intersected with the live
        set (empty intersections dropped, exactly like the agent
        environment's group rule), relabelled ``0..k-1``; a live host with
        no window contacts is its own group of one.
        """
        full = self._union_labels(self._round)
        live = np.nonzero(alive)[0]
        labels = np.full(self.n, -1, dtype=np.int64)
        if live.size == 0:
            return labels, np.zeros(0, dtype=np.int64)
        unique, remapped = np.unique(full[live], return_inverse=True)
        labels[live] = remapped
        sizes = np.bincount(remapped, minlength=unique.size).astype(np.int64)
        return labels, sizes

    def components(self, alive: np.ndarray) -> List[Set[int]]:
        labels, sizes = self.component_labels(alive)
        parts: List[Set[int]] = [set() for _ in range(sizes.size)]
        for host in np.nonzero(alive)[0]:
            parts[labels[host]].add(int(host))
        return parts


class GridRingTopology(_Topology):
    """Spatial gossip on a ``width`` × ``height`` grid with 1/d² long links.

    The vectorised realisation of
    :class:`~repro.environments.SpatialGridEnvironment`: a gossip peer is
    found by sampling an L1 distance ``d ∝ 1/d²`` and then a uniform live
    host on the ring at exactly that distance.  (The agent environment can
    also *walk* to the peer hop by hop; the walk's endpoint distribution
    is an approximation of this ring draw, which is the model's
    idealisation — see DESIGN.md §10.)

    Sampling is rejection-based: the L1 circle of radius ``d`` has exactly
    ``4·d`` lattice offsets, enumerated arithmetically, so an attempt
    draws ``(d, offset)``, maps it to a grid cell and accepts when the
    cell is in bounds and alive.  Conditioned on acceptance the peer is
    uniform on the live in-bounds ring, matching the environment's
    idealised rule; hosts whose attempts all fail sit the round out.

    Parameters
    ----------
    width, height:
        Grid dimensions; host ``i`` sits at row-major position
        ``(i % width, i // width)``.
    max_distance:
        Upper bound on the sampled distance; defaults to the grid
        diameter, like the agent environment.
    attempts:
        Distance draws per requesting host per round (the agent
        environment retries 4 times per requested peer).
    offset_tries:
        Offset draws per sampled distance.  The distance stays *fixed*
        across these inner tries so that a boundary host — whose L1 ring
        is partly out of bounds — keeps the full 1/d² weight on its
        sampled distance instead of down-weighting it by ring occupancy;
        only when every try misses is the distance itself redrawn, which
        mirrors the agent environment's attempt-level retry.
    """

    def __init__(
        self,
        width: int,
        height: int,
        *,
        max_distance: Optional[int] = None,
        attempts: int = 4,
        offset_tries: int = 8,
    ):
        if width < 1 or height < 1:
            raise ValueError("grid dimensions must be positive")
        if attempts < 1 or offset_tries < 1:
            raise ValueError("attempts and offset_tries must be >= 1")
        self.width = int(width)
        self.height = int(height)
        self.n = self.width * self.height
        diameter = (width - 1) + (height - 1)
        self.max_distance = int(max_distance) if max_distance is not None else max(1, diameter)
        if self.max_distance < 1:
            raise ValueError("max_distance must be >= 1")
        self.attempts = int(attempts)
        self.offset_tries = int(offset_tries)
        hosts = np.arange(self.n, dtype=np.int64)
        self._col = hosts % self.width
        self._row = hosts // self.width
        distances = np.arange(1, self.max_distance + 1, dtype=float)
        weights = 1.0 / distances**2
        self._distance_probabilities = weights / weights.sum()
        self._grid_adjacency: Optional[Adjacency] = None

    # ------------------------------------------------------------- sampling
    def sample_peers(
        self, requesters: np.ndarray, alive: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        targets = np.full(requesters.size, -1, dtype=np.int64)
        pending = np.arange(requesters.size)
        for _ in range(self.attempts):
            if pending.size == 0:
                break
            d = (
                rng.choice(
                    self.max_distance, size=pending.size, p=self._distance_probabilities
                ).astype(np.int64)
                + 1
            )
            # Inner tries redraw the offset while keeping d fixed, so the
            # 1/d² distance law survives boundary clipping (see class doc).
            trying = np.arange(pending.size)
            for _ in range(self.offset_tries):
                hosts = requesters[pending[trying]]
                d_try = d[trying]
                # The L1 circle of radius d has 4d offsets; quadrant q and
                # step s enumerate it as (d-s, s) rotated 90° per quadrant.
                k = (rng.random(trying.size) * (4 * d_try)).astype(np.int64)
                q, s = k // d_try, k % d_try
                d_col = np.select(
                    [q == 0, q == 1, q == 2], [d_try - s, -s, s - d_try], default=s
                )
                d_row = np.select(
                    [q == 0, q == 1, q == 2], [s, d_try - s, -s], default=s - d_try
                )
                col = self._col[hosts] + d_col
                row = self._row[hosts] + d_row
                in_bounds = (
                    (col >= 0) & (col < self.width) & (row >= 0) & (row < self.height)
                )
                peer = np.where(in_bounds, row * self.width + col, 0)
                hit = in_bounds & alive[peer]
                targets[pending[trying[hit]]] = peer[hit]
                trying = trying[~hit]
                if trying.size == 0:
                    break
            resolved = targets[pending] >= 0
            pending = pending[~resolved]
        return targets

    def _live_adjacency(self, alive: np.ndarray) -> Adjacency:
        # Groups follow the *grid-edge* connectivity, exactly like the agent
        # environment (long 1/d² links are transient routes, not edges).
        if self._grid_adjacency is None:
            from repro.topology.graphs import grid_graph

            self._grid_adjacency = grid_graph(self.width, self.height)
        live = np.nonzero(alive)[0]
        return {
            int(node): {peer for peer in self._grid_adjacency[int(node)] if alive[peer]}
            for node in live
        }
