"""Abstract interfaces implemented by every aggregation protocol.

Two interaction styles appear in the paper:

* **Push gossip** (Figures 1, 3, 4 and 5): each round a host emits payloads
  to one or more peers (and possibly to itself), then folds everything it
  received into its state.  :class:`AggregationProtocol` models this with the
  ``begin_round`` / ``make_payloads`` / ``integrate`` / ``finalize_round``
  hooks.

* **Push/pull exchange** (the Karp et al. optimisation used throughout the
  evaluation): a host and its selected peer atomically reconcile their
  states.  Protocols that support this additionally implement
  :class:`ExchangeProtocol`'s ``exchange`` hook, and the engine can be run in
  ``mode="exchange"``.

Every protocol also declares which *aggregate* it estimates (``"average"``,
``"count"`` or ``"sum"``) so the engine knows which ground truth to compare
estimates against.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.message import estimate_payload_size

__all__ = ["AggregationProtocol", "ExchangeProtocol", "AGGREGATE_KINDS"]

#: Aggregate kinds a protocol may declare.
AGGREGATE_KINDS = ("average", "count", "sum", "max", "min")


class AggregationProtocol(abc.ABC):
    """Base class for push-gossip aggregation protocols.

    Subclasses implement the per-host state machine; the engine owns peer
    selection (delegated to the gossip environment), message delivery,
    failures and metric collection.

    Class attributes
    ----------------
    name:
        Human-readable protocol name used in results and rendered tables.
    aggregate:
        One of :data:`AGGREGATE_KINDS`; selects the ground truth the engine
        compares estimates against.
    fanout:
        Number of peers each host contacts per round (1 for classic gossip,
        ``N`` for the Full-Transfer optimisation's parcels).
    """

    name: str = "protocol"
    aggregate: str = "average"
    fanout: int = 1

    # ------------------------------------------------------------------ state
    @abc.abstractmethod
    def create_state(self, host_id: int, value: float, rng: np.random.Generator) -> Any:
        """Create the protocol state for a (joining) host with ``value``."""

    # ------------------------------------------------------------- round hooks
    def begin_round(self, state: Any, round_index: int, rng: np.random.Generator) -> None:
        """Hook run for every live host before any messages are exchanged.

        Count-Sketch-Reset uses this to increment its counters; the epoch
        baseline uses it to restart the computation.  The default is a no-op.
        """

    @abc.abstractmethod
    def make_payloads(
        self,
        state: Any,
        peers: Sequence[int],
        rng: np.random.Generator,
    ) -> List[Tuple[Optional[int], Any]]:
        """Return ``(destination, payload)`` pairs to emit this round.

        ``peers`` are the peer identifiers the environment selected for this
        host (it may be empty when the host is isolated).  A destination of
        ``None`` addresses the host itself ("send to Self" in the paper's
        pseudocode) and costs no bandwidth.
        """

    @abc.abstractmethod
    def integrate(self, state: Any, payloads: Sequence[Any], rng: np.random.Generator) -> None:
        """Fold all payloads received during the round into ``state``."""

    def finalize_round(
        self, state: Any, received_count: int, rng: np.random.Generator
    ) -> None:
        """Hook run after integration; ``received_count`` includes self-messages.

        Push-Sum-Revert applies its reversion step here (which also enables
        the adaptive per-indegree reversion variant).  The default is a no-op.
        """

    # --------------------------------------------------------------- estimates
    @abc.abstractmethod
    def estimate(self, state: Any) -> float:
        """The host's current estimate of the aggregate."""

    # ----------------------------------------------------------- conservation
    def payload_mass(self, payload: Any) -> Optional[float]:
        """Conserved mass carried by ``payload``, or ``None``.

        Mass-conserving protocols (the Push-Sum family) report the weight
        component of each payload so the engine's delivery layer can keep
        the mass-conservation ledger under lossy/latent networks (see
        DESIGN.md §8).  ``None`` (the default) means the protocol has no
        conserved quantity and the ledger stays off.
        """
        return None

    def state_mass(self, state: Any) -> Optional[float]:
        """Conserved mass held in ``state``, or ``None`` (see :meth:`payload_mass`)."""
        return None

    # ------------------------------------------------------------ introspection
    def payload_size(self, payload: Any) -> int:
        """Bytes a payload occupies on the radio; override for tighter models."""
        return estimate_payload_size(payload)

    def state_size(self, state: Any) -> int:
        """Bytes of protocol state stored at a host (storage-cost accounting)."""
        return estimate_payload_size(state)

    def describe(self) -> dict:
        """A dictionary of the protocol's salient parameters (for reports)."""
        return {"name": self.name, "aggregate": self.aggregate, "fanout": self.fanout}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.describe().items() if k != "name")
        return f"{type(self).__name__}({params})"


class ExchangeProtocol(AggregationProtocol):
    """A protocol that additionally supports pairwise push/pull exchanges.

    In ``mode="exchange"`` the engine pairs each host with one peer per
    round and calls :meth:`exchange` exactly once per pair; both states are
    mutated in place.  ``finalize_round`` is still called for every live host
    afterwards with the number of exchanges the host took part in.

    Subclasses whose message pattern is inherently push-only (e.g. the
    Full-Transfer optimisation) set :attr:`supports_exchange` to False so the
    engine rejects ``mode="exchange"`` up front.
    """

    #: Whether the engine may run this protocol in ``mode="exchange"``.
    supports_exchange: bool = True

    @abc.abstractmethod
    def exchange(self, state_a: Any, state_b: Any, rng: np.random.Generator) -> None:
        """Atomically reconcile two hosts' states (push/pull)."""

    def exchange_size(self, state_a: Any, state_b: Any) -> int:
        """Bytes sent each way during one exchange (default: state size)."""
        return self.state_size(state_a)
