"""The round-based simulation engine.

The engine follows the simulation methodology of the paper's evaluation
section: time advances in *rounds*; at every round each live host performs
the protocol's exchange with peers selected by the gossip environment.
Between rounds, scheduled events (silent failures, joins, value changes)
mutate the participant set — silently, exactly as a departing wireless
device would.

Two execution modes are supported:

* ``mode="push"`` — hosts emit payloads that are delivered at the end of
  the round (Figures 1, 3, 4, 5 of the paper);
* ``mode="exchange"`` — hosts perform atomic pairwise push/pull exchanges
  (the Karp et al. optimisation the evaluation uses for Push-Sum-Revert).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.simulator.host import Host
from repro.simulator.message import BandwidthMeter, Message
from repro.simulator.protocol import AggregationProtocol, ExchangeProtocol
from repro.simulator.result import RoundRecord, SimulationResult
from repro.simulator.rng import RandomStreams

__all__ = ["Simulation"]


class Simulation:
    """Drive one aggregation protocol over one gossip environment.

    Parameters
    ----------
    protocol:
        The aggregation protocol to execute (an
        :class:`~repro.simulator.protocol.AggregationProtocol`).
    environment:
        The gossip environment that selects peers each round (see
        :mod:`repro.environments`).
    values:
        Initial host values, one per host identifier ``0..n-1``.  For
        counting protocols this is typically a vector of ones.
    seed:
        Root seed for all randomness (peer selection, sketch identifiers,
        failures).  Identical seeds give identical runs.
    mode:
        ``"push"`` (message gossip) or ``"exchange"`` (pairwise push/pull).
        ``"exchange"`` requires the protocol to implement
        :class:`~repro.simulator.protocol.ExchangeProtocol`.
    events:
        Scheduled events; each must expose a ``round`` attribute and an
        ``apply(simulation, round_index)`` method (see :mod:`repro.failures`).
    group_relative:
        Compute each host's error against its *group's* aggregate rather than
        the global aggregate.  Requires an environment that provides groups
        (trace and neighbourhood environments); this is the error definition
        used for Fig 11.
    store_estimates:
        Retain every host's estimate in every round record (memory-hungry;
        intended for small runs and debugging).

    Examples
    --------
    >>> from repro.core import PushSumRevert
    >>> from repro.environments import UniformEnvironment
    >>> sim = Simulation(PushSumRevert(reversion=0.0), UniformEnvironment(64),
    ...                  values=[1.0] * 32 + [3.0] * 32, seed=3, mode="exchange")
    >>> result = sim.run(rounds=25)
    >>> round(result.final_truth(), 3)
    2.0
    """

    def __init__(
        self,
        protocol: AggregationProtocol,
        environment,
        values: Sequence[float],
        *,
        seed: int = 0,
        mode: str = "push",
        events: Optional[Iterable] = None,
        group_relative: bool = False,
        store_estimates: bool = False,
    ):
        if mode not in ("push", "exchange"):
            raise ValueError(f"unknown mode {mode!r}; expected 'push' or 'exchange'")
        if mode == "exchange" and not (
            isinstance(protocol, ExchangeProtocol)
            and getattr(protocol, "supports_exchange", True)
        ):
            raise TypeError(
                f"{type(protocol).__name__} does not support push/pull exchanges; "
                "use mode='push'"
            )
        if group_relative and not getattr(environment, "provides_groups", False):
            raise ValueError(
                "group_relative=True requires an environment that defines groups "
                "(trace or neighbourhood environments)"
            )
        self.protocol = protocol
        self.environment = environment
        self.mode = mode
        self.streams = RandomStreams(seed)
        self.events = sorted(events or [], key=lambda event: event.round)
        self.group_relative = group_relative
        self.store_estimates = store_estimates
        self.bandwidth = BandwidthMeter()
        self.hosts: Dict[int, Host] = {}
        self.round_index = 0
        self._next_host_id = 0
        self._init_rng = self.streams.get("init")
        self._peer_rng = self.streams.get("peers")
        self._protocol_rng = self.streams.get("protocol")
        for value in values:
            self.add_host(float(value), round_index=0)
        self.result = SimulationResult(
            protocol_name=protocol.name,
            aggregate=protocol.aggregate,
            seed=self.streams.seed,
            metadata={
                "mode": mode,
                "environment": type(environment).__name__,
                "n_initial": len(self.hosts),
                "protocol_params": protocol.describe(),
            },
        )

    # ----------------------------------------------------------- population
    def add_host(self, value: float, round_index: Optional[int] = None) -> Host:
        """Create a new live host with ``value`` and protocol state."""
        if round_index is None:
            round_index = self.round_index
        host_id = self._next_host_id
        self._next_host_id += 1
        host = Host(host_id=host_id, value=value, joined_round=round_index)
        host.state = self.protocol.create_state(host_id, value, self._init_rng)
        self.hosts[host_id] = host
        if hasattr(self.environment, "register_host"):
            self.environment.register_host(host_id)
        return host

    def fail_host(self, host_id: int, round_index: Optional[int] = None) -> None:
        """Silently fail ``host_id`` (it stops sending, receiving and counting)."""
        if round_index is None:
            round_index = self.round_index
        self.hosts[host_id].fail(round_index)

    def alive_hosts(self) -> List[Host]:
        """Live hosts in identifier order."""
        return [host for host in self.hosts.values() if host.alive]

    def alive_ids(self) -> List[int]:
        """Identifiers of live hosts in ascending order."""
        return [host.host_id for host in self.hosts.values() if host.alive]

    # ----------------------------------------------------------------- truth
    def _truth_for(self, host_ids: Sequence[int]) -> float:
        """Correct aggregate over ``host_ids`` for the protocol's aggregate kind."""
        if not host_ids:
            return float("nan")
        kind = self.protocol.aggregate
        if kind == "count":
            return float(len(host_ids))
        values = [self.hosts[host_id].value for host_id in host_ids]
        if kind == "sum":
            return float(sum(values))
        if kind == "average":
            return float(sum(values) / len(values))
        if kind == "max":
            return float(max(values))
        if kind == "min":
            return float(min(values))
        raise ValueError(f"unknown aggregate kind {kind!r}")

    # ------------------------------------------------------------------ run
    def run(self, rounds: int) -> SimulationResult:
        """Execute ``rounds`` additional rounds and return the result so far."""
        for _ in range(rounds):
            self.step()
        return self.result

    def step(self) -> RoundRecord:
        """Execute exactly one gossip round and return its record."""
        t = self.round_index
        self._apply_events(t)
        alive = self.alive_ids()
        alive_set = set(alive)
        received_counts: Dict[int, int] = {host_id: 0 for host_id in alive}

        for host_id in alive:
            self.protocol.begin_round(self.hosts[host_id].state, t, self._protocol_rng)

        if self.mode == "push":
            self._push_round(alive, alive_set, received_counts, t)
        else:
            self._exchange_round(alive, alive_set, received_counts, t)

        for host_id in alive:
            self.protocol.finalize_round(
                self.hosts[host_id].state, received_counts[host_id], self._protocol_rng
            )

        record = self._record_round(alive, t)
        self.result.append(record)
        self.round_index += 1
        return record

    # ----------------------------------------------------------- round bodies
    def _push_round(
        self,
        alive: List[int],
        alive_set: set,
        received_counts: Dict[int, int],
        t: int,
    ) -> None:
        inboxes: Dict[int, List] = {host_id: [] for host_id in alive}
        for host_id in alive:
            peers = self.environment.select_peers(
                host_id, alive_set, t, self.protocol.fanout, self._peer_rng
            )
            payloads = self.protocol.make_payloads(
                self.hosts[host_id].state, peers, self._protocol_rng
            )
            for destination, payload in payloads:
                target = host_id if destination is None else destination
                message = Message(host_id, target, payload, t)
                self.bandwidth.record(message, self.protocol.payload_size(payload))
                if target in alive_set:
                    inboxes[target].append(payload)
                    received_counts[target] += 1
                # Payloads addressed to failed hosts are silently lost: this is
                # exactly the mass-leaves-the-system behaviour of a silent
                # departure mid-computation.
        for host_id in alive:
            self.protocol.integrate(
                self.hosts[host_id].state, inboxes[host_id], self._protocol_rng
            )

    def _exchange_round(
        self,
        alive: List[int],
        alive_set: set,
        received_counts: Dict[int, int],
        t: int,
    ) -> None:
        order = list(alive)
        self._peer_rng.shuffle(order)
        for host_id in order:
            if not self.hosts[host_id].alive:
                continue
            peers = self.environment.select_peers(host_id, alive_set, t, 1, self._peer_rng)
            if not peers:
                continue
            peer_id = peers[0]
            if peer_id == host_id or peer_id not in alive_set:
                continue
            state_a = self.hosts[host_id].state
            state_b = self.hosts[peer_id].state
            size = self.protocol.exchange_size(state_a, state_b)
            self.protocol.exchange(state_a, state_b, self._protocol_rng)
            self.bandwidth.record_exchange(t, host_id, peer_id, size)
            received_counts[host_id] += 1
            received_counts[peer_id] += 1

    # --------------------------------------------------------------- metrics
    def _record_round(self, alive: List[int], t: int) -> RoundRecord:
        estimates = {
            host_id: float(self.protocol.estimate(self.hosts[host_id].state))
            for host_id in alive
        }
        mean_group_size: Optional[float] = None
        if self.group_relative:
            groups = self.environment.groups(set(alive), t)
            truth_by_host: Dict[int, float] = {}
            sizes: List[int] = []
            for group in groups:
                members = [host_id for host_id in group if host_id in estimates]
                if not members:
                    continue
                group_truth = self._truth_for(members)
                sizes.append(len(members))
                for member in members:
                    truth_by_host[member] = group_truth
            mean_group_size = float(np.mean(sizes)) if sizes else 0.0
            deltas = [
                estimates[host_id] - truth_by_host[host_id]
                for host_id in estimates
                if host_id in truth_by_host
            ]
            truth = float(np.mean(list(truth_by_host.values()))) if truth_by_host else float("nan")
        else:
            truth = self._truth_for(alive)
            deltas = [estimate - truth for estimate in estimates.values()]

        if deltas:
            deltas_arr = np.asarray(deltas, dtype=float)
            stddev_error = float(np.sqrt(np.mean(deltas_arr**2)))
            max_abs_error = float(np.max(np.abs(deltas_arr)))
            mean_abs_error = float(np.mean(np.abs(deltas_arr)))
        else:
            stddev_error = max_abs_error = mean_abs_error = float("nan")
        mean_estimate = float(np.mean(list(estimates.values()))) if estimates else float("nan")

        return RoundRecord(
            round_index=t,
            truth=truth,
            n_alive=len(alive),
            mean_estimate=mean_estimate,
            stddev_error=stddev_error,
            max_abs_error=max_abs_error,
            mean_abs_error=mean_abs_error,
            bytes_sent=self.bandwidth.bytes_in_round(t),
            estimates=dict(estimates) if self.store_estimates else None,
            group_sizes=mean_group_size,
        )

    # ---------------------------------------------------------------- events
    def _apply_events(self, t: int) -> None:
        for event in self.events:
            if event.round == t:
                event.apply(self, t)
