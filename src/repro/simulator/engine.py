"""The round-based simulation engine.

The engine follows the simulation methodology of the paper's evaluation
section: time advances in *rounds*; at every round each live host performs
the protocol's exchange with peers selected by the gossip environment.
Between rounds, scheduled events (silent failures, joins, value changes)
mutate the participant set — silently, exactly as a departing wireless
device would.

Two execution modes are supported:

* ``mode="push"`` — hosts emit payloads that are delivered at the end of
  the round (Figures 1, 3, 4, 5 of the paper);
* ``mode="exchange"`` — hosts perform atomic pairwise push/pull exchanges
  (the Karp et al. optimisation the evaluation uses for Push-Sum-Revert).

With a :mod:`repro.network` model installed, delivery is no longer
instant or reliable: in push mode every non-self message is planned by
the model — delivered this round, deferred ``d`` rounds through the
in-flight :class:`~repro.network.DeliveryQueue`, or lost — and in
exchange mode a lossy link makes the atomic exchange simply not happen
(latency-capable models are rejected up front: an atomic push/pull
cannot be deferred).  For mass-conserving protocols the engine keeps a
:class:`~repro.network.MassLedger` and asserts every round that mass at
hosts + mass in flight == mass created − mass lost (DESIGN.md §8).
Without a model the engine follows the original perfect-delivery code
path bit for bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.network.delivery import DeliveryQueue, InFlightMessage, MassLedger
from repro.metrics.bandwidth import DeliveryMeter
from repro.obs.probe import NULL_PROBE
from repro.simulator.host import Host
from repro.simulator.message import BandwidthMeter, Message
from repro.simulator.protocol import AggregationProtocol, ExchangeProtocol
from repro.simulator.result import RoundRecord, SimulationResult
from repro.simulator.rng import RandomStreams

__all__ = ["Simulation"]


class Simulation:
    """Drive one aggregation protocol over one gossip environment.

    Parameters
    ----------
    protocol:
        The aggregation protocol to execute (an
        :class:`~repro.simulator.protocol.AggregationProtocol`).
    environment:
        The gossip environment that selects peers each round (see
        :mod:`repro.environments`).
    values:
        Initial host values, one per host identifier ``0..n-1``.  For
        counting protocols this is typically a vector of ones.
    seed:
        Root seed for all randomness (peer selection, sketch identifiers,
        failures).  Identical seeds give identical runs.
    mode:
        ``"push"`` (message gossip) or ``"exchange"`` (pairwise push/pull).
        ``"exchange"`` requires the protocol to implement
        :class:`~repro.simulator.protocol.ExchangeProtocol`.
    events:
        Scheduled events; each must expose a ``round`` attribute and an
        ``apply(simulation, round_index)`` method (see :mod:`repro.failures`).
    network:
        A :class:`~repro.network.NetworkModel` deciding the fate of every
        non-self message (loss, delay, budget drops), or ``None`` (the
        default) for the original instant-and-reliable delivery.  All
        network randomness comes from the dedicated ``"network"`` stream,
        so installing a model never perturbs peer selection or protocol
        draws.  Latency-capable models require ``mode="push"``.
    group_relative:
        Compute each host's error against its *group's* aggregate rather than
        the global aggregate.  Requires an environment that provides groups
        (trace and neighbourhood environments); this is the error definition
        used for Fig 11.
    store_estimates:
        Retain every host's estimate in every round record (memory-hungry;
        intended for small runs and debugging).
    probe:
        A :class:`repro.obs.Probe` receiving round/phase spans, membership
        and mass-check events, and per-round delivery counters; defaults
        to the zero-cost :data:`repro.obs.NULL_PROBE`.

    Examples
    --------
    >>> from repro.core import PushSumRevert
    >>> from repro.environments import UniformEnvironment
    >>> sim = Simulation(PushSumRevert(reversion=0.0), UniformEnvironment(64),
    ...                  values=[1.0] * 32 + [3.0] * 32, seed=3, mode="exchange")
    >>> result = sim.run(rounds=25)
    >>> round(result.final_truth(), 3)
    2.0
    """

    #: Whether this engine can realise an exchange across a delivery delay.
    #: The round loop cannot (an atomic push/pull has no "later"), so it
    #: rejects latency-capable models in exchange mode up front; the event
    #: engine (:class:`repro.events.EventSimulation`) defers exchanges as
    #: request/reply events and overrides this to lift the rejection.
    _defers_exchange = False

    def __init__(
        self,
        protocol: AggregationProtocol,
        environment,
        values: Sequence[float],
        *,
        seed: int = 0,
        mode: str = "push",
        events: Optional[Iterable] = None,
        network=None,
        group_relative: bool = False,
        store_estimates: bool = False,
        probe=None,
    ):
        if mode not in ("push", "exchange"):
            raise ValueError(f"unknown mode {mode!r}; expected 'push' or 'exchange'")
        if (
            network is not None
            and mode == "exchange"
            and getattr(network, "has_latency", False)
            and not self._defers_exchange
        ):
            raise ValueError(
                f"network model {getattr(network, 'name', type(network).__name__)!r} can delay "
                "delivery, but mode='exchange' performs atomic push/pull exchanges that the "
                "round engine cannot defer; use the event engine (engine='events'), "
                "mode='push', or a loss-only network model"
            )
        if mode == "exchange" and not (
            isinstance(protocol, ExchangeProtocol)
            and getattr(protocol, "supports_exchange", True)
        ):
            raise TypeError(
                f"{type(protocol).__name__} does not support push/pull exchanges; "
                "use mode='push'"
            )
        if group_relative and not getattr(environment, "provides_groups", False):
            raise ValueError(
                "group_relative=True requires an environment that defines groups "
                "(trace or neighbourhood environments)"
            )
        self.protocol = protocol
        self.environment = environment
        self.mode = mode
        self.streams = RandomStreams(seed)
        self.events = sorted(events or [], key=lambda event: event.round)
        self.group_relative = group_relative
        self.store_estimates = store_estimates
        #: Instrumentation sink (repro.obs).  Probes only observe — they
        #: never draw from an RNG stream — so any probe leaves the run
        #: bit-identical to the NULL_PROBE default.
        self.probe = probe if probe is not None else NULL_PROBE
        self.bandwidth = BandwidthMeter()
        self.network = network
        self.delivery = DeliveryMeter()
        self.mass_ledger = MassLedger()
        self._in_flight = DeliveryQueue()
        self._network_rng = self.streams.get("network") if network is not None else None
        self.hosts: Dict[int, Host] = {}
        self.round_index = 0
        self._next_host_id = 0
        self._init_rng = self.streams.get("init")
        self._peer_rng = self.streams.get("peers")
        self._protocol_rng = self.streams.get("protocol")
        for value in values:
            self.add_host(float(value), round_index=0)
        # Mass conservation is tracked whenever the network can reorder or
        # drop deliveries and the protocol exposes a conserved quantity.
        self._track_mass = False
        if network is not None and self.hosts:
            probe = next(iter(self.hosts.values()))
            if self.protocol.state_mass(probe.state) is not None:
                self._track_mass = True
                self.mass_ledger.open(self._total_state_mass())
        metadata = {
            "mode": mode,
            "environment": type(environment).__name__,
            "n_initial": len(self.hosts),
            "protocol_params": protocol.describe(),
        }
        if network is not None:
            metadata["network"] = network.describe()
        self.result = SimulationResult(
            protocol_name=protocol.name,
            aggregate=protocol.aggregate,
            seed=self.streams.seed,
            metadata=metadata,
        )

    # ----------------------------------------------------------- population
    def add_host(self, value: float, round_index: Optional[int] = None) -> Host:
        """Create a new live host with ``value`` and protocol state."""
        if round_index is None:
            round_index = self.round_index
        host_id = self._next_host_id
        self._next_host_id += 1
        host = Host(host_id=host_id, value=value, joined_round=round_index)
        host.state = self.protocol.create_state(host_id, value, self._init_rng)
        self.hosts[host_id] = host
        if hasattr(self.environment, "register_host"):
            self.environment.register_host(host_id)
        if self.probe.enabled and round_index > 0:
            self.probe.event("membership", action="join", host=host_id, round=round_index)
        return host

    def fail_host(self, host_id: int, round_index: Optional[int] = None) -> None:
        """Silently fail ``host_id`` (it stops sending, receiving and counting)."""
        if round_index is None:
            round_index = self.round_index
        self.hosts[host_id].fail(round_index)
        if self.probe.enabled:
            self.probe.event("membership", action="fail", host=host_id, round=round_index)

    def alive_hosts(self) -> List[Host]:
        """Live hosts in identifier order."""
        return [host for host in self.hosts.values() if host.alive]

    def alive_ids(self) -> List[int]:
        """Identifiers of live hosts in ascending order."""
        return [host.host_id for host in self.hosts.values() if host.alive]

    # ----------------------------------------------------------------- truth
    def _truth_for(self, host_ids: Sequence[int]) -> float:
        """Correct aggregate over ``host_ids`` for the protocol's aggregate kind."""
        if not host_ids:
            return float("nan")
        kind = self.protocol.aggregate
        if kind == "count":
            return float(len(host_ids))
        values = [self.hosts[host_id].value for host_id in host_ids]
        if kind == "sum":
            return float(sum(values))
        if kind == "average":
            return float(sum(values) / len(values))
        if kind == "max":
            return float(max(values))
        if kind == "min":
            return float(min(values))
        raise ValueError(f"unknown aggregate kind {kind!r}")

    # ------------------------------------------------------------------ run
    def run(self, rounds: int) -> SimulationResult:
        """Execute ``rounds`` additional rounds and return the result so far."""
        for _ in range(rounds):
            self.step()
        return self.result

    def step(self) -> RoundRecord:
        """Execute exactly one gossip round and return its record."""
        t = self.round_index
        probe = self.probe
        with probe.span("round", round=t):
            mass_checkpoint = self._total_state_mass() if self._track_mass else 0.0
            with probe.span("events"):
                self._apply_events(t)
            if self._track_mass:
                # Events may mint mass (joins) or drop it (graceful departures
                # with no survivor); both are deliberate, not leaks.
                mass_checkpoint = self._record_mass_injection(mass_checkpoint)
            if self.network is not None:
                self.network.begin_round(t)
            alive = self.alive_ids()
            alive_set = set(alive)
            received_counts: Dict[int, int] = {host_id: 0 for host_id in alive}

            with probe.span("begin_round"):
                for host_id in alive:
                    self.protocol.begin_round(
                        self.hosts[host_id].state, t, self._protocol_rng
                    )
            if self._track_mass:
                # Epoch restarts re-mint mass inside begin_round by design.
                mass_checkpoint = self._record_mass_injection(mass_checkpoint)

            if self.mode == "push":
                with probe.span("push"):
                    self._push_round(alive, alive_set, received_counts, t)
            else:
                with probe.span("exchange"):
                    self._exchange_round(alive, alive_set, received_counts, t)
            if self._track_mass:
                # The round body may only move mass (host→flight→host) or lose
                # it through the network — both already on the ledger — so the
                # books must balance before the protocol's own finalize step.
                mass_checkpoint = self._total_state_mass()
                self.mass_ledger.check(
                    mass_checkpoint + self._in_flight.in_flight_mass, round_index=t
                )
                if probe.enabled:
                    probe.event(
                        "mass_check",
                        round=t,
                        at_hosts=mass_checkpoint,
                        in_flight=self._in_flight.in_flight_mass,
                    )

            with probe.span("finalize"):
                for host_id in alive:
                    self.protocol.finalize_round(
                        self.hosts[host_id].state,
                        received_counts[host_id],
                        self._protocol_rng,
                    )
            if self._track_mass:
                # Reversion injects mass towards each initial value by design.
                self._record_mass_injection(mass_checkpoint)

            if self.network is not None:
                self.delivery.snapshot_in_flight(t, self._in_flight.in_flight)
            with probe.span("record"):
                record = self._record_round(alive, t)
            self.result.append(record)
            self.round_index += 1
        if probe.enabled:
            probe.event(
                "round_end",
                round=t,
                n_alive=record.n_alive,
                max_abs_error=record.max_abs_error,
                messages_delivered=record.messages_delivered,
                messages_lost=record.messages_lost,
                bytes_sent=record.bytes_sent,
            )
            probe.gauge("n_alive", record.n_alive)
        return record

    # ------------------------------------------------------ mass conservation
    def _total_state_mass(self) -> float:
        """Conserved mass at every host — including the mass stranded at
        silently departed hosts, which stays in their frozen state."""
        return sum(
            self.protocol.state_mass(host.state) or 0.0 for host in self.hosts.values()
        )

    def _record_mass_injection(self, previous_total: float) -> float:
        """Attribute any state-mass change since ``previous_total`` to the
        protocol/events (deliberate injection) and return the new total."""
        total = self._total_state_mass()
        if total != previous_total:
            self.mass_ledger.record_injected(total - previous_total)
        return total

    def _record_lost_message(self, round_index: int, mass: Optional[float]) -> None:
        """Account one lost message (and its conserved mass, if any)."""
        self.delivery.record_lost(round_index, mass=mass or 0.0)
        if self._track_mass and mass is not None:
            self.mass_ledger.record_lost(mass)

    # ----------------------------------------------------------- round bodies
    def _push_round(
        self,
        alive: List[int],
        alive_set: set,
        received_counts: Dict[int, int],
        t: int,
    ) -> None:
        inboxes: Dict[int, List] = {host_id: [] for host_id in alive}
        if self.network is not None:
            # Deliver the in-flight messages that mature this round before
            # this round's sends, so their payloads integrate alongside them.
            for item in self._in_flight.due(t):
                if item.destination in alive_set:
                    inboxes[item.destination].append(item.payload)
                    received_counts[item.destination] += 1
                    self.delivery.record_delivered(t)
                else:
                    # Matured at a host that has since departed: lost, just
                    # like a same-round send to a failed host.
                    self._record_lost_message(t, item.mass)
        for host_id in alive:
            peers = self.environment.select_peers(
                host_id, alive_set, t, self.protocol.fanout, self._peer_rng
            )
            payloads = self.protocol.make_payloads(
                self.hosts[host_id].state, peers, self._protocol_rng
            )
            for destination, payload in payloads:
                target = host_id if destination is None else destination
                message = Message(host_id, target, payload, t)
                size = self.protocol.payload_size(payload)
                self.bandwidth.record(message, size)
                if self.network is None:
                    if target in alive_set:
                        inboxes[target].append(payload)
                        received_counts[target] += 1
                    # Payloads addressed to failed hosts are silently lost:
                    # this is exactly the mass-leaves-the-system behaviour of
                    # a silent departure mid-computation.
                    continue
                if message.is_self_message:
                    # Self-messages never touch the radio; the network model
                    # cannot lose or delay them.
                    inboxes[host_id].append(payload)
                    received_counts[host_id] += 1
                    continue
                mass = self.protocol.payload_mass(payload)
                if target not in alive_set:
                    self._record_lost_message(t, mass)
                    continue
                delay = self.network.plan(host_id, target, t, size, self._network_rng)
                if delay is None:
                    self._record_lost_message(t, mass)
                elif delay == 0:
                    inboxes[target].append(payload)
                    received_counts[target] += 1
                    self.delivery.record_delivered(t)
                else:
                    self._in_flight.schedule(
                        InFlightMessage(
                            source=host_id,
                            destination=target,
                            payload=payload,
                            sent_round=t,
                            deliver_round=t + int(delay),
                            mass=mass,
                        )
                    )
        for host_id in alive:
            self.protocol.integrate(
                self.hosts[host_id].state, inboxes[host_id], self._protocol_rng
            )

    def _exchange_round(
        self,
        alive: List[int],
        alive_set: set,
        received_counts: Dict[int, int],
        t: int,
    ) -> None:
        order = list(alive)
        self._peer_rng.shuffle(order)
        for host_id in order:
            if not self.hosts[host_id].alive:
                continue
            peers = self.environment.select_peers(host_id, alive_set, t, 1, self._peer_rng)
            if not peers:
                continue
            peer_id = peers[0]
            if peer_id == host_id or peer_id not in alive_set:
                continue
            state_a = self.hosts[host_id].state
            state_b = self.hosts[peer_id].state
            size = self.protocol.exchange_size(state_a, state_b)
            if self.network is not None:
                delay = self.network.plan(host_id, peer_id, t, size, self._network_rng)
                if delay is None:
                    # A lossy link makes the atomic exchange not happen at
                    # all (both directions; mass is never at risk in
                    # exchange mode — see DESIGN.md §8).  The initiator's
                    # transmitted half still cost radio bytes, mirroring
                    # how lost push payloads stay on the bandwidth meter.
                    self.delivery.record_lost(t, 2)
                    self.bandwidth.record_lost_exchange(t, host_id, size)
                    continue
                if delay:
                    raise RuntimeError(  # pragma: no cover - rejected eagerly
                        f"network model {self.network.name!r} returned a delivery delay of "
                        f"{delay} rounds, but atomic push/pull exchanges cannot be deferred"
                    )
                self.delivery.record_delivered(t, 2)
            self.protocol.exchange(state_a, state_b, self._protocol_rng)
            self.bandwidth.record_exchange(t, host_id, peer_id, size)
            received_counts[host_id] += 1
            received_counts[peer_id] += 1

    # --------------------------------------------------------------- metrics
    def _record_round(self, alive: List[int], t: int) -> RoundRecord:
        estimates = {
            host_id: float(self.protocol.estimate(self.hosts[host_id].state))
            for host_id in alive
        }
        mean_group_size: Optional[float] = None
        if self.group_relative:
            groups = self.environment.groups(set(alive), t)
            truth_by_host: Dict[int, float] = {}
            sizes: List[int] = []
            for group in groups:
                members = [host_id for host_id in group if host_id in estimates]
                if not members:
                    continue
                group_truth = self._truth_for(members)
                sizes.append(len(members))
                for member in members:
                    truth_by_host[member] = group_truth
            mean_group_size = float(np.mean(sizes)) if sizes else 0.0
            deltas = [
                estimates[host_id] - truth_by_host[host_id]
                for host_id in estimates
                if host_id in truth_by_host
            ]
            truth = float(np.mean(list(truth_by_host.values()))) if truth_by_host else float("nan")
        else:
            truth = self._truth_for(alive)
            deltas = [estimate - truth for estimate in estimates.values()]

        if deltas:
            deltas_arr = np.asarray(deltas, dtype=float)
            stddev_error = float(np.sqrt(np.mean(deltas_arr**2)))
            max_abs_error = float(np.max(np.abs(deltas_arr)))
            mean_abs_error = float(np.mean(np.abs(deltas_arr)))
        else:
            stddev_error = max_abs_error = mean_abs_error = float("nan")
        mean_estimate = float(np.mean(list(estimates.values()))) if estimates else float("nan")

        return RoundRecord(
            round_index=t,
            truth=truth,
            n_alive=len(alive),
            mean_estimate=mean_estimate,
            stddev_error=stddev_error,
            max_abs_error=max_abs_error,
            mean_abs_error=mean_abs_error,
            bytes_sent=self.bandwidth.bytes_in_round(t),
            estimates=dict(estimates) if self.store_estimates else None,
            group_sizes=mean_group_size,
            messages_delivered=self.delivery.delivered_in_round(t),
            messages_lost=self.delivery.lost_in_round(t),
            messages_in_flight=self.delivery.in_flight_after_round(t),
        )

    # ---------------------------------------------------------------- events
    def _apply_events(self, t: int) -> None:
        for event in self.events:
            if event.round == t:
                event.apply(self, t)
