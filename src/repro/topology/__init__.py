"""Network topology generators and graph utilities.

Gossip environments are parameterised by *who can talk to whom*.  This
package provides the adjacency-structure generators used across the
experiments (complete graphs for uniform gossip, grids for spatial gossip,
random geometric graphs for wireless-range connectivity, Erdős–Rényi graphs
for sensitivity studies) and the graph utilities the protocols and metrics
need (connected components for the paper's "nearby group" definition, BFS
spanning trees for the TAG-style overlay baseline).

Graphs are represented as plain ``dict[int, set[int]]`` adjacency maps; the
helpers in :mod:`repro.topology.connectivity` operate on those maps and on
optional "alive" subsets so that failed hosts drop out of the structure.
"""

from repro.topology.connectivity import (
    bfs_distances,
    bfs_tree,
    connected_component,
    connected_components,
    induced_subgraph,
    is_connected,
    union_adjacency,
)
from repro.topology.graphs import (
    complete_graph,
    empty_graph,
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    ring_lattice,
    star_graph,
)

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "complete_graph",
    "connected_component",
    "connected_components",
    "empty_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "induced_subgraph",
    "is_connected",
    "random_geometric_graph",
    "ring_lattice",
    "star_graph",
    "union_adjacency",
]
