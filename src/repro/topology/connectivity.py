"""Connectivity utilities over adjacency maps.

These helpers implement the structural queries the rest of the system
needs:

* connected components restricted to the currently live hosts — this is how
  the trace environment computes the paper's "nearby group" (all hosts
  reachable over the union of edges seen in the last 10 minutes);
* BFS distances and BFS spanning trees — used by the TAG-style overlay
  baseline and by the Hops-Sampling size estimator;
* unions of adjacency maps over a time window.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

__all__ = [
    "induced_subgraph",
    "connected_component",
    "connected_components",
    "is_connected",
    "bfs_distances",
    "bfs_tree",
    "union_adjacency",
]

Adjacency = Dict[int, Set[int]]


def induced_subgraph(graph: Adjacency, nodes: Iterable[int]) -> Adjacency:
    """The subgraph induced by ``nodes`` (edges with both endpoints kept)."""
    keep = set(nodes)
    return {node: graph.get(node, set()) & keep for node in keep}


def connected_component(graph: Adjacency, start: int, alive: Optional[Set[int]] = None) -> Set[int]:
    """All nodes reachable from ``start`` (restricted to ``alive`` if given)."""
    if alive is not None and start not in alive:
        return set()
    if start not in graph and (alive is None or start in alive):
        return {start}
    visited = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.get(node, ()):
            if alive is not None and neighbor not in alive:
                continue
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return visited


def connected_components(graph: Adjacency, alive: Optional[Set[int]] = None) -> List[Set[int]]:
    """All connected components (restricted to ``alive`` if given).

    Isolated live nodes form singleton components — a wireless device with
    nobody in range is still its own "group of one" for error reporting.
    """
    nodes = set(graph) if alive is None else set(alive)
    remaining = set(nodes)
    components: List[Set[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = connected_component(graph, start, alive=nodes)
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Adjacency, alive: Optional[Set[int]] = None) -> bool:
    """Whether the (alive-restricted) graph has a single connected component."""
    nodes = set(graph) if alive is None else set(alive)
    if len(nodes) <= 1:
        return True
    return len(connected_component(graph, next(iter(nodes)), alive=nodes)) == len(nodes)


def bfs_distances(graph: Adjacency, source: int, alive: Optional[Set[int]] = None) -> Dict[int, int]:
    """Hop distance from ``source`` to every reachable (alive) node."""
    if alive is not None and source not in alive:
        return {}
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.get(node, ()):
            if alive is not None and neighbor not in alive:
                continue
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def bfs_tree(graph: Adjacency, root: int, alive: Optional[Set[int]] = None) -> Dict[int, Optional[int]]:
    """A BFS spanning tree rooted at ``root``: map node → parent (root → None).

    This is the flood-then-aggregate-up communication structure of the
    TAG-style overlay baseline: the request floods outward, establishing
    each host's parent as the node it first heard the request from.
    """
    if alive is not None and root not in alive:
        return {}
    parents: Dict[int, Optional[int]] = {root: None}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in graph.get(node, ()):
            if alive is not None and neighbor not in alive:
                continue
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def union_adjacency(graphs: Iterable[Adjacency]) -> Adjacency:
    """The union of several adjacency maps (edges present in any of them).

    The trace environment uses this to build the paper's group definition:
    "two hosts are nearby if there exists a path from one to the other over
    the union of all edges that have existed in the last 10 minutes."
    """
    union: Adjacency = {}
    for graph in graphs:
        for node, neighbors in graph.items():
            union.setdefault(node, set()).update(neighbors)
            for neighbor in neighbors:
                union.setdefault(neighbor, set()).add(node)
    return union
