"""Adjacency-map graph generators.

All generators return ``dict[int, set[int]]`` mapping each node identifier
to the set of its neighbours.  Edges are undirected: ``b in graph[a]``
implies ``a in graph[b]``.  Node identifiers are ``0..n-1``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "empty_graph",
    "complete_graph",
    "star_graph",
    "ring_lattice",
    "ring_lattice_edges",
    "grid_graph",
    "grid_edges",
    "erdos_renyi_graph",
    "erdos_renyi_edges",
    "random_geometric_graph",
    "grid_positions",
]

Adjacency = Dict[int, Set[int]]


def _check_count(n: int) -> None:
    if n < 0:
        raise ValueError(f"node count must be non-negative, got {n}")


def empty_graph(n: int) -> Adjacency:
    """``n`` isolated nodes and no edges."""
    _check_count(n)
    return {node: set() for node in range(n)}


def complete_graph(n: int) -> Adjacency:
    """Every pair of distinct nodes is connected (uniform-gossip topology)."""
    _check_count(n)
    nodes = set(range(n))
    return {node: nodes - {node} for node in range(n)}


def star_graph(n: int, center: int = 0) -> Adjacency:
    """Node ``center`` connected to every other node; no other edges.

    Models the single-coordinator deployments that the Kostoulas et al.
    baselines (Hops Sampling, Interval Density) assume.
    """
    _check_count(n)
    if n and not 0 <= center < n:
        raise ValueError(f"center {center} outside 0..{n - 1}")
    graph = empty_graph(n)
    for node in range(n):
        if node != center:
            graph[center].add(node)
            graph[node].add(center)
    return graph


def _edges_to_adjacency(n: int, u: np.ndarray, v: np.ndarray) -> Adjacency:
    """An adjacency map from unique undirected edge arrays."""
    graph = empty_graph(n)
    for a, b in zip(u.tolist(), v.tolist()):
        graph[a].add(b)
        graph[b].add(a)
    return graph


def _dedupe_edges(n: int, u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical (min, max) unique edges, self-loops dropped."""
    keep = u != v
    u, v = u[keep], v[keep]
    a, b = np.minimum(u, v), np.maximum(u, v)
    _unique, index = np.unique(a * n + b, return_index=True)
    return a[index], b[index]


def ring_lattice_edges(n: int, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """The unique undirected edges of :func:`ring_lattice`, as arrays.

    This closed-form enumeration is what lets the vectorised backend build
    a CSR topology for 10⁵-host rings without ever materialising the
    per-node adjacency sets.
    """
    _check_count(n)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    u = np.repeat(np.arange(n, dtype=np.int64), k)
    offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    return _dedupe_edges(n, u, (u + offsets) % n)


def ring_lattice(n: int, k: int = 1) -> Adjacency:
    """A ring where each node connects to its ``k`` nearest neighbours per side."""
    return _edges_to_adjacency(n, *ring_lattice_edges(n, k))


def grid_positions(width: int, height: int) -> Dict[int, Tuple[int, int]]:
    """Positions of nodes laid out row-major on a ``width`` × ``height`` grid."""
    if width < 0 or height < 0:
        raise ValueError("grid dimensions must be non-negative")
    return {row * width + col: (col, row) for row in range(height) for col in range(width)}


def grid_edges(
    width: int, height: int, diagonal: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """The unique undirected edges of :func:`grid_graph`, as arrays."""
    if width < 0 or height < 0:
        raise ValueError("grid dimensions must be non-negative")
    n = width * height
    if n == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    nodes = np.arange(n, dtype=np.int64)
    col, row = nodes % width, nodes // width
    offsets = [(1, 0), (0, 1)]
    if diagonal:
        offsets += [(1, 1), (1, -1)]
    sources, targets = [], []
    for d_col, d_row in offsets:
        n_col, n_row = col + d_col, row + d_row
        keep = (n_col >= 0) & (n_col < width) & (n_row >= 0) & (n_row < height)
        sources.append(nodes[keep])
        targets.append((n_row * width + n_col)[keep])
    return _dedupe_edges(n, np.concatenate(sources), np.concatenate(targets))


def grid_graph(width: int, height: int, diagonal: bool = False) -> Adjacency:
    """A 2-D grid with 4-connectivity (8-connectivity when ``diagonal``).

    This is the "hosts distributed evenly in a D-dimensional grid, able to
    communicate only with adjacent nodes" setting of the paper's spatial
    gossip discussion (Section IV-A).
    """
    return _edges_to_adjacency(width * height, *grid_edges(width, height, diagonal))


def erdos_renyi_edges(
    n: int, p: float, seed: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """The unique undirected edges of :func:`erdos_renyi_graph`, as arrays.

    Edges are drawn by geometric skip-sampling over the linearised upper
    triangle — O(edges) time and memory instead of materialising all
    n·(n−1)/2 candidate pairs, which is what makes 10⁴–10⁵-host G(n, p)
    scenarios buildable at all (the dense ``triu_indices`` form needs
    ~80 GB at n = 10⁵).
    """
    _check_count(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    empty = np.array([], dtype=np.int64)
    if n < 2 or p == 0.0:
        return empty, empty
    total = n * (n - 1) // 2
    if p == 1.0:
        positions = np.arange(total, dtype=np.int64)
    else:
        rng = np.random.default_rng(seed)
        chunks = []
        current = np.int64(-1)
        batch = max(1024, int(p * total * 1.1) + 16)
        while current < total - 1:
            gaps = rng.geometric(p, size=batch).astype(np.int64)
            steps = np.cumsum(gaps) + current
            chunks.append(steps[steps < total])
            current = steps[-1]
        positions = np.concatenate(chunks) if chunks else empty
    # Decode linear index L to (i, j): row i starts at i·(n−1) − i·(i−1)/2.
    row_index = np.arange(n, dtype=np.int64)
    starts = row_index * (n - 1) - (row_index * (row_index - 1)) // 2
    rows = np.searchsorted(starts, positions, side="right") - 1
    return rows, rows + 1 + (positions - starts[rows])


def erdos_renyi_graph(n: int, p: float, seed: Optional[int] = None) -> Adjacency:
    """G(n, p): each of the n·(n−1)/2 possible edges exists with probability ``p``."""
    return _edges_to_adjacency(n, *erdos_renyi_edges(n, p, seed))


def random_geometric_graph(
    n: int,
    radius: float,
    seed: Optional[int] = None,
    *,
    area: float = 1.0,
    positions: Optional[Sequence[Tuple[float, float]]] = None,
) -> Tuple[Adjacency, Dict[int, Tuple[float, float]]]:
    """Nodes placed uniformly in a square, connected when within ``radius``.

    This is the standard model of wireless range: two devices can exchange
    gossip when they are physically close.  Returns both the adjacency map
    and the node positions (used by mobility models and plotting).
    """
    _check_count(n)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    side = math.sqrt(area)
    rng = np.random.default_rng(seed)
    if positions is None:
        coords = rng.random((n, 2)) * side
    else:
        coords = np.asarray(positions, dtype=float)
        if coords.shape != (n, 2):
            raise ValueError(f"expected {n} positions, got shape {coords.shape}")
    graph = empty_graph(n)
    if n >= 2:
        # Pairwise distances without building an n x n x 2 intermediate for
        # large n: chunk over rows.
        chunk = max(1, min(n, 4096))
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            block = coords[start:stop]
            distances = np.sqrt(
                (block[:, None, 0] - coords[None, :, 0]) ** 2
                + (block[:, None, 1] - coords[None, :, 1]) ** 2
            )
            close = distances <= radius
            for local_row in range(stop - start):
                a = start + local_row
                neighbors = np.nonzero(close[local_row])[0]
                for b in neighbors:
                    b = int(b)
                    if b != a:
                        graph[a].add(b)
                        graph[b].add(a)
    position_map = {node: (float(coords[node, 0]), float(coords[node, 1])) for node in range(n)}
    return graph, position_map
