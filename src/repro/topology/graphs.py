"""Adjacency-map graph generators.

All generators return ``dict[int, set[int]]`` mapping each node identifier
to the set of its neighbours.  Edges are undirected: ``b in graph[a]``
implies ``a in graph[b]``.  Node identifiers are ``0..n-1``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "empty_graph",
    "complete_graph",
    "star_graph",
    "ring_lattice",
    "grid_graph",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "grid_positions",
]

Adjacency = Dict[int, Set[int]]


def _check_count(n: int) -> None:
    if n < 0:
        raise ValueError(f"node count must be non-negative, got {n}")


def empty_graph(n: int) -> Adjacency:
    """``n`` isolated nodes and no edges."""
    _check_count(n)
    return {node: set() for node in range(n)}


def complete_graph(n: int) -> Adjacency:
    """Every pair of distinct nodes is connected (uniform-gossip topology)."""
    _check_count(n)
    nodes = set(range(n))
    return {node: nodes - {node} for node in range(n)}


def star_graph(n: int, center: int = 0) -> Adjacency:
    """Node ``center`` connected to every other node; no other edges.

    Models the single-coordinator deployments that the Kostoulas et al.
    baselines (Hops Sampling, Interval Density) assume.
    """
    _check_count(n)
    if n and not 0 <= center < n:
        raise ValueError(f"center {center} outside 0..{n - 1}")
    graph = empty_graph(n)
    for node in range(n):
        if node != center:
            graph[center].add(node)
            graph[node].add(center)
    return graph


def ring_lattice(n: int, k: int = 1) -> Adjacency:
    """A ring where each node connects to its ``k`` nearest neighbours per side."""
    _check_count(n)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    graph = empty_graph(n)
    for node in range(n):
        for offset in range(1, k + 1):
            neighbor = (node + offset) % n
            if neighbor != node:
                graph[node].add(neighbor)
                graph[neighbor].add(node)
    return graph


def grid_positions(width: int, height: int) -> Dict[int, Tuple[int, int]]:
    """Positions of nodes laid out row-major on a ``width`` × ``height`` grid."""
    if width < 0 or height < 0:
        raise ValueError("grid dimensions must be non-negative")
    return {row * width + col: (col, row) for row in range(height) for col in range(width)}


def grid_graph(width: int, height: int, diagonal: bool = False) -> Adjacency:
    """A 2-D grid with 4-connectivity (8-connectivity when ``diagonal``).

    This is the "hosts distributed evenly in a D-dimensional grid, able to
    communicate only with adjacent nodes" setting of the paper's spatial
    gossip discussion (Section IV-A).
    """
    positions = grid_positions(width, height)
    n = width * height
    graph = empty_graph(n)
    offsets = [(1, 0), (0, 1)]
    if diagonal:
        offsets += [(1, 1), (1, -1)]
    for node, (col, row) in positions.items():
        for d_col, d_row in offsets:
            n_col, n_row = col + d_col, row + d_row
            if 0 <= n_col < width and 0 <= n_row < height:
                neighbor = n_row * width + n_col
                graph[node].add(neighbor)
                graph[neighbor].add(node)
    return graph


def erdos_renyi_graph(n: int, p: float, seed: Optional[int] = None) -> Adjacency:
    """G(n, p): each of the n·(n−1)/2 possible edges exists with probability ``p``."""
    _check_count(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    graph = empty_graph(n)
    if n < 2 or p == 0.0:
        return graph
    # Sample the upper triangle in one vectorised draw.
    i_upper, j_upper = np.triu_indices(n, k=1)
    mask = rng.random(i_upper.shape[0]) < p
    for a, b in zip(i_upper[mask], j_upper[mask]):
        graph[int(a)].add(int(b))
        graph[int(b)].add(int(a))
    return graph


def random_geometric_graph(
    n: int,
    radius: float,
    seed: Optional[int] = None,
    *,
    area: float = 1.0,
    positions: Optional[Sequence[Tuple[float, float]]] = None,
) -> Tuple[Adjacency, Dict[int, Tuple[float, float]]]:
    """Nodes placed uniformly in a square, connected when within ``radius``.

    This is the standard model of wireless range: two devices can exchange
    gossip when they are physically close.  Returns both the adjacency map
    and the node positions (used by mobility models and plotting).
    """
    _check_count(n)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    side = math.sqrt(area)
    rng = np.random.default_rng(seed)
    if positions is None:
        coords = rng.random((n, 2)) * side
    else:
        coords = np.asarray(positions, dtype=float)
        if coords.shape != (n, 2):
            raise ValueError(f"expected {n} positions, got shape {coords.shape}")
    graph = empty_graph(n)
    if n >= 2:
        # Pairwise distances without building an n x n x 2 intermediate for
        # large n: chunk over rows.
        chunk = max(1, min(n, 4096))
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            block = coords[start:stop]
            distances = np.sqrt(
                (block[:, None, 0] - coords[None, :, 0]) ** 2
                + (block[:, None, 1] - coords[None, :, 1]) ** 2
            )
            close = distances <= radius
            for local_row in range(stop - start):
                a = start + local_row
                neighbors = np.nonzero(close[local_row])[0]
                for b in neighbors:
                    b = int(b)
                    if b != a:
                        graph[a].add(b)
                        graph[b].add(a)
    position_map = {node: (float(coords[node, 0]), float(coords[node, 1])) for node in range(n)}
    return graph, position_map
