"""Accuracy metrics.

All the evaluation figures in the paper plot one statistic: "the standard
deviation from the correct value" — the root-mean-square deviation of the
hosts' estimates from the true aggregate.  These helpers compute that
statistic (and a few companions) over plain sequences or NumPy arrays so
the agent-based engine, the vectorised kernels and the analysis code agree
on the definition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "stddev_from_truth",
    "relative_error",
    "mean_absolute_error",
    "group_relative_errors",
]


def stddev_from_truth(estimates: Sequence[float], truth: float) -> float:
    """Root-mean-square deviation of ``estimates`` from ``truth``.

    Returns NaN for an empty estimate set (e.g. after every host failed).
    """
    arr = np.asarray(list(estimates), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((arr - truth) ** 2)))


def relative_error(error: float, truth: float) -> float:
    """``error`` as a fraction of ``truth`` (NaN when the truth is zero)."""
    if truth == 0:
        return float("nan")
    return float(error / abs(truth))


def mean_absolute_error(estimates: Sequence[float], truth: float) -> float:
    """Mean absolute deviation of ``estimates`` from ``truth``."""
    arr = np.asarray(list(estimates), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.mean(np.abs(arr - truth)))


def group_relative_errors(
    estimates: Mapping[int, float],
    groups: Iterable[Set[int]],
    truth_of_group: Mapping[int, float],
) -> Tuple[List[float], Dict[int, float]]:
    """Per-host deviations from each host's *group* truth.

    Parameters
    ----------
    estimates:
        host id → estimate.
    groups:
        The partition of hosts into groups (ids absent from ``estimates`` are
        ignored).
    truth_of_group:
        group index (position in ``groups``) → correct aggregate for that
        group.

    Returns
    -------
    (deltas, truth_by_host):
        ``deltas`` is the list of per-host (estimate − group truth) values;
        ``truth_by_host`` maps each covered host to its group's truth.
    """
    deltas: List[float] = []
    truth_by_host: Dict[int, float] = {}
    for index, group in enumerate(groups):
        if index not in truth_of_group:
            continue
        truth = truth_of_group[index]
        for host_id in group:
            if host_id in estimates:
                truth_by_host[host_id] = truth
                deltas.append(estimates[host_id] - truth)
    return deltas, truth_by_host
