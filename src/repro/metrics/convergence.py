"""Convergence-time summaries over error series."""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["convergence_round", "reconvergence_round", "plateau_error"]


def convergence_round(
    errors: Sequence[float],
    threshold: float,
    *,
    start: int = 0,
    sustained: int = 1,
) -> Optional[int]:
    """Index of the first round (>= ``start``) where the error stays <= threshold.

    ``sustained`` consecutive rounds must satisfy the bound; returns ``None``
    when the series never converges.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if sustained < 1:
        raise ValueError("sustained must be >= 1")
    run_length = 0
    for index, error in enumerate(errors):
        if index < start:
            continue
        if error <= threshold:
            run_length += 1
            if run_length >= sustained:
                return index - sustained + 1
        else:
            run_length = 0
    return None


def reconvergence_round(
    errors: Sequence[float],
    threshold: float,
    *,
    disturbance_round: int,
    sustained: int = 1,
) -> Optional[int]:
    """Rounds needed to get back under ``threshold`` after a disturbance.

    Returns the number of rounds *after* ``disturbance_round`` at which the
    error first stays below the threshold (``None`` if it never does).  This
    is the "reconvergence time" the paper quotes for Push-Sum-Revert after
    the correlated failure.
    """
    absolute = convergence_round(
        errors, threshold, start=disturbance_round, sustained=sustained
    )
    if absolute is None:
        return None
    return absolute - disturbance_round


def plateau_error(errors: Sequence[float], tail: int = 5) -> float:
    """Mean error over the final ``tail`` entries (the figure's plateau level)."""
    if not errors:
        raise ValueError("empty error series")
    if tail < 1:
        raise ValueError("tail must be >= 1")
    window = list(errors)[-tail:]
    return sum(window) / len(window)
