"""Error metrics, convergence detection and measurement recorders.

The agent-based engine records its own per-round metrics
(:class:`repro.simulator.SimulationResult`); this package provides the same
statistics as standalone functions so the vectorised kernels, the analysis
code and the tests can share one definition of "error", plus:

* :class:`SeriesRecorder` — a light per-round recorder used by the
  vectorised experiment drivers;
* convergence-time and plateau summaries over error series;
* bandwidth/storage cost summaries used by the protocol-cost comparisons
  (Invert-Average versus multiple-insertion summation).
"""

from repro.metrics.accuracy import (
    group_relative_errors,
    mean_absolute_error,
    relative_error,
    stddev_from_truth,
)
from repro.metrics.bandwidth import CostSummary, DeliveryMeter, protocol_cost_summary
from repro.metrics.convergence import convergence_round, plateau_error, reconvergence_round
from repro.metrics.recorder import SeriesRecorder

__all__ = [
    "CostSummary",
    "DeliveryMeter",
    "SeriesRecorder",
    "convergence_round",
    "group_relative_errors",
    "mean_absolute_error",
    "plateau_error",
    "protocol_cost_summary",
    "reconvergence_round",
    "relative_error",
    "stddev_from_truth",
]
