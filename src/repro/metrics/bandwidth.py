"""Bandwidth and storage cost summaries.

Section IV-B of the paper argues that Invert-Average (Count-Sketch-Reset
for the size × Push-Sum-Revert for the average) is far cheaper than the
multiple-insertion summation once the sketch cost is amortised over many
summations.  These helpers quantify that comparison for the ablation
benchmark: per-round bytes per host for each protocol configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostSummary", "protocol_cost_summary"]


@dataclass(frozen=True)
class CostSummary:
    """Per-host, per-round communication and storage cost of a protocol."""

    protocol: str
    state_bytes: int
    message_bytes: int
    messages_per_round: int

    @property
    def bytes_per_round(self) -> int:
        """Radio bytes one host transmits per gossip round."""
        return self.message_bytes * self.messages_per_round

    def amortized_bytes(self, aggregates_shared: int) -> float:
        """Per-aggregate cost when the same traffic serves ``aggregates_shared`` queries."""
        if aggregates_shared < 1:
            raise ValueError("aggregates_shared must be >= 1")
        return self.bytes_per_round / aggregates_shared


def protocol_cost_summary(
    *,
    name: str,
    bins: int = 0,
    bits: int = 0,
    counter_bytes: int = 2,
    mass_values: int = 0,
    fanout: int = 1,
) -> CostSummary:
    """Build a :class:`CostSummary` from protocol shape parameters.

    ``bins``/``bits`` describe sketch-style payloads (``bins*bits`` counters
    of ``counter_bytes`` bytes, or packed bits when ``counter_bytes`` is 0);
    ``mass_values`` describes mass-style payloads (8-byte floats).
    """
    sketch_bytes = 0
    if bins and bits:
        sketch_bytes = bins * bits * counter_bytes if counter_bytes else (bins * bits + 7) // 8
    mass_bytes = 8 * mass_values
    payload = sketch_bytes + mass_bytes
    return CostSummary(
        protocol=name,
        state_bytes=payload,
        message_bytes=payload,
        messages_per_round=max(1, fanout),
    )
