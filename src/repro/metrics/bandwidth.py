"""Bandwidth and storage cost summaries, plus delivery accounting.

Section IV-B of the paper argues that Invert-Average (Count-Sketch-Reset
for the size × Push-Sum-Revert for the average) is far cheaper than the
multiple-insertion summation once the sketch cost is amortised over many
summations.  These helpers quantify that comparison for the ablation
benchmark: per-round bytes per host for each protocol configuration.

:class:`DeliveryMeter` is the metrics-side counterpart of the network
layer (`repro.network`): the engine feeds it one event per planned
message, and it keeps the per-round delivered / lost / in-flight counts
that :class:`~repro.simulator.result.RoundRecord` surfaces — the
observability half of the lossy / latent network models.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CostSummary", "DeliveryMeter", "protocol_cost_summary"]


@dataclass
class DeliveryMeter:
    """Per-round delivery outcomes on the simulated network.

    The engine records one event per non-self message (push mode) or two
    per pairwise exchange (exchange mode — one each way, matching
    :class:`~repro.simulator.message.BandwidthMeter`), and snapshots the
    in-flight backlog at the end of every round.  ``mass_lost_per_round``
    tracks the conserved protocol mass (Push-Sum weight) destroyed by
    lost messages, which is what the mass-conservation ledger reconciles.
    """

    delivered_per_round: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    lost_per_round: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    in_flight_per_round: Dict[int, int] = field(default_factory=dict)
    mass_lost_per_round: Dict[int, float] = field(default_factory=lambda: defaultdict(float))

    def record_delivered(self, round_index: int, count: int = 1) -> None:
        """Count ``count`` messages delivered during ``round_index``."""
        self.delivered_per_round[round_index] += count

    def record_lost(self, round_index: int, count: int = 1, *, mass: float = 0.0) -> None:
        """Count ``count`` messages lost during ``round_index``."""
        self.lost_per_round[round_index] += count
        if mass:
            self.mass_lost_per_round[round_index] += float(mass)

    def snapshot_in_flight(self, round_index: int, count: int) -> None:
        """Record the in-flight backlog at the end of ``round_index``."""
        self.in_flight_per_round[round_index] = int(count)

    @property
    def total_delivered(self) -> int:
        """All messages the network delivered."""
        return sum(self.delivered_per_round.values())

    @property
    def total_lost(self) -> int:
        """All messages the network lost."""
        return sum(self.lost_per_round.values())

    @property
    def total_mass_lost(self) -> float:
        """All conserved mass destroyed inside lost messages."""
        return sum(self.mass_lost_per_round.values())

    def delivered_in_round(self, round_index: int) -> int:
        """Messages delivered during ``round_index`` (0 if none)."""
        return self.delivered_per_round.get(round_index, 0)

    def lost_in_round(self, round_index: int) -> int:
        """Messages lost during ``round_index`` (0 if none)."""
        return self.lost_per_round.get(round_index, 0)

    def in_flight_after_round(self, round_index: int) -> int:
        """In-flight backlog at the end of ``round_index`` (0 if none)."""
        return self.in_flight_per_round.get(round_index, 0)


@dataclass(frozen=True)
class CostSummary:
    """Per-host, per-round communication and storage cost of a protocol."""

    protocol: str
    state_bytes: int
    message_bytes: int
    messages_per_round: int

    @property
    def bytes_per_round(self) -> int:
        """Radio bytes one host transmits per gossip round."""
        return self.message_bytes * self.messages_per_round

    def amortized_bytes(self, aggregates_shared: int) -> float:
        """Per-aggregate cost when the same traffic serves ``aggregates_shared`` queries."""
        if aggregates_shared < 1:
            raise ValueError("aggregates_shared must be >= 1")
        return self.bytes_per_round / aggregates_shared


def protocol_cost_summary(
    *,
    name: str,
    bins: int = 0,
    bits: int = 0,
    counter_bytes: int = 2,
    mass_values: int = 0,
    fanout: int = 1,
) -> CostSummary:
    """Build a :class:`CostSummary` from protocol shape parameters.

    ``bins``/``bits`` describe sketch-style payloads (``bins*bits`` counters
    of ``counter_bytes`` bytes, or packed bits when ``counter_bytes`` is 0);
    ``mass_values`` describes mass-style payloads (8-byte floats).
    """
    sketch_bytes = 0
    if bins and bits:
        sketch_bytes = bins * bits * counter_bytes if counter_bytes else (bins * bits + 7) // 8
    mass_bytes = 8 * mass_values
    payload = sketch_bytes + mass_bytes
    return CostSummary(
        protocol=name,
        state_bytes=payload,
        message_bytes=payload,
        messages_per_round=max(1, fanout),
    )
