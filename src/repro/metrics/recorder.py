"""A light per-round series recorder used by the vectorised drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.accuracy import stddev_from_truth

__all__ = ["SeriesRecorder"]


@dataclass
class SeriesRecorder:
    """Accumulates aligned per-round series (error, truth, population, ...).

    The vectorised kernels do not build :class:`~repro.simulator.result.SimulationResult`
    objects (they have no per-host :class:`~repro.simulator.host.Host`
    bookkeeping); they record into a :class:`SeriesRecorder` instead, which
    offers the same series accessors the analysis and rendering code expects.
    """

    name: str = "series"
    rounds: List[int] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)
    truths: List[float] = field(default_factory=list)
    mean_estimates: List[float] = field(default_factory=list)
    populations: List[int] = field(default_factory=list)
    extra: Dict[str, List[float]] = field(default_factory=dict)

    def record(
        self,
        round_index: int,
        estimates: Sequence[float],
        truth: float,
        *,
        population: Optional[int] = None,
        **extra_series: float,
    ) -> None:
        """Record one round from raw per-host estimates."""
        arr = np.asarray(list(estimates), dtype=float)
        self.rounds.append(int(round_index))
        self.truths.append(float(truth))
        self.errors.append(stddev_from_truth(arr, truth))
        self.mean_estimates.append(float(arr.mean()) if arr.size else float("nan"))
        self.populations.append(int(population if population is not None else arr.size))
        for key, value in extra_series.items():
            self.extra.setdefault(key, []).append(float(value))

    def record_error(
        self,
        round_index: int,
        error: float,
        truth: float,
        *,
        mean_estimate: float = float("nan"),
        population: int = 0,
        **extra_series: float,
    ) -> None:
        """Record one round from a pre-computed error value."""
        self.rounds.append(int(round_index))
        self.truths.append(float(truth))
        self.errors.append(float(error))
        self.mean_estimates.append(float(mean_estimate))
        self.populations.append(int(population))
        for key, value in extra_series.items():
            self.extra.setdefault(key, []).append(float(value))

    def final_error(self) -> float:
        """Error at the last recorded round."""
        if not self.errors:
            raise ValueError("nothing recorded")
        return self.errors[-1]

    def as_dict(self) -> dict:
        """JSON-friendly dump of all series."""
        payload = {
            "name": self.name,
            "rounds": list(self.rounds),
            "errors": list(self.errors),
            "truths": list(self.truths),
            "mean_estimates": list(self.mean_estimates),
            "populations": list(self.populations),
        }
        payload.update({key: list(values) for key, values in self.extra.items()})
        return payload

    def __len__(self) -> int:
        return len(self.rounds)
