"""Command-line front end: ``python -m repro`` / ``repro-aggregate``.

Subcommands
-----------

``run``
    Execute one declarative scenario — assembled from flags or loaded from
    a JSON spec file (``--config``) — and print its error trajectory.

``sweep``
    Expand a JSON sweep document (base scenario × axes) into a scenario
    grid, execute it (in parallel by default) and print the tidy result
    table.

``list``
    List the registered protocols, environments, failure models and
    workloads a scenario can name.  ``--capabilities`` renders the
    engine x backend x feature matrix instead: which protocols run
    vectorised under each engine, which kernels exist, and the first
    blocking feature for every non-vectorisable cell (see
    :func:`repro.api.plan.capability_matrix`).

``cache``
    Inspect and manage the content-addressed result store
    (:mod:`repro.store`): ``stats``, ``prune`` and ``clear``.  ``run``,
    ``sweep`` and ``experiments`` opt into the store with ``--cache`` /
    ``--cache-dir`` (and out with ``--no-cache``), making repeated runs of
    unchanged scenarios instant.

``experiments``
    Run the paper's evaluation figures (all of them or a subset) under the
    ``quick`` or ``full`` profile and print the rendered tables.

``bench``
    Time identical scenarios on the agent and vectorised execution
    backends across population sizes and write ``BENCH_core.json`` (the
    repo's perf trajectory); ``--smoke`` is the seconds-long CI variant.

``demo``
    Run a small Push-Sum-Revert demonstration on a uniform network with a
    correlated failure and print the error trajectory.

``trace``
    Generate a synthetic Haggle-like contact trace and print its summary
    statistics (or write it to CSV for inspection).

``obs``
    Render a phase-time breakdown and per-round counter table from a
    structured trace recorded with ``run --trace out.jsonl`` /
    ``sweep --trace out.jsonl`` (see :mod:`repro.obs`):
    ``repro-aggregate obs report out.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.analysis.render import render_series_table, render_table
from repro.api import ENVIRONMENTS, FAILURES, NETWORKS, PROTOCOLS, WORKLOADS
from repro.api.spec import ScenarioSpec, run_scenario
from repro.api.sweep import Sweep, SweepRunner
from repro.experiments.runner import PROFILES, run_all_experiments
from repro.mobility.stats import (
    average_group_size_series,
    contact_duration_stats,
    intercontact_time_stats,
)
from repro.mobility.synthetic_haggle import generate_haggle_like_trace, haggle_dataset
from repro.obs import MetricsRegistry, TraceRecorder, compose, read_trace, render_report
from repro.perf import add_bench_arguments, run_bench_command
from repro.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = ["main", "build_parser"]


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the result-store flags shared by run/sweep/experiments."""
    parser.add_argument(
        "--cache", action="store_true",
        help=f"serve/record results through the result store (default dir: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result store even when --cache/--cache-dir is given",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store directory (implies --cache)",
    )


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    """The ResultStore the flags ask for, or None when caching is off."""
    if args.no_cache or not (args.cache or args.cache_dir):
        return None
    return ResultStore(args.cache_dir or DEFAULT_CACHE_DIR)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the observability flags shared by run/sweep."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured JSONL trace (phase spans, per-round counters) "
             "to PATH; render it with 'repro-aggregate obs report PATH'",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print aggregated metrics (phase times, counters, gauges) to stderr",
    )


def _probe_from_args(args: argparse.Namespace):
    """(probe, trace recorder, metrics registry) for the --trace/--metrics flags.

    All three are None-equivalents when neither flag is given — the run
    then goes through the zero-cost null probe and stays bit-identical.
    """
    trace_recorder = TraceRecorder(args.trace) if args.trace else None
    metrics_registry = MetricsRegistry() if args.metrics else None
    return compose([trace_recorder, metrics_registry]), trace_recorder, metrics_registry


def _parse_json_object(raw: str) -> dict:
    """Parse a flag value that must be a JSON object (e.g. network params)."""
    try:
        value = json.loads(raw)
    except json.JSONDecodeError as error:
        raise argparse.ArgumentTypeError(f"invalid JSON {raw!r}: {error}") from None
    if not isinstance(value, dict):
        raise argparse.ArgumentTypeError(f"expected a JSON object, got {raw!r}")
    return value


def _parse_param(item: str) -> tuple:
    """Parse one ``key=value`` flag; values are JSON when possible, else text."""
    if "=" not in item:
        raise argparse.ArgumentTypeError(f"expected key=value, got {item!r}")
    key, raw = item.split("=", 1)
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-aggregate",
        description="Dynamic in-network aggregation: experiments and demos",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run one declarative scenario (from flags or a JSON spec)"
    )
    run.add_argument("--config", default=None, help="JSON scenario spec file")
    run.add_argument("--protocol", default=None, help="registered protocol name")
    run.add_argument("--environment", default=None, help="registered environment name")
    run.add_argument("--workload", default=None, help="registered workload name")
    run.add_argument("--hosts", type=int, default=None, help="population size")
    run.add_argument("--rounds", type=int, default=None, help="gossip rounds to simulate")
    run.add_argument("--mode", choices=("push", "exchange"), default=None)
    run.add_argument(
        "--backend", choices=("agent", "vectorized", "auto"), default=None,
        help="execution backend (default: auto — vectorised whenever supported)",
    )
    run.add_argument("--seed", type=int, default=None, help="root random seed")
    run.add_argument(
        "--network", default=None,
        help="registered network model (default: perfect delivery); "
             "e.g. --network bernoulli-loss --network-params '{\"p\": 0.2}'",
    )
    run.add_argument(
        "--network-params", type=_parse_json_object, default=None, metavar="JSON",
        help="network model parameters as a JSON object",
    )
    run.add_argument(
        "--engine", choices=("rounds", "events"), default=None,
        help="simulation engine: lockstep rounds (default) or the "
             "continuous-time event engine (repro.events)",
    )
    run.add_argument(
        "--engine-params", type=_parse_json_object, default=None, metavar="JSON",
        help="event-engine parameters as a JSON object, e.g. "
             "'{\"duration\": 120, \"rates\": {\"distribution\": \"heterogeneous\", "
             "\"fast\": 2.0, \"slow\": 0.25}}'",
    )
    run.add_argument(
        "--group-relative", action="store_true", help="measure errors per contact group"
    )
    run.add_argument(
        "-P", "--protocol-param", type=_parse_param, action="append", default=[],
        metavar="KEY=VALUE", help="protocol constructor parameter (repeatable)",
    )
    run.add_argument(
        "-E", "--environment-param", type=_parse_param, action="append", default=[],
        metavar="KEY=VALUE", help="environment parameter (repeatable)",
    )
    run.add_argument(
        "-W", "--workload-param", type=_parse_param, action="append", default=[],
        metavar="KEY=VALUE", help="workload parameter (repeatable)",
    )
    run.add_argument("--every", type=int, default=5, help="print every Nth round")
    run.add_argument("--json", action="store_true", help="print the result as JSON")
    _add_cache_arguments(run)
    _add_obs_arguments(run)

    sweep = subparsers.add_parser(
        "sweep", help="expand a JSON sweep (base scenario x axes) and run the grid"
    )
    sweep.add_argument("--config", required=True, help="JSON sweep file: {'base': ..., 'axes': ...}")
    sweep.add_argument("--serial", action="store_true", help="run in-process instead of a pool")
    sweep.add_argument("--workers", type=int, default=None, help="process-pool size")
    sweep.add_argument("--chunksize", type=int, default=1, help="scenarios per pool task")
    sweep.add_argument("--output", default=None, help="also write the table to this file")
    sweep.add_argument(
        "--progress", action="store_true",
        help="print one line per completed cell (index, cached/executed, wall time) to stderr",
    )
    _add_cache_arguments(sweep)
    _add_obs_arguments(sweep)

    list_parser = subparsers.add_parser(
        "list", help="list the registered protocols, environments, failures and workloads"
    )
    list_parser.add_argument(
        "--capabilities", action="store_true",
        help="render the engine x backend x feature capability matrix instead "
             "(which protocols run vectorised under each engine, and why not)",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect/manage the content-addressed result store"
    )
    cache.add_argument(
        "action", choices=("stats", "prune", "clear"),
        help="stats: summarise the store; prune: drop stale/old entries; clear: drop everything",
    )
    cache.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result-store directory (default: {DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="with prune: also drop entries created more than DAYS days ago",
    )

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's evaluation figures and print the tables"
    )
    experiments.add_argument(
        "--profile", choices=sorted(PROFILES), default="quick", help="problem-size profile"
    )
    experiments.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments to run (fig6 fig8 fig9 fig10 fig11 ablations)",
    )
    experiments.add_argument("--seed", type=int, default=0, help="root random seed")
    experiments.add_argument(
        "--backend", choices=("agent", "vectorized", "auto"), default="vectorized",
        help="execution backend for the uniform-gossip figures (fig8/9/10)",
    )
    experiments.add_argument(
        "--no-ablations", action="store_true", help="skip the design-choice ablations"
    )
    experiments.add_argument(
        "--output", default=None, help="also write the report to this file"
    )
    _add_cache_arguments(experiments)

    bench = subparsers.add_parser(
        "bench", help="time the agent vs vectorised backends and write BENCH_core.json"
    )
    add_bench_arguments(bench)

    demo = subparsers.add_parser(
        "demo", help="small Push-Sum-Revert demo with a correlated failure"
    )
    demo.add_argument("--hosts", type=int, default=1000)
    demo.add_argument("--rounds", type=int, default=50)
    demo.add_argument("--failure-round", type=int, default=20)
    demo.add_argument("--reversion", type=float, default=0.1)
    demo.add_argument("--seed", type=int, default=0)

    trace = subparsers.add_parser(
        "trace", help="generate a synthetic Haggle-like trace and summarise it"
    )
    trace.add_argument("--dataset", type=int, choices=(1, 2, 3), default=None,
                       help="use the preset matching a paper dataset")
    trace.add_argument("--devices", type=int, default=12)
    trace.add_argument("--hours", type=float, default=48.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--csv", default=None, help="write the trace to this CSV path")

    obs = subparsers.add_parser(
        "obs", help="render reports from structured traces recorded with --trace"
    )
    obs.add_argument("action", choices=("report",), help="report: phase/counter breakdown")
    obs.add_argument("trace_file", help="JSONL trace written by run/sweep --trace")
    obs.add_argument(
        "--every", type=int, default=1, help="print every Nth row of the per-round table"
    )
    return parser


def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    """Assemble the scenario: the JSON config (if any) overridden by flags."""
    payload: Dict[str, object] = {}
    if args.config:
        with open(args.config) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise SystemExit(f"{args.config}: expected a JSON object describing a scenario")
    overrides = {
        "protocol": args.protocol,
        "environment": args.environment,
        "workload": args.workload,
        "n_hosts": args.hosts,
        "rounds": args.rounds,
        "mode": args.mode,
        "seed": args.seed,
        "backend": args.backend,
        "network": args.network,
        "network_params": args.network_params,
        "engine": args.engine,
        "engine_params": args.engine_params,
    }
    for key, value in overrides.items():
        if value is not None:
            payload[key] = value
    if args.group_relative:
        payload["group_relative"] = True
    for flag, target in (
        (args.protocol_param, "protocol_params"),
        (args.environment_param, "environment_params"),
        (args.workload_param, "workload_params"),
    ):
        if flag:
            params = dict(payload.get(target) or {})
            params.update(dict(flag))
            payload[target] = params
    if "protocol" not in payload:
        raise SystemExit(
            "no protocol selected: pass --protocol or a --config spec "
            f"(registered protocols: {', '.join(PROTOCOLS.keys())})"
        )
    return ScenarioSpec.from_dict(payload)


def _print_scenario_error(error: Exception) -> None:
    """``error: ...`` on stderr; plan rejections get their structured detail.

    A :class:`repro.api.plan.PlanRejectionError` carries every blocking
    (axis, feature, reason) triple plus the nearest runnable plan — print
    them all so the user can fix the spec (or switch backend) in one go.
    """
    from repro.api.plan import PlanRejectionError

    print(f"error: {error}", file=sys.stderr)
    if isinstance(error, PlanRejectionError):
        for rejection in error.rejections:
            print(f"  [{rejection.axis}] {rejection.feature}: {rejection.reason}", file=sys.stderr)
        if error.nearest is not None:
            print(
                f"nearest runnable plan: engine={error.nearest.engine!r} "
                f"backend={error.nearest.backend!r}",
                file=sys.stderr,
            )


def _command_run(args: argparse.Namespace) -> int:
    probe, trace_recorder, metrics_registry = _probe_from_args(args)
    try:
        spec = _spec_from_args(args)
        store = _store_from_args(args)
        if store is not None:
            store.probe = probe
        result = run_scenario(spec, store=store, probe=probe)
    except (ValueError, KeyError, TypeError) as error:
        _print_scenario_error(error)
        return 2
    except OSError as error:
        print(f"error: cannot read {args.config}: {error}", file=sys.stderr)
        return 2
    if store is not None:
        # Stderr, so cached and fresh runs keep bit-identical stdout.
        outcome = "hit" if store.session["hits"] else "miss (stored)"
        print(f"cache {outcome}: key {spec.key()[:12]} in {store.root}", file=sys.stderr)
    if args.json:
        print(json.dumps({"spec": spec.to_dict(), "result": result.as_dict()}, indent=2))
        return 0
    network_note = "" if spec.network == "perfect" else f", network={spec.network}"
    print(
        f"Scenario {spec.label()}: {spec.protocol} over {spec.environment} gossip, "
        f"{spec.n_hosts} hosts, {spec.rounds} rounds "
        f"(mode={spec.mode}, seed={spec.seed}, "
        f"backend={result.metadata.get('backend', spec.backend)}{network_note})"
    )
    if spec.network != "perfect" and result.total_lost() > 0:
        print(
            f"network {spec.network}: {result.total_lost()} messages lost, "
            f"{result.in_flight_per_round()[-1]} still in flight at the end"
        )
    print(
        render_series_table(
            "round",
            [record.round_index for record in result.rounds],
            {
                "truth": result.truths(),
                "stddev error": result.errors(),
                "alive": result.alive_counts(),
            },
            every=max(1, args.every),
        )
    )
    print(
        f"\nfinal error {result.final_error():.4g}, plateau error "
        f"{result.plateau_error():.4g}, final truth {result.final_truth():.4g}"
    )
    _emit_obs(trace_recorder, metrics_registry)
    return 0


def _emit_obs(trace_recorder, metrics_registry) -> None:
    """Flush --trace / print --metrics.  Stderr only, so stdout — the part
    golden comparisons and ``--output`` files see — is byte-identical with
    or without the observability flags."""
    if trace_recorder is not None:
        trace_recorder.close()
        print(
            f"trace: {len(trace_recorder)} records -> {trace_recorder.path}",
            file=sys.stderr,
        )
    if metrics_registry is not None:
        print(metrics_registry.render(), file=sys.stderr)


def _command_sweep(args: argparse.Namespace) -> int:
    probe, trace_recorder, metrics_registry = _probe_from_args(args)
    try:
        with open(args.config) as handle:
            sweep = Sweep.from_dict(json.load(handle))
        store = _store_from_args(args)
        if store is not None:
            store.probe = probe
        runner = SweepRunner(
            parallel=not args.serial,
            max_workers=args.workers,
            chunksize=args.chunksize,
            store=store,
            progress=args.progress,
            probe=probe,
        )
        result = runner.run(sweep)
    except (ValueError, KeyError, TypeError) as error:
        _print_scenario_error(error)
        return 2
    except OSError as error:
        print(f"error: cannot read {args.config}: {error}", file=sys.stderr)
        return 2
    text = result.render()
    print(text)
    if store is not None:
        # After the table (and never in --output) so the written table is
        # bit-identical between the cold run and a fully-cached re-run.
        print(
            f"cache: {result.cache_hits()}/{len(result)} cells cached, "
            f"{result.executed()} executed (store: {store.root})"
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    _emit_obs(trace_recorder, metrics_registry)
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    try:
        records = read_trace(args.trace_file)
    except OSError as error:
        print(f"error: cannot read {args.trace_file}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {args.trace_file} is not a JSONL trace: {error}", file=sys.stderr)
        return 2
    print(render_report(records, every=max(1, args.every)))
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        rows = [
            ["root", stats["root"]],
            ["schema version", stats["schema_version"]],
            ["entries", stats["entries"]],
            ["stale entries", stats["stale_entries"]],
            ["total bytes", stats["total_bytes"]],
            ["lifetime hits", stats["lifetime_hits"]],
        ]
        for protocol, count in stats["by_protocol"].items():
            rows.append([f"entries [{protocol}]", count])
        print(render_table(["result store", "value"], rows))
        return 0
    if args.action == "prune":
        try:
            removed = store.prune(older_than_days=args.older_than)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"pruned {removed} entries from {store.root}")
        return 0
    removed = store.clear()
    print(f"cleared {removed} entries from {store.root}")
    return 0


def _command_list(args: argparse.Namespace) -> int:
    if args.capabilities:
        return _command_list_capabilities()
    rows = []
    for registry in (PROTOCOLS, ENVIRONMENTS, FAILURES, WORKLOADS, NETWORKS):
        for index, key in enumerate(sorted(registry.keys())):
            rows.append([registry.kind if index == 0 else "", key])
    for index, key in enumerate(("events", "rounds")):
        rows.append(["engine" if index == 0 else "", key])
    print(render_table(["kind", "name"], rows))
    return 0


def _command_list_capabilities() -> int:
    from repro.api.plan import capability_matrix

    matrix = capability_matrix()
    engines = matrix["engines"]
    backends = matrix["backends"]
    headers = ["protocol"] + [f"{engine}/{backend}" for engine in engines for backend in backends]
    rows = []
    reasons = []
    for row in matrix["rows"]:
        cells = [row["protocol"]]
        for engine in engines:
            for backend in backends:
                cells.append(row["cells"][engine][backend])
        rows.append(cells)
        for engine in engines:
            reason = row["reasons"].get(engine)
            if reason:
                reasons.append(f"  {row['protocol']} ({engine}): {reason}")
    print(render_table(headers, rows))
    print()
    print(render_table(
        ["vectorised kernel", "modes", "parameters", "topology"],
        [
            [kernel["kernel"], kernel["modes"], kernel["parameters"] or "-", kernel["topology"]]
            for kernel in matrix["kernels"]
        ],
    ))
    if reasons:
        print("\nwhy not vectorised (first blocking feature per cell):")
        print("\n".join(reasons))
    print("\nnotes:")
    for note in matrix["notes"]:
        print(f"  - {note}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    report = run_all_experiments(
        args.profile,
        seed=args.seed,
        only=args.only,
        include_ablations=not args.no_ablations,
        backend=args.backend,
        store=_store_from_args(args),
    )
    text = report.text()
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from repro.simulator.vectorized import VectorizedPushSumRevert
    from repro.workloads.values import uniform_values

    values = uniform_values(args.hosts, seed=args.seed)
    kernel = VectorizedPushSumRevert(values, args.reversion, mode="pushpull", seed=args.seed)
    rounds: List[int] = []
    errors: List[float] = []
    truths: List[float] = []
    for round_index in range(args.rounds):
        if round_index == args.failure_round:
            kernel.fail_highest_fraction(0.5)
        kernel.step()
        rounds.append(round_index + 1)
        errors.append(kernel.error())
        truths.append(kernel.truth())
    print(
        f"Push-Sum-Revert demo: {args.hosts} hosts, lambda={args.reversion}, "
        f"highest-valued half removed at round {args.failure_round}"
    )
    print(
        render_series_table(
            "round", rounds, {"stddev error": errors, "true average": truths}, every=2
        )
    )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    if args.dataset is not None:
        trace = haggle_dataset(args.dataset)
    else:
        trace = generate_haggle_like_trace(args.devices, duration_hours=args.hours, seed=args.seed)
    durations = contact_duration_stats(trace)
    intercontact = intercontact_time_stats(trace)
    times, sizes = average_group_size_series(trace, step_seconds=3600.0)
    print(f"Trace {trace.name}: {trace.n_devices} devices, {trace.duration / 3600.0:.1f} hours, "
          f"{len(trace)} contacts")
    print(render_table(
        ["statistic", "contacts", "inter-contact gaps"],
        [
            ["count", durations["count"], intercontact["count"]],
            ["mean (s)", durations["mean"], intercontact["mean"]],
            ["median (s)", durations["median"], intercontact["median"]],
            ["p90 (s)", durations["p90"], intercontact["p90"]],
        ],
    ))
    print()
    print(render_series_table("hour", [round(t, 1) for t in times], {"avg group size": sizes}, every=4))
    if args.csv:
        trace.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "list":
        return _command_list(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "bench":
        return run_bench_command(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "obs":
        return _command_obs(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
