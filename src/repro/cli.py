"""Command-line front end: ``python -m repro`` / ``repro-aggregate``.

Subcommands
-----------

``experiments``
    Run the paper's evaluation figures (all of them or a subset) under the
    ``quick`` or ``full`` profile and print the rendered tables.

``demo``
    Run a small Push-Sum-Revert demonstration on a uniform network with a
    correlated failure and print the error trajectory.

``trace``
    Generate a synthetic Haggle-like contact trace and print its summary
    statistics (or write it to CSV for inspection).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.render import render_series_table, render_table
from repro.experiments.runner import PROFILES, run_all_experiments
from repro.mobility.stats import (
    average_group_size_series,
    contact_duration_stats,
    intercontact_time_stats,
)
from repro.mobility.synthetic_haggle import generate_haggle_like_trace, haggle_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-aggregate",
        description="Dynamic in-network aggregation: experiments and demos",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's evaluation figures and print the tables"
    )
    experiments.add_argument(
        "--profile", choices=sorted(PROFILES), default="quick", help="problem-size profile"
    )
    experiments.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments to run (fig6 fig8 fig9 fig10 fig11 ablations)",
    )
    experiments.add_argument("--seed", type=int, default=0, help="root random seed")
    experiments.add_argument(
        "--no-ablations", action="store_true", help="skip the design-choice ablations"
    )
    experiments.add_argument(
        "--output", default=None, help="also write the report to this file"
    )

    demo = subparsers.add_parser(
        "demo", help="small Push-Sum-Revert demo with a correlated failure"
    )
    demo.add_argument("--hosts", type=int, default=1000)
    demo.add_argument("--rounds", type=int, default=50)
    demo.add_argument("--failure-round", type=int, default=20)
    demo.add_argument("--reversion", type=float, default=0.1)
    demo.add_argument("--seed", type=int, default=0)

    trace = subparsers.add_parser(
        "trace", help="generate a synthetic Haggle-like trace and summarise it"
    )
    trace.add_argument("--dataset", type=int, choices=(1, 2, 3), default=None,
                       help="use the preset matching a paper dataset")
    trace.add_argument("--devices", type=int, default=12)
    trace.add_argument("--hours", type=float, default=48.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--csv", default=None, help="write the trace to this CSV path")
    return parser


def _command_experiments(args: argparse.Namespace) -> int:
    report = run_all_experiments(
        args.profile,
        seed=args.seed,
        only=args.only,
        include_ablations=not args.no_ablations,
    )
    text = report.text()
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from repro.simulator.vectorized import VectorizedPushSumRevert
    from repro.workloads.values import uniform_values

    values = uniform_values(args.hosts, seed=args.seed)
    kernel = VectorizedPushSumRevert(values, args.reversion, mode="pushpull", seed=args.seed)
    rounds: List[int] = []
    errors: List[float] = []
    truths: List[float] = []
    for round_index in range(args.rounds):
        if round_index == args.failure_round:
            kernel.fail_highest_fraction(0.5)
        kernel.step()
        rounds.append(round_index + 1)
        errors.append(kernel.error())
        truths.append(kernel.truth())
    print(
        f"Push-Sum-Revert demo: {args.hosts} hosts, lambda={args.reversion}, "
        f"highest-valued half removed at round {args.failure_round}"
    )
    print(
        render_series_table(
            "round", rounds, {"stddev error": errors, "true average": truths}, every=2
        )
    )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    if args.dataset is not None:
        trace = haggle_dataset(args.dataset)
    else:
        trace = generate_haggle_like_trace(args.devices, duration_hours=args.hours, seed=args.seed)
    durations = contact_duration_stats(trace)
    intercontact = intercontact_time_stats(trace)
    times, sizes = average_group_size_series(trace, step_seconds=3600.0)
    print(f"Trace {trace.name}: {trace.n_devices} devices, {trace.duration / 3600.0:.1f} hours, "
          f"{len(trace)} contacts")
    print(render_table(
        ["statistic", "contacts", "inter-contact gaps"],
        [
            ["count", durations["count"], intercontact["count"]],
            ["mean (s)", durations["mean"], intercontact["mean"]],
            ["median (s)", durations["median"], intercontact["median"]],
            ["p90 (s)", durations["p90"], intercontact["p90"]],
        ],
    ))
    print()
    print(render_series_table("hour", [round(t, 1) for t in times], {"avg group size": sizes}, every=4))
    if args.csv:
        trace.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "trace":
        return _command_trace(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
