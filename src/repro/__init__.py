"""repro — dynamic distributed in-network aggregation.

This package is a from-scratch reproduction of *Dynamic Approaches to
In-Network Aggregation* (Kennedy, Koch, Demers; ICDE 2009).  It provides:

* the paper's dynamic aggregation protocols — :class:`~repro.core.PushSumRevert`
  (averaging), :class:`~repro.core.CountSketchReset` (counting) and
  :class:`~repro.core.InvertAverage` (summation) — together with the
  Full-Transfer and adaptive-reversion optimisations;
* the static baselines they extend — Kempe et al.'s Push-Sum / Push-Pull,
  Considine et al.'s Sketch-Count, epoch-restarted aggregation and a
  TAG-style spanning-tree aggregator;
* the simulation substrate used for the paper's evaluation — a round-based
  gossip simulator with uniform, neighbourhood, spatial and trace-driven
  gossip environments, failure/churn models, synthetic contact traces and
  metric recorders;
* an experiment harness (``repro.experiments``) regenerating every figure in
  the paper's evaluation section.

Quickstart
----------

>>> from repro import Simulation, UniformEnvironment, PushSumRevert
>>> from repro.workloads import uniform_values
>>> values = uniform_values(200, seed=1)
>>> sim = Simulation(
...     protocol=PushSumRevert(reversion=0.01),
...     environment=UniformEnvironment(200),
...     values=values,
...     seed=1,
... )
>>> result = sim.run(rounds=30)
>>> abs(result.mean_estimate() - sum(values) / len(values)) < 5.0
True
"""

from repro.baselines import (
    EpochPushSum,
    HopsSampling,
    IntervalDensity,
    PushPull,
    PushSum,
    SketchCount,
    TreeAggregation,
)
from repro.core import (
    CountSketchReset,
    FullTransferPushSumRevert,
    InvertAverage,
    PushSumRevert,
    default_cutoff,
)
from repro.environments import (
    NeighborhoodEnvironment,
    SpatialGridEnvironment,
    TraceEnvironment,
    UniformEnvironment,
)
from repro.failures import (
    CorrelatedFailure,
    FailureEvent,
    JoinEvent,
    UncorrelatedFailure,
)
from repro.simulator import Simulation, SimulationResult

__all__ = [
    "CountSketchReset",
    "CorrelatedFailure",
    "EpochPushSum",
    "FailureEvent",
    "FullTransferPushSumRevert",
    "HopsSampling",
    "IntervalDensity",
    "InvertAverage",
    "JoinEvent",
    "NeighborhoodEnvironment",
    "PushPull",
    "PushSum",
    "PushSumRevert",
    "SketchCount",
    "Simulation",
    "SimulationResult",
    "SpatialGridEnvironment",
    "TraceEnvironment",
    "TreeAggregation",
    "UncorrelatedFailure",
    "UniformEnvironment",
    "default_cutoff",
]

__version__ = "1.0.0"
