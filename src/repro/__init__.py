"""repro — dynamic distributed in-network aggregation.

This package is a from-scratch reproduction of *Dynamic Approaches to
In-Network Aggregation* (Kennedy, Koch, Demers; ICDE 2009).  It provides:

* the paper's dynamic aggregation protocols — :class:`~repro.core.PushSumRevert`
  (averaging), :class:`~repro.core.CountSketchReset` (counting) and
  :class:`~repro.core.InvertAverage` (summation) — together with the
  Full-Transfer and adaptive-reversion optimisations;
* the static baselines they extend — Kempe et al.'s Push-Sum / Push-Pull,
  Considine et al.'s Sketch-Count, epoch-restarted aggregation and a
  TAG-style spanning-tree aggregator;
* the simulation substrate used for the paper's evaluation — a round-based
  gossip simulator with uniform, neighbourhood, spatial and trace-driven
  gossip environments, failure/churn models, synthetic contact traces and
  metric recorders;
* an experiment harness (``repro.experiments``) regenerating every figure in
  the paper's evaluation section.

* a declarative scenario layer (``repro.api``) — registries of named
  components, frozen JSON-round-trippable :class:`~repro.api.ScenarioSpec`
  run descriptions, and :class:`~repro.api.Sweep` grids executed serially
  or across processes by :class:`~repro.api.SweepRunner`;
* pluggable execution backends (``repro.api.backends``) — every scenario
  runs on the per-host ``"agent"`` engine or on NumPy ``"vectorized"``
  kernels; the default ``backend="auto"`` picks the kernels whenever the
  scenario's combination is supported — including the graph topologies
  (``ring``, ``grid``, ``random-geometric``, ``erdos-renyi``,
  ``spatial-grid``), which sample peers through the sparse CSR adjacency
  layer of ``repro.simulator.sparse`` (orders of magnitude faster at the
  paper's populations — ``repro-aggregate bench`` measures it and writes
  ``BENCH_core.json``);
* lossy and latent network models (``repro.network``) — the paper assumes
  instant, reliable delivery; ``ScenarioSpec(network=..., network_params=...)``
  lifts that: ``bernoulli-loss``, ``latency`` (fixed/uniform/lognormal
  delays through an in-flight delivery queue), ``bandwidth-cap`` and
  composable ``stacked`` models, with per-round mass-conservation
  assertions for the Push-Sum family (DESIGN.md §8);
* an observability layer (``repro.obs``, DESIGN.md §13) — pass
  ``run_scenario(spec, probe=TraceRecorder("out.jsonl"))`` (or a
  :class:`~repro.obs.MetricsRegistry`, or both via
  :class:`~repro.obs.MultiProbe`) to record phase spans, per-round
  counters and store hits/misses from any engine or backend; render a
  recorded trace with ``repro-aggregate obs report out.jsonl``.  The
  default is a zero-cost null probe, and probes never touch the RNG
  streams, so instrumented runs stay bit-identical.

Quickstart
----------

The declarative path — one spec describes the whole run, and the same
spec serialises to JSON for the CLI (``repro-aggregate run --config``)
and for parallel sweeps.  ``backend="auto"`` (the default) resolves to
the vectorised kernels here because uniform-gossip Push-Sum-Revert has
one; pin ``backend="agent"`` or ``backend="vectorized"`` to choose
explicitly (an unsupported explicit choice fails at construction):

>>> from repro import ScenarioSpec, run_scenario
>>> spec = ScenarioSpec(
...     protocol="push-sum-revert",
...     protocol_params={"reversion": 0.01},
...     environment="uniform",
...     workload="uniform",
...     n_hosts=200,
...     rounds=30,
...     seed=1,
... )
>>> spec.resolved_backend()
'vectorized'
>>> result = run_scenario(spec)
>>> spec == ScenarioSpec.from_json(spec.to_json())
True

The imperative path — construct the engine directly (the agent
realisation, still fully supported):

>>> from repro import Simulation, UniformEnvironment, PushSumRevert
>>> from repro.workloads import uniform_values
>>> values = uniform_values(200, seed=1)
>>> sim = Simulation(
...     protocol=PushSumRevert(reversion=0.01),
...     environment=UniformEnvironment(200),
...     values=values,
...     seed=1,
...     mode="exchange",
... )
>>> agent_result = run_scenario(spec.replace(backend="agent"))
>>> abs(sim.run(rounds=30).mean_estimate() - agent_result.mean_estimate()) < 1e-9
True

Benchmark the two backends against each other with
``repro-aggregate bench`` (or ``python benchmarks/bench_core.py``); the
committed trajectory lives in ``BENCH_core.json``.
"""

from repro.api import (
    ENVIRONMENTS,
    FAILURES,
    NETWORKS,
    PROTOCOLS,
    WORKLOADS,
    ScenarioSpec,
    Sweep,
    SweepResult,
    SweepRunner,
    register_environment,
    register_failure,
    register_network,
    register_protocol,
    register_workload,
    run_scenario,
)
from repro.baselines import (
    EpochPushSum,
    HopsSampling,
    IntervalDensity,
    PushPull,
    PushSum,
    SketchCount,
    TreeAggregation,
)
from repro.core import (
    CountSketchReset,
    FullTransferPushSumRevert,
    InvertAverage,
    PushSumRevert,
    default_cutoff,
)
from repro.environments import (
    NeighborhoodEnvironment,
    SpatialGridEnvironment,
    TraceEnvironment,
    UniformEnvironment,
)
from repro.failures import (
    CorrelatedFailure,
    FailureEvent,
    JoinEvent,
    UncorrelatedFailure,
)
from repro.network import (
    BandwidthCapNetwork,
    BernoulliLossNetwork,
    LatencyNetwork,
    NetworkModel,
    PerfectNetwork,
    StackedNetwork,
)
from repro.obs import (
    MetricsRegistry,
    MultiProbe,
    NullProbe,
    Probe,
    TraceRecorder,
    read_trace,
    render_report,
)
from repro.simulator import Simulation, SimulationResult
from repro.store import ResultStore

__all__ = [
    "BandwidthCapNetwork",
    "BernoulliLossNetwork",
    "CountSketchReset",
    "CorrelatedFailure",
    "ENVIRONMENTS",
    "EpochPushSum",
    "FAILURES",
    "FailureEvent",
    "FullTransferPushSumRevert",
    "HopsSampling",
    "IntervalDensity",
    "InvertAverage",
    "JoinEvent",
    "LatencyNetwork",
    "MetricsRegistry",
    "MultiProbe",
    "NETWORKS",
    "NeighborhoodEnvironment",
    "NetworkModel",
    "NullProbe",
    "PROTOCOLS",
    "PerfectNetwork",
    "Probe",
    "PushPull",
    "PushSum",
    "PushSumRevert",
    "ResultStore",
    "ScenarioSpec",
    "StackedNetwork",
    "SketchCount",
    "Simulation",
    "SimulationResult",
    "SpatialGridEnvironment",
    "Sweep",
    "SweepResult",
    "SweepRunner",
    "TraceEnvironment",
    "TraceRecorder",
    "TreeAggregation",
    "UncorrelatedFailure",
    "UniformEnvironment",
    "WORKLOADS",
    "default_cutoff",
    "register_environment",
    "register_failure",
    "register_network",
    "read_trace",
    "register_protocol",
    "register_workload",
    "render_report",
    "run_scenario",
]

__version__ = "1.0.0"
