"""Probabilistic counting sketches.

The counting side of the paper builds on Flajolet–Martin (FM) counting
sketches as applied to sensor networks by Considine et al.:

* :mod:`repro.sketches.hashing` — the ρ function (geometric bit selection
  via a deterministic hash) and bin assignment for stochastic averaging;
* :mod:`repro.sketches.fm_sketch` — classic FM bit sketches with ``m``-bin
  stochastic averaging, duplicate-insensitive union, and the
  :math:`n \\approx m\\,2^{\\bar R}/\\varphi` estimator;
* :mod:`repro.sketches.counter_matrix` — the per-(bin, bit) *freshness
  counter* matrix that Count-Sketch-Reset gossips instead of raw bits,
  which is what gives the sketch the ability to decay (Section IV).
"""

from repro.sketches.counter_matrix import CounterMatrix
from repro.sketches.fm_sketch import FMSketch, PHI, fm_estimate, rank_of_bits
from repro.sketches.hashing import bin_index, identifier_hash, rho

__all__ = [
    "CounterMatrix",
    "FMSketch",
    "PHI",
    "bin_index",
    "fm_estimate",
    "identifier_hash",
    "rank_of_bits",
    "rho",
]
