"""The freshness-counter matrix underlying Count-Sketch-Reset.

Count-Sketch-Reset (Section IV-A) replaces each bit of a Flajolet–Martin
sketch with an integer *freshness counter* ``N[n][k]``: the number of
gossip rounds since the youngest message sourcing that (bin, bit) position
was originated.  Positions a host itself sources are pinned at zero;
everything else is incremented every round and replaced by the minimum of
any value received.  A position is considered "set" when its counter is at
most a cutoff ``f(k)``; positions whose sources have all departed keep
ageing past the cutoff and thereby decay out of the sketch.

:class:`CounterMatrix` packages the matrix with its operations (increment,
min-merge, bit image, estimate) so the agent-based protocol, the
vectorised kernels and the tests all share one implementation of the
arithmetic.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sketches.fm_sketch import PHI, fm_estimate
from repro.sketches.hashing import sketch_coordinates

__all__ = ["CounterMatrix", "INFINITY"]

#: Sentinel used for "never heard of": effectively infinite round count.
#: Kept finite so the matrix stays an integer array (2^31-ish would overflow
#: int32 after increments; 10^9 rounds is far beyond any simulation length).
INFINITY = 1_000_000_000


class CounterMatrix:
    """An ``m`` × ``L`` matrix of freshness counters plus the owned positions.

    Parameters
    ----------
    bins, bits:
        Sketch dimensions (``m`` bins for stochastic averaging, ``L`` bit
        positions per bin).
    owned:
        The (bin, bit) positions this host sources.  One position for pure
        counting; ``v`` positions (possibly colliding) when the host
        registers the integer value ``v`` for summation.
    """

    def __init__(self, bins: int, bits: int, owned: Iterable[Tuple[int, int]] = ()):
        if bins < 1 or bits < 1:
            raise ValueError("bins and bits must both be >= 1")
        self.bins = int(bins)
        self.bits = int(bits)
        self.counters = np.full((self.bins, self.bits), INFINITY, dtype=np.int64)
        self.owned: Set[Tuple[int, int]] = set()
        for position in owned:
            self.own(position)

    # ------------------------------------------------------------- construction
    @classmethod
    def for_identifiers(
        cls,
        identifiers: Iterable[Hashable],
        bins: int,
        bits: int,
        *,
        salt: str = "",
    ) -> "CounterMatrix":
        """Build a matrix owning the positions of the given identifiers."""
        owned = [sketch_coordinates(identifier, bins, bits, salt=salt) for identifier in identifiers]
        return cls(bins, bits, owned)

    @classmethod
    def for_value(
        cls,
        host_id: Hashable,
        value: int,
        bins: int,
        bits: int,
        *,
        salt: str = "",
    ) -> "CounterMatrix":
        """Build a matrix registering ``value`` identifiers for host ``host_id``.

        ``value=1`` is plain counting; larger integers implement the
        multiple-insertion summation of Considine et al.
        """
        if value < 0:
            raise ValueError("value must be a non-negative integer")
        identifiers = [(host_id, j) for j in range(int(value))]
        return cls.for_identifiers(identifiers, bins, bits, salt=salt)

    # ----------------------------------------------------------------- owning
    def own(self, position: Tuple[int, int]) -> None:
        """Mark a (bin, bit) position as sourced by this host (counter pinned to 0)."""
        bin_idx, bit_idx = position
        if not (0 <= bin_idx < self.bins and 0 <= bit_idx < self.bits):
            raise ValueError(f"position {position} outside {self.bins}x{self.bits} matrix")
        self.owned.add((int(bin_idx), int(bit_idx)))
        self.counters[bin_idx, bit_idx] = 0

    def disown_all(self) -> None:
        """Stop sourcing every owned position (a graceful sign-off)."""
        self.owned.clear()

    # ------------------------------------------------------------------ round
    def increment(self) -> None:
        """Age every counter by one round, except the owned positions."""
        self.counters += 1
        # Clamp so repeated increments never approach the int64 ceiling.
        np.minimum(self.counters, INFINITY, out=self.counters)
        for bin_idx, bit_idx in self.owned:
            self.counters[bin_idx, bit_idx] = 0

    def merge_min(self, other: "CounterMatrix") -> None:
        """Take the element-wise minimum with another matrix (gossip merge)."""
        self._check_compatible(other)
        np.minimum(self.counters, other.counters, out=self.counters)
        for bin_idx, bit_idx in self.owned:
            self.counters[bin_idx, bit_idx] = 0

    def merge_min_array(self, counters: np.ndarray) -> None:
        """Merge with a raw counter array (used when payloads are plain arrays)."""
        if counters.shape != self.counters.shape:
            raise ValueError(
                f"cannot merge counters of shape {counters.shape} into {self.counters.shape}"
            )
        np.minimum(self.counters, counters, out=self.counters)
        for bin_idx, bit_idx in self.owned:
            self.counters[bin_idx, bit_idx] = 0

    def _check_compatible(self, other: "CounterMatrix") -> None:
        if (self.bins, self.bits) != (other.bins, other.bits):
            raise ValueError("counter matrices have incompatible shapes")

    # -------------------------------------------------------------- estimates
    def bit_image(self, cutoff: Callable[[int], float]) -> np.ndarray:
        """The derived bit matrix: position (n, k) is set iff counter ≤ cutoff(k)."""
        thresholds = np.array([cutoff(k) for k in range(self.bits)], dtype=float)
        return self.counters <= thresholds[None, :]

    def ranks(self, cutoff: Callable[[int], float]) -> List[int]:
        """Per-bin R values of the derived bit image."""
        image = self.bit_image(cutoff)
        ranks: List[int] = []
        for bin_idx in range(self.bins):
            row = image[bin_idx]
            if row.all():
                ranks.append(self.bits)
            else:
                ranks.append(int(np.argmin(row)))
        return ranks

    def estimate(
        self,
        cutoff: Callable[[int], float],
        *,
        identifiers_per_host: int = 1,
        paper_formula: bool = False,
    ) -> float:
        """Estimate the number of live hosts (or the live sum) from the counters.

        ``identifiers_per_host`` divides the raw distinct-identifier estimate:
        when every host registers ``c`` identifiers (Fig 11 uses ``c=100``),
        the distinct count estimates ``c·n`` and dividing recovers ``n``.
        """
        if identifiers_per_host < 1:
            raise ValueError("identifiers_per_host must be >= 1")
        raw = fm_estimate(self.ranks(cutoff), self.bins, paper_formula=paper_formula)
        return raw / identifiers_per_host

    # ------------------------------------------------------------------ misc
    def copy(self) -> "CounterMatrix":
        """An independent copy (owned positions included)."""
        clone = CounterMatrix(self.bins, self.bits)
        clone.counters = self.counters.copy()
        clone.owned = set(self.owned)
        return clone

    def payload(self) -> np.ndarray:
        """The array to place on the wire (a defensive copy of the counters)."""
        return self.counters.copy()

    def size_bytes(self, counter_bytes: int = 2) -> int:
        """Wire size assuming ``counter_bytes`` bytes per counter.

        Counters are small non-negative integers bounded by the cutoff plus
        the convergence time, so two bytes per counter is a faithful model of
        a practical encoding (the in-memory representation uses int64 purely
        for convenience).
        """
        return self.bins * self.bits * counter_bytes

    def max_finite_counter(self) -> Optional[int]:
        """The largest counter strictly below the INFINITY sentinel, if any."""
        finite = self.counters[self.counters < INFINITY]
        if finite.size == 0:
            return None
        return int(finite.max())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterMatrix):
            return NotImplemented
        return (
            self.bins == other.bins
            and self.bits == other.bits
            and self.owned == other.owned
            and bool(np.array_equal(self.counters, other.counters))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterMatrix(bins={self.bins}, bits={self.bits}, "
            f"owned={len(self.owned)} positions)"
        )
