"""Flajolet–Martin counting sketches with stochastic averaging.

An FM sketch summarises a multiset of identifiers into ``m`` bit vectors of
``L`` bits.  Each identifier deterministically sets one bit in one bin; the
union of two sketches is the bitwise OR; the number of *distinct*
identifiers is estimated from the average length ``R`` of the prefix of
contiguous ones, via

    n  ≈  m · 2^avg(R) / φ        with φ ≈ 0.77351.

The paper's Figure 2 prints the estimator as ``|B|·φ·2^avg(R)``; the
standard Flajolet–Martin normalisation divides by φ rather than
multiplying, and dividing is what actually makes the estimate unbiased, so
that is what :func:`fm_estimate` implements (and what the experiments use).
``fm_estimate(..., paper_formula=True)`` applies the literal formula from
the figure for comparison.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence

import numpy as np

from repro.sketches.hashing import sketch_coordinates

__all__ = ["PHI", "FMSketch", "rank_of_bits", "fm_estimate", "expected_relative_error"]

#: Flajolet–Martin's correction constant.
PHI = 0.77351


def rank_of_bits(bits: Sequence[bool]) -> int:
    """R(A): the length of the prefix of contiguous ones in a bit vector."""
    rank = 0
    for bit in bits:
        if bit:
            rank += 1
        else:
            break
    return rank


def fm_estimate(
    ranks: Sequence[float], bins: int, *, paper_formula: bool = False
) -> float:
    """Estimate the number of distinct identifiers from per-bin ranks.

    Parameters
    ----------
    ranks:
        ``R`` values, one per bin (bins that saw no identifier contribute 0).
    bins:
        Number of bins ``m`` (must equal ``len(ranks)``; passed explicitly to
        keep call sites honest).
    paper_formula:
        Use the literal ``m·φ·2^avg(R)`` expression from the paper's Figure 2
        instead of the standard ``m·2^avg(R)/φ`` normalisation.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if len(ranks) != bins:
        raise ValueError(f"expected {bins} ranks, got {len(ranks)}")
    mean_rank = float(np.mean(ranks))
    scale = bins * PHI if paper_formula else bins / PHI
    return scale * (2.0**mean_rank)


def expected_relative_error(bins: int) -> float:
    """Expected standard error of the FM estimate with ``bins`` bins.

    Flajolet and Martin give σ/n ≈ 0.78 / sqrt(m); with the paper's 64 bins
    this evaluates to ≈ 9.7 %, the figure quoted in Section V-B.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    return 0.78 / float(np.sqrt(bins))


class FMSketch:
    """A Flajolet–Martin sketch: ``m`` bins × ``L`` bits, duplicate-insensitive.

    Parameters
    ----------
    bins:
        Number of bins ``m`` used for stochastic averaging.
    bits:
        Bit-vector length ``L``; must satisfy 2^L >> n/m for the counts of
        interest (the default 32 is ample for every experiment here).
    salt:
        Optional salt mixed into the hash, letting independent sketches be
        built over the same identifier space.
    """

    def __init__(self, bins: int = 64, bits: int = 32, salt: str = ""):
        if bins < 1:
            raise ValueError("bins must be >= 1")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bins = int(bins)
        self.bits = int(bits)
        self.salt = salt
        self.matrix = np.zeros((self.bins, self.bits), dtype=bool)

    # ---------------------------------------------------------------- inserts
    def insert(self, identifier: Hashable) -> None:
        """Insert one identifier (idempotent)."""
        bin_idx, bit_idx = sketch_coordinates(identifier, self.bins, self.bits, salt=self.salt)
        self.matrix[bin_idx, bit_idx] = True

    def insert_many(self, identifiers: Iterable[Hashable]) -> None:
        """Insert an iterable of identifiers."""
        for identifier in identifiers:
            self.insert(identifier)

    def insert_value(self, host_id: Hashable, value: int) -> None:
        """Considine-style summation: register ``value`` distinct identifiers.

        Each unit of ``value`` contributes the identifier ``(host_id, j)``,
        so the distinct-count of the union over hosts estimates the sum of
        the hosts' integer values.
        """
        if value < 0:
            raise ValueError("summation sketches require non-negative integer values")
        for j in range(int(value)):
            self.insert((host_id, j))

    # ------------------------------------------------------------------ union
    def union(self, other: "FMSketch") -> "FMSketch":
        """Return a new sketch equal to the duplicate-insensitive union."""
        self._check_compatible(other)
        result = FMSketch(self.bins, self.bits, salt=self.salt)
        np.logical_or(self.matrix, other.matrix, out=result.matrix)
        return result

    def union_update(self, other: "FMSketch") -> None:
        """In-place union (the gossip merge operator)."""
        self._check_compatible(other)
        np.logical_or(self.matrix, other.matrix, out=self.matrix)

    def _check_compatible(self, other: "FMSketch") -> None:
        if (self.bins, self.bits, self.salt) != (other.bins, other.bits, other.salt):
            raise ValueError("sketches have incompatible shapes or salts")

    # -------------------------------------------------------------- estimates
    def ranks(self) -> List[int]:
        """Per-bin R values (length of the prefix of ones)."""
        ranks: List[int] = []
        for bin_idx in range(self.bins):
            row = self.matrix[bin_idx]
            # argmin of a boolean row returns the first False; an all-True row
            # returns 0, which we map to the full length.
            if row.all():
                ranks.append(self.bits)
            else:
                ranks.append(int(np.argmin(row)))
        return ranks

    def estimate(self, *, paper_formula: bool = False) -> float:
        """Estimated number of distinct identifiers inserted (or unioned) so far."""
        return fm_estimate(self.ranks(), self.bins, paper_formula=paper_formula)

    # ------------------------------------------------------------------ misc
    def copy(self) -> "FMSketch":
        """An independent copy of this sketch."""
        clone = FMSketch(self.bins, self.bits, salt=self.salt)
        clone.matrix = self.matrix.copy()
        return clone

    def size_bytes(self) -> int:
        """Approximate wire size of the sketch (bits packed into bytes)."""
        return int(np.ceil(self.bins * self.bits / 8))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FMSketch):
            return NotImplemented
        return (
            self.bins == other.bins
            and self.bits == other.bits
            and self.salt == other.salt
            and bool(np.array_equal(self.matrix, other.matrix))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FMSketch(bins={self.bins}, bits={self.bits}, estimate={self.estimate():.1f})"
