"""Deterministic hashing primitives for counting sketches.

Flajolet–Martin sketches require a function ρ mapping every object ``i``
to a bit index with the geometric distribution P[ρ(i)=k] = 2^-(k+1),
*deterministically* — identical objects must map to identical bits, which
is what makes the sketch duplicate-insensitive.  The canonical definition
(and the one the paper quotes) is "the index of the first nonzero bit of
the L-bit cryptographic hash of i", clamped to L when the hash is all
zeros.  Stochastic averaging additionally assigns each object to one of
``m`` bins, uniformly and deterministically.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Tuple

__all__ = ["identifier_hash", "rho", "bin_index", "sketch_coordinates"]


def identifier_hash(identifier: Hashable, salt: str = "") -> int:
    """A stable 256-bit hash of ``identifier`` (independent of PYTHONHASHSEED)."""
    encoded = f"{salt}|{type(identifier).__name__}|{identifier!r}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(encoded).digest(), "big")


def rho(identifier: Hashable, bits: int = 32, salt: str = "") -> int:
    """Index of the first set bit of the hash of ``identifier`` (0-based).

    Returns a value in ``[0, bits]``; the value ``bits`` is returned in the
    (astronomically unlikely) case that the low ``bits`` bits of the hash are
    all zero, matching the paper's definition.

    The distribution over identifiers is P[rho = k] = 2^-(k+1) for k < bits.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    value = identifier_hash(identifier, salt=f"rho:{salt}")
    for index in range(bits):
        if value & (1 << index):
            return index
    return bits


def bin_index(identifier: Hashable, bins: int, salt: str = "") -> int:
    """Deterministic uniform bin assignment in ``[0, bins)`` (stochastic averaging)."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    value = identifier_hash(identifier, salt=f"bin:{salt}")
    return value % bins


def sketch_coordinates(
    identifier: Hashable, bins: int, bits: int, salt: str = ""
) -> Tuple[int, int]:
    """The (bin, bit) pair an identifier occupies in an ``m`` × ``L`` sketch.

    The bin is uniform over ``[0, bins)`` and the bit follows the geometric
    ρ distribution, both derived deterministically from the identifier so
    that duplicate insertions are idempotent.
    """
    return bin_index(identifier, bins, salt=salt), min(rho(identifier, bits, salt=salt), bits - 1)
