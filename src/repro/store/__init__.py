"""Content-addressed experiment results (``repro.store``).

Every :class:`~repro.api.spec.ScenarioSpec` has a stable canonical hash
(:meth:`~repro.api.spec.ScenarioSpec.key`); :class:`ResultStore` maps that
hash to the full simulation result on disk (sqlite index + compressed JSON
blobs) so identical scenarios are never computed twice:

>>> from repro.api import ScenarioSpec, run_scenario
>>> from repro.store import ResultStore
>>> store = ResultStore(".repro-cache")          # doctest: +SKIP
>>> spec = ScenarioSpec(protocol="push-sum-revert", n_hosts=200, rounds=20)
>>> cold = run_scenario(spec, store=store)       # doctest: +SKIP  (executes)
>>> warm = run_scenario(spec, store=store)       # doctest: +SKIP  (cache hit)

Invalidation is versioned twice over: a store schema version
(:data:`STORE_SCHEMA_VERSION`) guards the payload layout, and a
per-protocol code fingerprint (:func:`code_fingerprint`) guards the
simulation code itself — editing a protocol or the engine turns exactly
the affected entries into misses.  :class:`~repro.api.sweep.SweepRunner`
builds incremental, resumable grid execution on top (see DESIGN.md §9).
"""

from repro.store.fingerprint import clear_fingerprint_cache, code_fingerprint
from repro.store.store import DEFAULT_CACHE_DIR, STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "clear_fingerprint_cache",
    "code_fingerprint",
]
