"""Code fingerprints: hash the source a cached result depends on.

A content-addressed result is only safe to serve while the code that
produced it is unchanged.  :func:`code_fingerprint` condenses everything a
scenario's outcome can depend on into one stable hex digest, in two parts:

* a *shared* part — every module of the packages all runs flow through
  (the engines, the network layer, environments, failures, workloads,
  topology, sketches, mobility traces, backend dispatch); editing any of
  them invalidates every entry, because any result could depend on them;
* a *per-protocol* part — the protocol's defining module plus everything
  it (transitively) imports from the protocol packages ``repro.core`` and
  ``repro.baselines``.  Editing one protocol therefore invalidates the
  entries of that protocol (and of protocols built on top of it, e.g.
  ``invert-average`` composing ``push-sum-revert``), while entries for
  unrelated protocols stay warm.

:class:`~repro.store.store.ResultStore` records the fingerprint at
``put`` time and treats any mismatch at ``get`` time as a miss.  The
digest hashes file *contents*, not mtimes, so a fresh checkout of the
same code keeps its cache warm.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import inspect
import os
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["code_fingerprint", "clear_fingerprint_cache"]

#: Packages every simulation result depends on, whichever protocol ran.
_SHARED_PACKAGES = (
    "repro.simulator",
    "repro.events",
    "repro.network",
    "repro.environments",
    "repro.failures",
    "repro.workloads",
    "repro.topology",
    "repro.sketches",
    "repro.mobility",
)

#: Single modules in the shared set (dispatch rules live outside a
#: simulation package but decide which engine runs).
_SHARED_MODULES = ("repro.api.backends",)

#: Packages protocols live in; intra-package imports are chased
#: transitively for the per-protocol part of the digest.
_PROTOCOL_PACKAGES = ("repro.core", "repro.baselines")

#: protocol name (or "" for the shared part) -> digest, memoised per
#: process (source files do not change under a running interpreter).
_CACHE: Dict[str, str] = {}


def _module_path(module_name: str) -> Optional[str]:
    """The source file behind ``module_name`` (``None`` when not findable)."""
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None or not os.path.exists(spec.origin):
        return None
    return spec.origin


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _package_sources(package_name: str) -> Iterator[Tuple[str, str]]:
    """(module-ish name, path) for every ``.py`` file in the package, sorted."""
    init_path = _module_path(package_name)
    if init_path is None:
        return
    for filename in sorted(os.listdir(os.path.dirname(init_path))):
        if filename.endswith(".py"):
            yield f"{package_name}/{filename}", os.path.join(os.path.dirname(init_path), filename)


def _protocol_imports(source: bytes) -> Set[str]:
    """Absolute imports into the protocol packages found in ``source``."""
    found: Set[str] = set()
    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - repo sources always parse
        return found
    prefixes = tuple(f"{package}." for package in _PROTOCOL_PACKAGES)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            # ``from repro.core import push_sum_revert`` names submodules in
            # the aliases; ``from repro.core.push_sum_revert import X`` names
            # the module itself.  Collect both candidates — non-modules are
            # filtered out when their source cannot be located.
            names = [node.module] + [f"{node.module}.{alias.name}" for alias in node.names]
        else:
            continue
        for name in names:
            if name in _PROTOCOL_PACKAGES or name.startswith(prefixes):
                found.add(name)
    return found


def _protocol_closure(module_name: str) -> List[Tuple[str, str]]:
    """The module plus its transitive protocol-package imports, sorted.

    Returns (module name, path) pairs.  Imports that resolve to the
    protocol *packages* themselves pull in the ``__init__`` module, whose
    own imports are chased in turn — so ``from repro.core import X``
    reaches ``X``'s defining module through the package re-exports.
    """
    seen: Set[str] = set()
    queue = [module_name]
    resolved: List[Tuple[str, str]] = []
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        path = _module_path(name)
        if path is None:
            continue
        resolved.append((name, path))
        queue.extend(_protocol_imports(_read(path)) - seen)
    return sorted(resolved)


def _shared_digest_material() -> List[Tuple[str, str]]:
    material: List[Tuple[str, str]] = []
    for package in _SHARED_PACKAGES:
        material.extend(_package_sources(package))
    for module in _SHARED_MODULES:
        path = _module_path(module)
        if path is not None:
            material.append((module, path))
    return material


def code_fingerprint(protocol: Optional[str] = None) -> str:
    """A stable digest of the code ``protocol``'s results depend on.

    With ``protocol=None`` the digest covers the shared simulation code
    only (useful for store-wide diagnostics); with a registered protocol
    name it additionally covers the protocol's defining module and its
    transitive imports inside the protocol packages.  Unregistered names
    raise :class:`~repro.api.registry.UnknownKeyError` (a ``KeyError``)
    — the store treats entries it cannot fingerprint as stale.
    """
    cache_key = protocol or ""
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached

    digest = hashlib.sha256()
    material = list(_shared_digest_material())
    if protocol is not None:
        from repro.api.registry import PROTOCOLS

        factory = PROTOCOLS.get(protocol)  # raises UnknownKeyError when unknown
        module = inspect.getmodule(factory)
        digest.update(protocol.encode())
        if module is not None:
            material.extend(_protocol_closure(module.__name__))
    for name, path in material:
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(_read(path))

    fingerprint = digest.hexdigest()
    _CACHE[cache_key] = fingerprint
    return fingerprint


def clear_fingerprint_cache() -> None:
    """Drop the per-process memo (tests that monkeypatch sources use this)."""
    _CACHE.clear()
