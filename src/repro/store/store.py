"""A content-addressed store of simulation results.

:class:`ResultStore` maps a :class:`~repro.api.spec.ScenarioSpec`'s
canonical hash (:meth:`~repro.api.spec.ScenarioSpec.key`) to the full
:class:`~repro.simulator.SimulationResult` it produced.  Layout on disk
(``.repro-cache/`` by default)::

    .repro-cache/
        index.db                 # sqlite: one row per cached result
        blobs/<k[:2]>/<k>.json.gz  # gzip-compressed full result payload

The sqlite index carries everything needed to answer ``get`` without
touching a blob — the store schema version and the per-protocol code
fingerprint (:mod:`repro.store.fingerprint`) recorded at ``put`` time.  A
mismatch on either is treated as a miss and the stale entry is dropped, so
a store can never serve a result produced by older code or an older blob
layout.  Blob writes go through a temp file + :func:`os.replace` and index
writes are single sqlite transactions, which makes concurrent writers
(several sweeps sharing one cache directory) safe; the sweep runner
additionally funnels all of a grid's writes through the parent process.

Results round-trip exactly: payload floats are serialised with
``repr``-fidelity JSON, so a warm read is bit-identical to the run that
produced it (asserted in ``tests/test_store.py``).
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import sqlite3
import time
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional

from repro.obs.probe import NULL_PROBE
from repro.simulator.result import SimulationResult
from repro.store.fingerprint import code_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import ScenarioSpec

__all__ = ["ResultStore", "STORE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR"]

#: Version of the store's on-disk layout *and* of the result payload
#: format.  Bump it whenever either changes shape; every existing entry
#: then reads as a miss and is pruned on first contact.
STORE_SCHEMA_VERSION = 1

#: Where a store lives when the caller does not say otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"

_TABLE = """
CREATE TABLE IF NOT EXISTS results (
    key            TEXT PRIMARY KEY,
    protocol       TEXT NOT NULL,
    backend        TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    fingerprint    TEXT NOT NULL,
    created        REAL NOT NULL,
    last_used      REAL NOT NULL,
    hits           INTEGER NOT NULL DEFAULT 0,
    n_bytes        INTEGER NOT NULL,
    spec           TEXT NOT NULL
)
"""


class ResultStore:
    """Content-addressed experiment results under one cache directory."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR, *, probe=None):
        self.root = os.path.abspath(root)
        self._blob_root = os.path.join(self.root, "blobs")
        os.makedirs(self._blob_root, exist_ok=True)
        self._index_path = os.path.join(self.root, "index.db")
        with self._connect() as connection:
            connection.execute(_TABLE)
        #: Counters for this store handle's lifetime (reported by the CLI).
        self.session: Dict[str, int] = {"hits": 0, "misses": 0, "puts": 0}
        #: Optional :mod:`repro.obs` observer: hit/miss counts and blob-IO
        #: latency spans.  Defaults to the zero-cost null probe.
        self.probe = probe if probe is not None else NULL_PROBE

    # ------------------------------------------------------------------ plumbing
    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One transaction on the index: commit on success, always close.

        The generous busy timeout is the concurrency story — sqlite
        serialises writers itself; contending stores just wait their turn.
        """
        connection = sqlite3.connect(self._index_path, timeout=30.0)
        try:
            with connection:
                yield connection
        finally:
            connection.close()

    def _blob_path(self, key: str) -> str:
        return os.path.join(self._blob_root, key[:2], f"{key}.json.gz")

    @staticmethod
    def _key(spec: "ScenarioSpec") -> str:
        key = spec.key()
        if not isinstance(key, str) or not key:
            raise ValueError(f"spec.key() must return a non-empty string, got {key!r}")
        return key

    def _drop(self, key: str) -> None:
        with self._connect() as connection:
            connection.execute("DELETE FROM results WHERE key = ?", (key,))
        try:
            os.remove(self._blob_path(key))
        except OSError:
            pass

    def _is_stale(self, schema_version: int, protocol: str, fingerprint: str) -> bool:
        if schema_version != STORE_SCHEMA_VERSION:
            return True
        try:
            expected = code_fingerprint(protocol)
        except KeyError:
            # The protocol is not registered in this process (a custom
            # @register_protocol module not imported, or a removed
            # built-in).  The entry cannot be validated, so it cannot be
            # served — stats counts it stale and prune drops it.
            return True
        return fingerprint != expected

    # ------------------------------------------------------------------- lookup
    def get(self, spec: "ScenarioSpec") -> Optional[SimulationResult]:
        """The stored result for ``spec``, or ``None`` on miss.

        Stale entries — written under another schema version or before the
        protocol/engine code changed — are dropped and reported as misses.
        """
        key = self._key(spec)
        with self._connect() as connection:
            row = connection.execute(
                "SELECT schema_version, protocol, fingerprint FROM results WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            self._miss()
            return None
        schema_version, protocol, fingerprint = row
        if self._is_stale(schema_version, protocol, fingerprint):
            self._drop(key)
            self._miss()
            return None
        try:
            with self.probe.span("blob_read"):
                with gzip.open(self._blob_path(key), "rt", encoding="utf-8") as handle:
                    payload = json.load(handle)
                result = SimulationResult.from_payload(payload)
        except (OSError, EOFError, ValueError, KeyError, TypeError):
            # Missing or corrupt blob: heal the index and report a miss.
            self._drop(key)
            self._miss()
            return None
        now = time.time()
        with self._connect() as connection:
            connection.execute(
                "UPDATE results SET hits = hits + 1, last_used = ? WHERE key = ?",
                (now, key),
            )
        self.session["hits"] += 1
        if self.probe.enabled:
            self.probe.count("store.hits")
        return result

    def _miss(self) -> None:
        self.session["misses"] += 1
        if self.probe.enabled:
            self.probe.count("store.misses")

    def contains(self, spec: "ScenarioSpec") -> bool:
        """Whether ``get(spec)`` would hit (without reading the blob)."""
        key = self._key(spec)
        with self._connect() as connection:
            row = connection.execute(
                "SELECT schema_version, protocol, fingerprint FROM results WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return False
        return not self._is_stale(*[row[i] for i in (0, 1, 2)]) and os.path.exists(
            self._blob_path(key)
        )

    # ------------------------------------------------------------------ storage
    def put(self, spec: "ScenarioSpec", result: SimulationResult) -> str:
        """Store ``result`` under ``spec``'s key; returns the key."""
        if not isinstance(result, SimulationResult):
            raise TypeError(f"expected a SimulationResult, got {type(result).__name__}")
        key = self._key(spec)
        blob_path = self._blob_path(key)
        os.makedirs(os.path.dirname(blob_path), exist_ok=True)
        with self.probe.span("blob_write"):
            payload = json.dumps(result.to_payload(), separators=(",", ":"))
            # ``mtime=0`` keeps equal payloads byte-identical on disk; the temp
            # file + replace makes a concurrent reader see old-or-new, never half.
            blob = gzip.compress(payload.encode("utf-8"), mtime=0)
            tmp_path = f"{blob_path}.tmp.{os.getpid()}"
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, blob_path)
        now = time.time()
        with self._connect() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO results "
                "(key, protocol, backend, schema_version, fingerprint, created, "
                " last_used, hits, n_bytes, spec) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, 0, ?, ?)",
                (
                    key,
                    spec.protocol,
                    spec.resolved_backend(),
                    STORE_SCHEMA_VERSION,
                    code_fingerprint(spec.protocol),
                    now,
                    now,
                    len(blob),
                    json.dumps(spec.to_dict(), sort_keys=True),
                ),
            )
        self.session["puts"] += 1
        if self.probe.enabled:
            self.probe.count("store.puts")
        return key

    # --------------------------------------------------------------- management
    def __len__(self) -> int:
        with self._connect() as connection:
            (count,) = connection.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def stats(self) -> Dict[str, Any]:
        """A summary of the store's contents (what ``cache stats`` prints)."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT protocol, schema_version, fingerprint, hits, n_bytes FROM results"
            ).fetchall()
        by_protocol: Dict[str, int] = {}
        stale = 0
        total_bytes = 0
        lifetime_hits = 0
        for protocol, schema_version, fingerprint, hits, n_bytes in rows:
            by_protocol[protocol] = by_protocol.get(protocol, 0) + 1
            total_bytes += int(n_bytes)
            lifetime_hits += int(hits)
            if self._is_stale(schema_version, protocol, fingerprint):
                stale += 1
        return {
            "root": self.root,
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": len(rows),
            "stale_entries": stale,
            "total_bytes": total_bytes,
            "lifetime_hits": lifetime_hits,
            "by_protocol": dict(sorted(by_protocol.items())),
            "session": dict(self.session),
        }

    def prune(self, *, older_than_days: Optional[float] = None) -> int:
        """Drop stale entries (wrong schema/fingerprint, missing blobs) and,
        optionally, entries created more than ``older_than_days`` ago.

        Returns the number of entries removed.
        """
        if older_than_days is not None and older_than_days < 0:
            raise ValueError("older_than_days must be >= 0")
        cutoff = None if older_than_days is None else time.time() - older_than_days * 86400.0
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key, protocol, schema_version, fingerprint, created FROM results"
            ).fetchall()
        removed = 0
        for key, protocol, schema_version, fingerprint, created in rows:
            stale = self._is_stale(schema_version, protocol, fingerprint)
            expired = cutoff is not None and created < cutoff
            orphaned = not os.path.exists(self._blob_path(key))
            if stale or expired or orphaned:
                self._drop(key)
                removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        with self._connect() as connection:
            (count,) = connection.execute("SELECT COUNT(*) FROM results").fetchone()
            connection.execute("DELETE FROM results")
        for dirpath, _dirnames, filenames in os.walk(self._blob_root):
            for filename in filenames:
                try:
                    os.remove(os.path.join(dirpath, filename))
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return int(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({self.root!r}, {len(self)} entries)"
