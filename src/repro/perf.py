"""Core performance benchmark: the agent engine vs the vectorised backend.

The ROADMAP's north star is to run the paper's scenarios as fast as the
hardware allows; this module is the measuring stick.  It times identical
declarative scenarios (:class:`~repro.api.ScenarioSpec`) on the ``"agent"``
and ``"vectorized"`` execution backends across population sizes, derives
per-(protocol, size) speedups, and serialises everything to
``BENCH_core.json`` — the repo's committed perf trajectory.  Three entry
points share the implementation:

* ``repro-aggregate bench`` / ``python -m repro bench`` — the CLI;
* ``python benchmarks/bench_core.py`` — the standalone script;
* :func:`run_core_benchmark` — the library call (used by tests).

``--smoke`` runs a seconds-long configuration for CI; the committed
numbers come from the full default configuration.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.render import render_table
from repro.api.spec import ScenarioSpec, run_scenario

__all__ = [
    "BenchRecord",
    "DEFAULT_PROTOCOLS",
    "run_core_benchmark",
    "render_benchmark",
    "write_benchmark",
    "main",
    "DEFAULT_SIZES",
    "SMOKE_SIZES",
]

#: Populations timed by the full benchmark.
DEFAULT_SIZES = (1_000, 10_000, 100_000)
#: Populations timed by ``--smoke`` (seconds-long; used in CI).
SMOKE_SIZES = (256, 1_024)

#: The agent engine is O(population · rounds) of Python-level work; beyond
#: these sizes a single timing run takes minutes, so the benchmark records
#: the vectorised numbers alone (the speedup column needs both sides).
AGENT_SIZE_CAPS = {
    "push-sum-revert": 10_000,
    "push-sum-revert-lossy": 10_000,
    "count-sketch-reset": 2_000,
}

#: Protocol cells timed by default: the two dynamic protocols on a perfect
#: network plus the lossy-network variant (Bernoulli loss exercises the
#: delivery layer on the agent engine and the loss path in the kernel).
DEFAULT_PROTOCOLS = ("push-sum-revert", "count-sketch-reset", "push-sum-revert-lossy")


@dataclass
class BenchRecord:
    """One timed (protocol, backend, population) cell."""

    protocol: str
    backend: str
    n_hosts: int
    rounds: int
    repeats: int
    best_seconds: float
    mean_seconds: float

    @property
    def ms_per_round(self) -> float:
        """Best-case wall-clock milliseconds per gossip round."""
        return 1000.0 * self.best_seconds / self.rounds

    @property
    def host_rounds_per_second(self) -> float:
        """Best-case (host · round) throughput — the scaling headline."""
        return self.n_hosts * self.rounds / self.best_seconds


def _bench_spec(protocol: str, n_hosts: int, rounds: int, backend: str, seed: int) -> ScenarioSpec:
    """The scenario timed for one benchmark cell.

    Both protocols include the paper's half-the-network failure so the
    benchmark exercises the event path, not just the steady-state loop.
    """
    failure_round = max(1, rounds // 2)
    failure = {
        "event": "failure",
        "round": failure_round,
        "model": "uncorrelated",
        "fraction": 0.5,
    }
    if protocol == "push-sum-revert":
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "push-sum-revert-lossy":
        # The lossy-network row: identical protocol work plus the delivery
        # layer (agent) / the Bernoulli loss path (kernel).
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            mode="push",
            network="bernoulli-loss",
            network_params={"p": 0.2},
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "count-sketch-reset":
        return ScenarioSpec(
            protocol="count-sketch-reset",
            protocol_params={"bins": 16, "bits": 18, "cutoff": "default"},
            workload="constant",
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    raise ValueError(f"no benchmark scenario for protocol {protocol!r}")


def _time_spec(spec: ScenarioSpec, repeats: int) -> List[float]:
    """Wall-clock seconds for ``repeats`` complete runs of ``spec``."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_scenario(spec)
        times.append(time.perf_counter() - start)
    return times


def run_core_benchmark(
    *,
    sizes: Optional[Sequence[int]] = None,
    rounds: int = 10,
    repeats: int = 3,
    seed: int = 0,
    smoke: bool = False,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
) -> Dict[str, object]:
    """Time every (protocol, backend, size) cell and return the payload.

    The agent engine is skipped above :data:`AGENT_SIZE_CAPS` (its runtime
    there is minutes per cell); the vectorised backend runs every size.
    Speedups are reported wherever both backends were timed.
    """
    if rounds < 1 or repeats < 1:
        raise ValueError("rounds and repeats must be >= 1")
    chosen_sizes = tuple(int(size) for size in (sizes or (SMOKE_SIZES if smoke else DEFAULT_SIZES)))
    if not chosen_sizes or any(size < 2 for size in chosen_sizes):
        raise ValueError("sizes must be a non-empty sequence of populations >= 2")

    records: List[BenchRecord] = []
    for protocol in protocols:
        cap = AGENT_SIZE_CAPS.get(protocol, max(chosen_sizes))
        for n_hosts in chosen_sizes:
            backends = ["vectorized"] + (["agent"] if n_hosts <= cap else [])
            for backend in backends:
                spec = _bench_spec(protocol, n_hosts, rounds, backend, seed)
                times = _time_spec(spec, repeats)
                records.append(
                    BenchRecord(
                        protocol=protocol,
                        backend=backend,
                        n_hosts=n_hosts,
                        rounds=rounds,
                        repeats=repeats,
                        best_seconds=min(times),
                        mean_seconds=sum(times) / len(times),
                    )
                )

    by_cell = {(r.protocol, r.backend, r.n_hosts): r for r in records}
    speedups: Dict[str, Dict[str, float]] = {}
    for protocol in protocols:
        for n_hosts in chosen_sizes:
            agent = by_cell.get((protocol, "agent", n_hosts))
            vectorized = by_cell.get((protocol, "vectorized", n_hosts))
            if agent is None or vectorized is None:
                continue
            speedups.setdefault(protocol, {})[str(n_hosts)] = round(
                agent.best_seconds / vectorized.best_seconds, 2
            )

    return {
        "benchmark": "core-backends",
        "schema_version": 1,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "sizes": list(chosen_sizes),
            "rounds": rounds,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "protocols": list(protocols),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": __import__("numpy").__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": [
            {
                **asdict(record),
                "ms_per_round": round(record.ms_per_round, 4),
                "host_rounds_per_second": round(record.host_rounds_per_second, 1),
            }
            for record in records
        ],
        "speedups": speedups,
    }


def render_benchmark(payload: Dict[str, object]) -> str:
    """The payload as an aligned text table plus the speedup summary."""
    rows = [
        [
            record["protocol"],
            record["backend"],
            record["n_hosts"],
            record["rounds"],
            round(record["best_seconds"], 4),
            record["ms_per_round"],
            record["host_rounds_per_second"],
        ]
        for record in payload["records"]
    ]
    table = render_table(
        ["protocol", "backend", "hosts", "rounds", "best (s)", "ms/round", "host-rounds/s"],
        rows,
    )
    lines = [f"Core backend benchmark ({payload['config']['repeats']} repeats, best-of shown)", table]
    speedups = payload.get("speedups") or {}
    if speedups:
        lines.append("\nVectorised speedup over the agent engine:")
        speedup_rows = [
            [protocol, n_hosts, f"{factor:g}x"]
            for protocol, per_size in speedups.items()
            for n_hosts, factor in per_size.items()
        ]
        lines.append(render_table(["protocol", "hosts", "speedup"], speedup_rows))
    return "\n".join(lines)


def write_benchmark(payload: Dict[str, object], path: str) -> None:
    """Write the payload as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark flags (shared by the CLI and the script)."""
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-long configuration (small populations; used in CI)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help=f"population sizes to time (default {list(DEFAULT_SIZES)}, smoke {list(SMOKE_SIZES)})",
    )
    parser.add_argument("--rounds", type=int, default=10, help="gossip rounds per timed run")
    parser.add_argument("--repeats", type=int, default=3, help="timed runs per cell (best-of)")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--output", default="BENCH_core.json",
        help="where to write the JSON payload (default: ./BENCH_core.json)",
    )
    parser.add_argument("--json", action="store_true", help="print the JSON payload to stdout")


def run_bench_command(args: argparse.Namespace) -> int:
    """Execute the benchmark for parsed flags (the `repro bench` body)."""
    try:
        payload = run_core_benchmark(
            sizes=args.sizes,
            rounds=args.rounds,
            repeats=args.repeats,
            seed=args.seed,
            smoke=args.smoke,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_benchmark(payload))
    if args.output:
        try:
            write_benchmark(payload, args.output)
        except OSError as error:
            # The timings were already printed above, so the work survives
            # an unwritable path; report it in the CLI's error convention.
            print(f"error: cannot write {args.output}: {error}", file=sys.stderr)
            return 2
        print(f"\nwrote {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_core.py``)."""
    parser = argparse.ArgumentParser(
        prog="bench_core",
        description="Time the agent vs vectorised execution backends",
    )
    add_bench_arguments(parser)
    return run_bench_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
