"""Core performance benchmark: the agent engine vs the vectorised backend.

The ROADMAP's north star is to run the paper's scenarios as fast as the
hardware allows; this module is the measuring stick.  It times identical
declarative scenarios (:class:`~repro.api.ScenarioSpec`) on the ``"agent"``
and ``"vectorized"`` execution backends across population sizes, derives
per-(protocol, size) speedups, and serialises everything to
``BENCH_core.json`` — the repo's committed perf trajectory.  Three entry
points share the implementation:

* ``repro-aggregate bench`` / ``python -m repro bench`` — the CLI;
* ``python benchmarks/bench_core.py`` — the standalone script;
* :func:`run_core_benchmark` — the library call (used by tests).

``--smoke`` runs a seconds-long configuration for CI; the committed
numbers come from the full default configuration.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.render import render_table
from repro.api.spec import ScenarioSpec, run_scenario

__all__ = [
    "BenchRecord",
    "AGENT_ONLY_PROTOCOLS",
    "DEFAULT_PROTOCOLS",
    "run_core_benchmark",
    "render_benchmark",
    "write_benchmark",
    "compare_benchmarks",
    "render_comparison",
    "main",
    "DEFAULT_SIZES",
    "SMOKE_SIZES",
    "DEFAULT_REGRESSION_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]

#: Populations timed by the full benchmark.  This MUST remain a superset
#: of :data:`SMOKE_SIZES`: the CI ``bench-gate`` job compares a smoke run
#: against the committed ``BENCH_core.json``, so a baseline regenerated
#: with the plain default configuration has to contain the smoke cells
#: (``tests/test_bench_compare.py`` pins the subset relation).
DEFAULT_SIZES = (256, 1_000, 1_024, 10_000, 100_000)
#: Populations timed by ``--smoke`` (seconds-long; used in CI).
SMOKE_SIZES = (256, 1_024)

#: The agent engine is O(population · rounds) of Python-level work; beyond
#: these sizes a single timing run takes minutes, so the benchmark records
#: the vectorised numbers alone (the speedup column needs both sides).
AGENT_SIZE_CAPS = {
    "push-sum-revert": 10_000,
    "push-sum-revert-lossy": 10_000,
    "push-sum-revert-ring": 10_000,
    "push-sum-revert-grid": 10_000,
    "push-sum-revert-churn": 10_000,
    "push-sum-revert-trace": 2_000,
    "count-sketch-reset": 2_000,
    "push-sum-revert-events": 2_000,
}

#: Deprecated: rows that only the agent engine could run.  Backend
#: eligibility is now derived per cell from
#: :func:`repro.api.plan.resolve_plan` (see :func:`run_core_benchmark`),
#: so new engine×backend combinations are benched automatically instead
#: of being silently skipped by a hand-maintained set.  Kept (empty) for
#: import compatibility.
AGENT_ONLY_PROTOCOLS = ()

#: Protocol cells timed by default: the two dynamic protocols on a perfect
#: network, the lossy-network variant (Bernoulli loss exercises the
#: delivery layer on the agent engine and the loss path in the kernel),
#: two topology-restricted rows (ring and grid gossip through the
#: sparse-adjacency samplers of :mod:`repro.simulator.sparse`), a churn
#: row (continuous departures + arrivals — the mutable-membership path of
#: DESIGN.md §12), a trace-replay row (contact-trace gossip through the
#: time-varying CSR with group-relative error), and an event-engine row
#: (latency x exchange on the continuous-time calendar of
#: :mod:`repro.events` — timed on both the agent calendar and the
#: bucketed vectorised calendar of :mod:`repro.events.vectorized`).
DEFAULT_PROTOCOLS = (
    "push-sum-revert",
    "count-sketch-reset",
    "push-sum-revert-lossy",
    "push-sum-revert-ring",
    "push-sum-revert-grid",
    "push-sum-revert-churn",
    "push-sum-revert-trace",
    "push-sum-revert-events",
)


@dataclass
class BenchRecord:
    """One timed (protocol, backend, population) cell."""

    protocol: str
    backend: str
    n_hosts: int
    rounds: int
    repeats: int
    best_seconds: float
    mean_seconds: float

    @property
    def ms_per_round(self) -> float:
        """Best-case wall-clock milliseconds per gossip round."""
        return 1000.0 * self.best_seconds / self.rounds

    @property
    def host_rounds_per_second(self) -> float:
        """Best-case (host · round) throughput — the scaling headline."""
        return self.n_hosts * self.rounds / self.best_seconds


def _bench_spec(protocol: str, n_hosts: int, rounds: int, backend: str, seed: int) -> ScenarioSpec:
    """The scenario timed for one benchmark cell.

    Both protocols include the paper's half-the-network failure so the
    benchmark exercises the event path, not just the steady-state loop.
    """
    failure_round = max(1, rounds // 2)
    failure = {
        "event": "failure",
        "round": failure_round,
        "model": "uncorrelated",
        "fraction": 0.5,
    }
    if protocol == "push-sum-revert":
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "push-sum-revert-lossy":
        # The lossy-network row: identical protocol work plus the delivery
        # layer (agent) / the Bernoulli loss path (kernel).
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            mode="push",
            network="bernoulli-loss",
            network_params={"p": 0.2},
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol in ("push-sum-revert-ring", "push-sum-revert-grid"):
        # The topology rows: identical protocol work routed through the
        # sparse-adjacency peer samplers (ring lattice / 2-D grid).
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            environment="ring" if protocol.endswith("ring") else "grid",
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "push-sum-revert-churn":
        # The churn row: a failure draw plus fresh arrivals every round
        # from the halfway point on — the kernels mask and grow their
        # arrays each round instead of running the steady-state loop.
        churn = {
            "event": "churn",
            "start": failure_round,
            "stop": rounds,
            "model": "uncorrelated",
            "fraction": 0.02,
            "arrivals_per_round": max(1, n_hosts // 100),
        }
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(churn,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "push-sum-revert-trace":
        # The trace-replay row: a synthetic contact trace compiled to the
        # per-round time-varying CSR, with group-relative error against
        # the union-window components (DESIGN.md §12).
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            environment="trace",
            environment_params={"devices": n_hosts, "hours": 1.0},
            n_hosts=n_hosts,
            rounds=rounds,
            group_relative=True,
            seed=seed,
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "push-sum-revert-events":
        # The event-engine row: latency x exchange on the continuous-time
        # calendar — the combination the round engine rejects outright.
        return ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            mode="exchange",
            network="latency",
            network_params={"distribution": "uniform", "low": 0, "high": 2},
            engine="events",
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    if protocol == "count-sketch-reset":
        return ScenarioSpec(
            protocol="count-sketch-reset",
            protocol_params={"bins": 16, "bits": 18, "cutoff": "default"},
            workload="constant",
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            events=(failure,),
            backend=backend,
            name=f"bench {protocol} n={n_hosts} ({backend})",
        )
    raise ValueError(f"no benchmark scenario for protocol {protocol!r}")


def _time_spec(spec: ScenarioSpec, repeats: int) -> List[float]:
    """Wall-clock seconds for ``repeats`` complete runs of ``spec``."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_scenario(spec)
        times.append(time.perf_counter() - start)
    return times


def run_core_benchmark(
    *,
    sizes: Optional[Sequence[int]] = None,
    rounds: int = 10,
    repeats: int = 3,
    seed: int = 0,
    smoke: bool = False,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
) -> Dict[str, object]:
    """Time every (protocol, backend, size) cell and return the payload.

    The agent engine is skipped above :data:`AGENT_SIZE_CAPS` (its runtime
    there is minutes per cell); the vectorised backend runs every size.
    Speedups are reported wherever both backends were timed.
    """
    if rounds < 1 or repeats < 1:
        raise ValueError("rounds and repeats must be >= 1")
    chosen_sizes = tuple(int(size) for size in (sizes or (SMOKE_SIZES if smoke else DEFAULT_SIZES)))
    if not chosen_sizes or any(size < 2 for size in chosen_sizes):
        raise ValueError("sizes must be a non-empty sequence of populations >= 2")

    records: List[BenchRecord] = []
    from repro.api.plan import resolve_plan

    for protocol in protocols:
        cap = AGENT_SIZE_CAPS.get(protocol, max(chosen_sizes))
        for n_hosts in chosen_sizes:
            agent_side = ["agent"] if n_hosts <= cap else []
            # Plan-driven gating: a cell gets a vectorised row exactly when
            # the capability layer would auto-resolve it to the fast path.
            probe_spec = _bench_spec(protocol, n_hosts, rounds, "auto", seed)
            if resolve_plan(probe_spec).backend == "vectorized":
                backends = ["vectorized"] + agent_side
            else:
                backends = agent_side
            for backend in backends:
                spec = _bench_spec(protocol, n_hosts, rounds, backend, seed)
                times = _time_spec(spec, repeats)
                records.append(
                    BenchRecord(
                        protocol=protocol,
                        backend=backend,
                        n_hosts=n_hosts,
                        rounds=rounds,
                        repeats=repeats,
                        best_seconds=min(times),
                        mean_seconds=sum(times) / len(times),
                    )
                )

    by_cell = {(r.protocol, r.backend, r.n_hosts): r for r in records}
    speedups: Dict[str, Dict[str, float]] = {}
    for protocol in protocols:
        for n_hosts in chosen_sizes:
            agent = by_cell.get((protocol, "agent", n_hosts))
            vectorized = by_cell.get((protocol, "vectorized", n_hosts))
            if agent is None or vectorized is None:
                continue
            speedups.setdefault(protocol, {})[str(n_hosts)] = round(
                agent.best_seconds / vectorized.best_seconds, 2
            )

    return {
        "benchmark": "core-backends",
        "schema_version": 1,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "sizes": list(chosen_sizes),
            "rounds": rounds,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "protocols": list(protocols),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": __import__("numpy").__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": [
            {
                **asdict(record),
                "ms_per_round": round(record.ms_per_round, 4),
                "host_rounds_per_second": round(record.host_rounds_per_second, 1),
            }
            for record in records
        ],
        "speedups": speedups,
    }


def render_benchmark(payload: Dict[str, object]) -> str:
    """The payload as an aligned text table plus the speedup summary."""
    rows = [
        [
            record["protocol"],
            record["backend"],
            record["n_hosts"],
            record["rounds"],
            round(record["best_seconds"], 4),
            record["ms_per_round"],
            record["host_rounds_per_second"],
        ]
        for record in payload["records"]
    ]
    table = render_table(
        ["protocol", "backend", "hosts", "rounds", "best (s)", "ms/round", "host-rounds/s"],
        rows,
    )
    lines = [f"Core backend benchmark ({payload['config']['repeats']} repeats, best-of shown)", table]
    speedups = payload.get("speedups") or {}
    if speedups:
        lines.append("\nVectorised speedup over the agent engine:")
        speedup_rows = [
            [protocol, n_hosts, f"{factor:g}x"]
            for protocol, per_size in speedups.items()
            for n_hosts, factor in per_size.items()
        ]
        lines.append(render_table(["protocol", "hosts", "speedup"], speedup_rows))
    return "\n".join(lines)


def write_benchmark(payload: Dict[str, object], path: str) -> None:
    """Write the payload as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Regression comparison (the CI bench-gate; see benchmarks/compare_bench.py)
# ---------------------------------------------------------------------------

#: A record counts as a regression when its mean time grows by more than
#: this factor over the baseline.  2x absorbs machine-to-machine variance
#: between the committed baseline and the CI runner while still catching
#: the an-order-of-magnitude slowdowns a broken kernel produces.
DEFAULT_REGRESSION_THRESHOLD = 2.0

#: Records whose *baseline* mean is below this many seconds are reported
#: but never gated on: sub-5ms cells are dominated by timer noise and
#: interpreter warm-up, not by the code under test.
DEFAULT_MIN_SECONDS = 0.005


def _record_key(record: Dict[str, object]):
    """The identity of one benchmark cell across payloads."""
    return (
        record["protocol"],
        record["backend"],
        int(record["n_hosts"]),
        int(record["rounds"]),
    )


def compare_benchmarks(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    *,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Dict[str, object]:
    """Compare two benchmark payloads record by record.

    Records are matched on (protocol, backend, n_hosts, rounds) and their
    ``mean_seconds`` compared; a matched record whose baseline mean is at
    least ``min_seconds`` and whose candidate/baseline ratio exceeds
    ``threshold`` is a regression.  Cells present on only one side are
    listed but never gate (the smoke configuration times a subset of the
    committed baseline's sizes).

    Returns a report dict: ``rows`` (one per matched record, with
    ``ratio`` and ``status`` in {"ok", "fast", "noise", "REGRESSION"}),
    ``regressions``, ``compared``, ``baseline_only`` / ``candidate_only``.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1.0 (a slowdown factor)")
    if min_seconds < 0:
        raise ValueError("min_seconds must be >= 0")
    baseline_records = {_record_key(r): r for r in baseline.get("records", [])}
    candidate_records = {_record_key(r): r for r in candidate.get("records", [])}

    rows: List[Dict[str, object]] = []
    regressions: List[Dict[str, object]] = []
    for key in sorted(baseline_records.keys() & candidate_records.keys(), key=str):
        base_mean = float(baseline_records[key]["mean_seconds"])
        cand_mean = float(candidate_records[key]["mean_seconds"])
        ratio = cand_mean / base_mean if base_mean > 0 else float("inf")
        if base_mean < min_seconds:
            status = "noise"
        elif ratio > threshold:
            status = "REGRESSION"
        elif ratio < 1.0 / threshold:
            status = "fast"
        else:
            status = "ok"
        row = {
            "protocol": key[0],
            "backend": key[1],
            "n_hosts": key[2],
            "rounds": key[3],
            "baseline_mean_seconds": base_mean,
            "candidate_mean_seconds": cand_mean,
            "ratio": ratio,
            "status": status,
        }
        rows.append(row)
        if status == "REGRESSION":
            regressions.append(row)
    return {
        "threshold": threshold,
        "min_seconds": min_seconds,
        "rows": rows,
        "regressions": regressions,
        "compared": len(rows),
        "baseline_only": sorted(baseline_records.keys() - candidate_records.keys(), key=str),
        "candidate_only": sorted(candidate_records.keys() - baseline_records.keys(), key=str),
    }


def render_comparison(report: Dict[str, object]) -> str:
    """The comparison as an aligned table plus a one-line verdict."""
    rows = [
        [
            row["protocol"],
            row["backend"],
            row["n_hosts"],
            round(row["baseline_mean_seconds"], 4),
            round(row["candidate_mean_seconds"], 4),
            f"{row['ratio']:.2f}x",
            row["status"],
        ]
        for row in report["rows"]
    ]
    table = render_table(
        ["protocol", "backend", "hosts", "baseline (s)", "candidate (s)", "ratio", "status"],
        rows,
    )
    lines = [
        f"Benchmark comparison ({report['compared']} matched records, "
        f"gate > {report['threshold']:g}x on cells >= {report['min_seconds']:g}s)",
        table,
    ]
    unmatched = len(report["baseline_only"]) + len(report["candidate_only"])
    if unmatched:
        lines.append(f"\n{unmatched} record(s) present on one side only (not gated).")
    regressions = report["regressions"]
    if regressions:
        worst = max(regressions, key=lambda row: row["ratio"])
        lines.append(
            f"\nFAIL: {len(regressions)} regression(s); worst is "
            f"{worst['protocol']}/{worst['backend']}/n={worst['n_hosts']} "
            f"at {worst['ratio']:.2f}x the baseline."
        )
    else:
        lines.append("\nOK: no per-record slowdown beyond the threshold.")
    return "\n".join(lines)


def run_compare_command(args: argparse.Namespace) -> int:
    """Body of ``benchmarks/compare_bench.py`` (exit 0 ok, 1 regression, 2 usage)."""
    payloads = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path) as handle:
                payloads.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read benchmark payload {path}: {error}", file=sys.stderr)
            return 2
    try:
        report = compare_benchmarks(
            payloads[0], payloads[1], threshold=args.threshold, min_seconds=args.min_seconds
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_comparison(report))
    if report["compared"] == 0:
        print(
            "error: the payloads share no benchmark records "
            "(nothing to gate on — were they produced by different configurations?)",
            file=sys.stderr,
        )
        return 2
    return 1 if report["regressions"] else 0


def add_compare_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the comparison flags (used by benchmarks/compare_bench.py)."""
    parser.add_argument("baseline", help="committed benchmark payload (e.g. BENCH_core.json)")
    parser.add_argument("candidate", help="freshly measured payload to check")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_REGRESSION_THRESHOLD,
        help=f"per-record slowdown factor that fails the gate "
             f"(default {DEFAULT_REGRESSION_THRESHOLD:g}x)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help=f"ignore records whose baseline mean is below this "
             f"(default {DEFAULT_MIN_SECONDS:g}s; timer noise)",
    )


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark flags (shared by the CLI and the script)."""
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-long configuration (small populations; used in CI)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help=f"population sizes to time (default {list(DEFAULT_SIZES)}, smoke {list(SMOKE_SIZES)})",
    )
    parser.add_argument("--rounds", type=int, default=10, help="gossip rounds per timed run")
    parser.add_argument("--repeats", type=int, default=3, help="timed runs per cell (best-of)")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--output", default="BENCH_core.json",
        help="where to write the JSON payload (default: ./BENCH_core.json)",
    )
    parser.add_argument("--json", action="store_true", help="print the JSON payload to stdout")


def run_bench_command(args: argparse.Namespace) -> int:
    """Execute the benchmark for parsed flags (the `repro bench` body)."""
    try:
        payload = run_core_benchmark(
            sizes=args.sizes,
            rounds=args.rounds,
            repeats=args.repeats,
            seed=args.seed,
            smoke=args.smoke,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_benchmark(payload))
    if args.output:
        try:
            write_benchmark(payload, args.output)
        except OSError as error:
            # The timings were already printed above, so the work survives
            # an unwritable path; report it in the CLI's error convention.
            print(f"error: cannot write {args.output}: {error}", file=sys.stderr)
            return 2
        print(f"\nwrote {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_core.py``)."""
    parser = argparse.ArgumentParser(
        prog="bench_core",
        description="Time the agent vs vectorised execution backends",
    )
    add_bench_arguments(parser)
    return run_bench_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
