"""Empirical cumulative distribution functions (Fig 6's plotting primitive)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["empirical_cdf", "cdf_at", "quantile"]


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """The empirical CDF of ``values`` as ``(sorted_values, probabilities)``.

    ``probabilities[i]`` is the fraction of samples ≤ ``sorted_values[i]``.
    Raises on an empty sample, because a CDF of nothing is meaningless.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    ordered = np.sort(arr)
    probabilities = np.arange(1, ordered.size + 1, dtype=float) / ordered.size
    return ordered, probabilities


def cdf_at(values: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` at the given ``points``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot evaluate a CDF of an empty sample")
    ordered = np.sort(arr)
    points_arr = np.asarray(list(points), dtype=float)
    counts = np.searchsorted(ordered, points_arr, side="right")
    return counts / arr.size


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` (0 ≤ q ≤ 1)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    return float(np.quantile(arr, q))
