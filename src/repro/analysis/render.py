"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and readable in a terminal
and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_number", "render_table", "render_series_table"]


def format_number(value, precision: int = 3) -> str:
    """Format a number compactly (integers stay integers, NaN stays readable)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        return str(value)
    if as_float != as_float:  # NaN
        return "nan"
    if as_float == int(as_float) and abs(as_float) < 1e12:
        return str(int(as_float))
    if abs(as_float) >= 10000 or (abs(as_float) < 0.001 and as_float != 0):
        return f"{as_float:.{precision}g}"
    return f"{as_float:.{precision}f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated table (markdown-compatible)."""
    header_cells = [str(header) for header in headers]
    body = [[format_number(cell) if not isinstance(cell, str) else cell for cell in row] for row in rows]
    widths = [len(cell) for cell in header_cells]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(header_cells)))
    lines.append("-|-".join("-" * width for width in widths))
    for row in body:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def render_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    *,
    every: int = 1,
) -> str:
    """Render aligned series (one column per named series) against an x column.

    ``every`` keeps only every n-th row, which keeps long per-round series
    readable while preserving the curve's shape (the final row is always
    kept).
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    names = list(series)
    length = len(list(x_values))
    for name in names:
        if len(list(series[name])) != length:
            raise ValueError(f"series {name!r} length does not match the x axis")
    headers = [x_label] + names
    rows: List[List[object]] = []
    x_list = list(x_values)
    for index in range(length):
        is_last = index == length - 1
        if index % every != 0 and not is_last:
            continue
        row: List[object] = [x_list[index]]
        for name in names:
            row.append(list(series[name])[index])
        rows.append(row)
    return render_table(headers, rows)
