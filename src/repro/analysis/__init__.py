"""Analysis utilities: CDFs, series summaries, cutoff fitting and rendering.

The experiment harness produces plain numeric series; this package turns
them into the artefacts the paper presents — per-bit counter CDFs (Fig 6),
error-versus-round series (Figs 8–10), hour-by-hour trace series (Fig 11),
the fitted linear cutoff f(k) — and renders them as plain-text tables for
the benchmark output and EXPERIMENTS.md.
"""

from repro.analysis.cdf import cdf_at, empirical_cdf, quantile
from repro.analysis.cutoff_fit import CutoffFit, fit_linear_cutoff
from repro.analysis.render import format_number, render_series_table, render_table
from repro.analysis.series import downsample, moving_average, series_summary

__all__ = [
    "CutoffFit",
    "cdf_at",
    "downsample",
    "empirical_cdf",
    "fit_linear_cutoff",
    "format_number",
    "moving_average",
    "quantile",
    "render_series_table",
    "render_table",
    "series_summary",
]
