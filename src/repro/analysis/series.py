"""Series helpers used when summarising experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["moving_average", "downsample", "series_summary"]


def moving_average(series: Sequence[float], window: int) -> List[float]:
    """Trailing moving average with a ramp-up (first entries average what exists)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    values = list(series)
    smoothed: List[float] = []
    for index in range(len(values)):
        start = max(0, index - window + 1)
        chunk = values[start : index + 1]
        smoothed.append(float(np.mean(chunk)))
    return smoothed


def downsample(series: Sequence[float], every: int) -> List[float]:
    """Keep every ``every``-th entry (always keeping the first and last)."""
    if every < 1:
        raise ValueError("every must be >= 1")
    values = list(series)
    if not values:
        return []
    kept = values[::every]
    if (len(values) - 1) % every != 0:
        kept.append(values[-1])
    return kept


def series_summary(series: Sequence[float]) -> Dict[str, float]:
    """Min / max / mean / final summary of a numeric series (NaNs ignored)."""
    arr = np.asarray(list(series), dtype=float)
    if arr.size == 0:
        return {"count": 0, "min": float("nan"), "max": float("nan"), "mean": float("nan"), "final": float("nan")}
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return {"count": int(arr.size), "min": float("nan"), "max": float("nan"), "mean": float("nan"), "final": float(arr[-1])}
    return {
        "count": int(arr.size),
        "min": float(finite.min()),
        "max": float(finite.max()),
        "mean": float(finite.mean()),
        "final": float(arr[-1]),
    }
