"""Fitting the freshness cutoff f(k) from converged counter distributions.

Section IV-A of the paper derives the cutoff experimentally: simulate a
converged Count-Sketch-Reset network, look at the distribution of counter
values for each bit index k (Figure 6), take a high-probability upper
bound per bit, and fit a line through those bounds — obtaining
f(k) ≈ 7 + k/4 under uniform gossip.  This module implements that fit so
the derivation itself is reproducible (and so alternative environments can
derive their own cutoffs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.cdf import quantile

__all__ = ["CutoffFit", "fit_linear_cutoff"]


@dataclass(frozen=True)
class CutoffFit:
    """Result of fitting a linear high-probability counter bound.

    Attributes
    ----------
    intercept, slope:
        The fitted line ``bound(k) = intercept + slope · k``.
    per_bit_bounds:
        The raw per-bit quantile bounds the line was fitted through.
    quantile:
        The probability level of those bounds (e.g. 0.99).
    """

    intercept: float
    slope: float
    per_bit_bounds: Dict[int, float]
    quantile: float

    def __call__(self, bit_index: int) -> float:
        """Evaluate the fitted cutoff at ``bit_index``."""
        return self.intercept + self.slope * bit_index

    def max_residual(self) -> float:
        """Largest absolute deviation of a per-bit bound from the fitted line."""
        if not self.per_bit_bounds:
            return 0.0
        return max(abs(bound - self(bit)) for bit, bound in self.per_bit_bounds.items())


def fit_linear_cutoff(
    counters_by_bit: Dict[int, Sequence[int]],
    *,
    probability: float = 0.99,
    min_samples: int = 10,
) -> CutoffFit:
    """Fit ``bound(k) = a + b·k`` through per-bit high-probability counter bounds.

    Parameters
    ----------
    counters_by_bit:
        bit index → observed (finite) counter values of a converged network.
        Bits with fewer than ``min_samples`` observations are excluded from
        the fit: high bit indices are sourced by so few hosts that their
        counter samples are dominated by the "nobody sources this yet" tail
        the paper also excludes.
    probability:
        The quantile used as the per-bit bound (the paper bounds "with high
        probability"; 0.99 reproduces the shape well).

    Returns
    -------
    CutoffFit
        The fitted line plus the raw per-bit bounds.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError("probability must be in (0, 1]")
    bounds: Dict[int, float] = {}
    for bit_index, samples in sorted(counters_by_bit.items()):
        samples_list = [value for value in samples if np.isfinite(value)]
        if len(samples_list) < min_samples:
            continue
        bounds[bit_index] = quantile(samples_list, probability)
    if len(bounds) < 2:
        raise ValueError("need bounds for at least two bit indices to fit a line")
    bits = np.array(sorted(bounds), dtype=float)
    values = np.array([bounds[int(bit)] for bit in bits], dtype=float)
    slope, intercept = np.polyfit(bits, values, deg=1)
    return CutoffFit(
        intercept=float(intercept),
        slope=float(slope),
        per_bit_bounds=bounds,
        quantile=probability,
    )
