"""The declarative scenario API: the single front door to the simulator.

Everything the simulator can run is describable as plain data:

* :mod:`repro.api.registry` — string-keyed registries of protocols,
  environments, failure models, workloads and network models, with
  decorators (:func:`register_protocol` et al.) for adding new
  components;
* :mod:`repro.api.spec` — :class:`ScenarioSpec`, a frozen, eagerly
  validated, JSON-round-trippable description of one run, executed with
  :func:`run_scenario`;
* :mod:`repro.api.sweep` — :class:`Sweep` grids over any spec fields and
  :class:`SweepRunner`, which executes them serially or across processes
  into a tidy :class:`SweepResult`;
* :mod:`repro.api.backends` — the execution backends behind
  :func:`run_scenario`: the per-host ``"agent"`` engine, the NumPy
  ``"vectorized"`` kernels, and the ``"auto"`` dispatch rule that picks
  between them per scenario.

The imperative path (constructing :class:`repro.Simulation` by hand) keeps
working unchanged; this layer is additive and is what the CLI, the
experiment profiles and the examples are built on.
"""

from repro.api.backends import (
    BACKENDS,
    AgentBackend,
    ExecutionBackend,
    VectorizedBackend,
    resolve_backend,
)
from repro.api.plan import (
    ExecutionPlan,
    PlanRejectionError,
    Rejection,
    capability_matrix,
    resolve_plan,
)
from repro.api.registry import (
    ENVIRONMENTS,
    FAILURES,
    NETWORKS,
    PROTOCOLS,
    WORKLOADS,
    Registry,
    UnknownKeyError,
    register_environment,
    register_failure,
    register_network,
    register_protocol,
    register_workload,
)
from repro.api.spec import NAMED_CUTOFFS, ScenarioSpec, run_scenario
from repro.api.sweep import Sweep, SweepResult, SweepRunner

__all__ = [
    "AgentBackend",
    "BACKENDS",
    "ENVIRONMENTS",
    "ExecutionBackend",
    "ExecutionPlan",
    "FAILURES",
    "PlanRejectionError",
    "Rejection",
    "capability_matrix",
    "resolve_plan",
    "NAMED_CUTOFFS",
    "NETWORKS",
    "PROTOCOLS",
    "Registry",
    "VectorizedBackend",
    "resolve_backend",
    "ScenarioSpec",
    "Sweep",
    "SweepResult",
    "SweepRunner",
    "UnknownKeyError",
    "WORKLOADS",
    "register_environment",
    "register_failure",
    "register_network",
    "register_protocol",
    "register_workload",
    "run_scenario",
]
