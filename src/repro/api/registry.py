"""String-keyed registries of protocols, environments, failures and workloads.

The declarative scenario layer (:mod:`repro.api.spec`) refers to every
component by name, so that a complete experiment can be written down as a
plain dict / JSON document.  This module provides the four registries that
resolve those names:

* :data:`PROTOCOLS` — aggregation protocols (``"push-sum-revert"``,
  ``"count-sketch-reset"``, ``"push-sum"``, …); entries are the protocol
  classes themselves.
* :data:`ENVIRONMENTS` — gossip environment *factories*.  Every factory
  takes the population size as its first argument (plus keyword
  parameters) and returns a ready environment, so the spec layer can hand
  the host count through uniformly.
* :data:`FAILURES` — failure/churn models (``"uncorrelated"``,
  ``"correlated"``, ``"explicit"``, ``"bernoulli"``).
* :data:`WORKLOADS` — value generators; factories take the population
  size plus a ``seed`` keyword and return one value per host.
* :data:`NETWORKS` — network models deciding message fate
  (``"perfect"``, ``"bernoulli-loss"``, ``"latency"``,
  ``"bandwidth-cap"``, ``"stacked"``; see :mod:`repro.network`).

New components self-register with the matching decorator::

    from repro.api import register_protocol

    @register_protocol("my-protocol")
    class MyProtocol(ExchangeProtocol):
        ...

All the classes shipped in :mod:`repro.core`, :mod:`repro.baselines`,
:mod:`repro.environments`, :mod:`repro.failures` and
:mod:`repro.workloads` are registered at import time at the bottom of this
module.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "Registry",
    "UnknownKeyError",
    "PROTOCOLS",
    "ENVIRONMENTS",
    "FAILURES",
    "WORKLOADS",
    "NETWORKS",
    "register_protocol",
    "register_environment",
    "register_failure",
    "register_workload",
    "register_network",
]


class UnknownKeyError(KeyError):
    """Lookup of a name that was never registered (includes suggestions)."""

    def __init__(self, kind: str, key: str, known: List[str]):
        self.kind = kind
        self.key = key
        self.known = known
        close = difflib.get_close_matches(key, known, n=3)
        hint = f"; did you mean {', '.join(repr(match) for match in close)}?" if close else ""
        super().__init__(
            f"unknown {kind} {key!r}; registered {kind}s: {', '.join(sorted(known))}{hint}"
        )

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class Registry:
    """An ordered, string-keyed registry of factories (classes or callables)."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    # ------------------------------------------------------------ registration
    def register(self, key: str, factory: Optional[Callable] = None, *, aliases: tuple = ()):
        """Register ``factory`` under ``key`` (usable as a decorator).

        ``aliases`` registers the same factory under additional names.
        Registering an existing key raises ``ValueError`` — shadowing a
        component silently would make specs ambiguous.
        """

        def _register(target: Callable) -> Callable:
            for name in (key, *aliases):
                if not isinstance(name, str) or not name:
                    raise ValueError(f"{self.kind} keys must be non-empty strings, got {name!r}")
                if name in self._entries:
                    raise ValueError(f"{self.kind} {name!r} is already registered")
                self._entries[name] = target
            return target

        if factory is not None:
            return _register(factory)
        return _register

    # ------------------------------------------------------------------ lookup
    def get(self, key: str) -> Callable:
        """The factory registered under ``key``; raises :class:`UnknownKeyError`."""
        try:
            return self._entries[key]
        except KeyError:
            raise UnknownKeyError(self.kind, key, list(self._entries)) from None

    def create(self, key: str, *args, **kwargs):
        """Instantiate the factory registered under ``key``."""
        return self.get(key)(*args, **kwargs)

    def validate_params(self, key: str, *args, **kwargs) -> None:
        """Check eagerly that ``kwargs`` bind to the factory's signature.

        This is what lets :class:`~repro.api.spec.ScenarioSpec` reject a
        typo like ``reversions=0.1`` at construction time instead of at the
        first ``build()`` inside a process pool.
        """
        factory = self.get(key)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # builtins without introspectable signatures
            return
        try:
            signature.bind(*args, **kwargs)
        except TypeError as error:
            raise ValueError(f"invalid parameters for {self.kind} {key!r}: {error}") from None

    def keys(self) -> List[str]:
        """Registered names in registration order."""
        return list(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


PROTOCOLS = Registry("protocol")
ENVIRONMENTS = Registry("environment")
FAILURES = Registry("failure")
WORKLOADS = Registry("workload")
NETWORKS = Registry("network")

register_protocol = PROTOCOLS.register
register_environment = ENVIRONMENTS.register
register_failure = FAILURES.register
register_workload = WORKLOADS.register
register_network = NETWORKS.register


# --------------------------------------------------------------------------
# Built-in registrations.  Protocols and failure models register as their
# classes; environments and workloads register as factories with the uniform
# (n_hosts, **params) calling convention the spec layer relies on.
# --------------------------------------------------------------------------

def _register_builtins() -> None:
    from repro.baselines import (
        EpochPushSum,
        ExtremaGossip,
        ExtremaReset,
        PushPull,
        PushSum,
        SketchCount,
    )
    from repro.core import (
        CountSketchReset,
        FullTransferPushSumRevert,
        InvertAverage,
        PushSumRevert,
    )
    from repro.environments import (
        NeighborhoodEnvironment,
        SpatialGridEnvironment,
        TraceEnvironment,
        UniformEnvironment,
    )
    from repro.failures import (
        BernoulliChurn,
        CorrelatedFailure,
        ExplicitFailure,
        UncorrelatedFailure,
    )
    from repro.mobility import generate_haggle_like_trace, haggle_dataset
    from repro.network import (
        BandwidthCapNetwork,
        BernoulliLossNetwork,
        LatencyNetwork,
        PerfectNetwork,
        StackedNetwork,
    )
    from repro.topology import erdos_renyi_graph, grid_graph, random_geometric_graph, ring_lattice
    from repro.workloads import (
        clustered_values,
        constant_values,
        normal_values,
        uniform_values,
        zipf_values,
    )

    # ------------------------------------------------------------- protocols
    for protocol_class in (
        PushSumRevert,
        FullTransferPushSumRevert,
        CountSketchReset,
        InvertAverage,
        PushSum,
        PushPull,
        EpochPushSum,
        SketchCount,
        ExtremaGossip,
        ExtremaReset,
    ):
        PROTOCOLS.register(protocol_class.name, protocol_class)

    # ---------------------------------------------------------- environments
    @register_environment("uniform")
    def _uniform(n_hosts: int):
        return UniformEnvironment(n_hosts)

    @register_environment("ring")
    def _ring(n_hosts: int, *, k: int = 2):
        return NeighborhoodEnvironment(ring_lattice(n_hosts, k=k))

    @register_environment("grid")
    def _grid(n_hosts: int, *, width: Optional[int] = None, height: Optional[int] = None,
              diagonal: bool = False):
        width, height = _grid_dimensions(n_hosts, width, height)
        return NeighborhoodEnvironment(grid_graph(width, height, diagonal=diagonal))

    @register_environment("random-geometric")
    def _random_geometric(n_hosts: int, *, radius: float = 0.15, graph_seed: int = 0):
        adjacency, _positions = random_geometric_graph(n_hosts, radius, seed=graph_seed)
        return NeighborhoodEnvironment(adjacency)

    @register_environment("erdos-renyi")
    def _erdos_renyi(n_hosts: int, *, p: float = 0.1, graph_seed: int = 0):
        # Seed-deterministic G(n, p): the same (n, p, graph_seed) triple
        # yields the same graph on every backend and every machine.
        return NeighborhoodEnvironment(erdos_renyi_graph(n_hosts, p, seed=graph_seed))

    @register_environment("spatial-grid")
    def _spatial_grid(n_hosts: int, *, width: Optional[int] = None, height: Optional[int] = None,
                      max_distance: Optional[int] = None, walk: bool = True):
        width, height = _grid_dimensions(n_hosts, width, height)
        return SpatialGridEnvironment(width, height, max_distance=max_distance, walk=walk)

    @register_environment("trace")
    def _trace(n_hosts: int, *, dataset: Optional[int] = None, devices: Optional[int] = None,
               hours: float = 48.0, trace_seed: Optional[int] = None, community_size: int = 4,
               round_seconds: float = 30.0, group_window_seconds: float = 600.0,
               broadcast: bool = False):
        if dataset is not None:
            trace = haggle_dataset(dataset, seed=trace_seed)
        else:
            trace = generate_haggle_like_trace(
                devices if devices is not None else n_hosts,
                duration_hours=hours,
                seed=0 if trace_seed is None else trace_seed,
                community_size=community_size,
            )
        if trace.n_devices != n_hosts:
            raise ValueError(
                f"trace environment has {trace.n_devices} devices but the scenario "
                f"declares n_hosts={n_hosts}; set n_hosts to the trace's device count"
            )
        return TraceEnvironment(
            trace,
            round_seconds=round_seconds,
            group_window_seconds=group_window_seconds,
            broadcast=broadcast,
        )

    # -------------------------------------------------------------- failures
    FAILURES.register("uncorrelated", UncorrelatedFailure)
    FAILURES.register("correlated", CorrelatedFailure)
    FAILURES.register("explicit", ExplicitFailure)
    FAILURES.register("bernoulli", BernoulliChurn)

    # -------------------------------------------------------------- networks
    NETWORKS.register("perfect", PerfectNetwork)
    NETWORKS.register("bernoulli-loss", BernoulliLossNetwork)
    NETWORKS.register("latency", LatencyNetwork)
    NETWORKS.register("bandwidth-cap", BandwidthCapNetwork)

    @register_network("stacked")
    def _stacked(*, layers):
        """Compose registered models: ``layers`` is a list of dicts, each
        naming a registered ``model`` plus its parameters."""
        if not isinstance(layers, (list, tuple)) or not layers:
            raise ValueError(
                "stacked networks need a non-empty 'layers' list of "
                '{"model": <registered name>, ...} dicts'
            )
        built = []
        for entry in layers:
            if not isinstance(entry, dict) or not isinstance(entry.get("model"), str):
                raise ValueError(
                    f"each stacked layer must be a dict naming a registered 'model', "
                    f"got {entry!r}"
                )
            if entry["model"] == "stacked":
                raise ValueError("stacked networks cannot nest further stacked layers")
            params = {key: value for key, value in entry.items() if key != "model"}
            built.append(NETWORKS.create(entry["model"], **params))
        return StackedNetwork(built)

    # ------------------------------------------------------------- workloads
    @register_workload("uniform")
    def _uniform_workload(n_hosts: int, *, seed: Optional[int] = None,
                          low: float = 0.0, high: float = 100.0):
        return uniform_values(n_hosts, low, high, seed=seed)

    @register_workload("constant")
    def _constant_workload(n_hosts: int, *, seed: Optional[int] = None, value: float = 1.0):
        return constant_values(n_hosts, value)

    @register_workload("normal")
    def _normal_workload(n_hosts: int, *, seed: Optional[int] = None,
                         mean: float = 50.0, std: float = 15.0):
        return normal_values(n_hosts, mean, std, seed=seed)

    @register_workload("zipf")
    def _zipf_workload(n_hosts: int, *, seed: Optional[int] = None, exponent: float = 1.5,
                       scale: float = 1.0, clamp: Optional[float] = None):
        values = zipf_values(n_hosts, exponent, scale, seed=seed)
        if clamp is not None:
            values = [min(float(clamp), value) for value in values]
        return values

    @register_workload("clustered")
    def _clustered_workload(n_hosts: int, *, seed: Optional[int] = None,
                            cluster_means: tuple = (10.0, 50.0, 90.0), std: float = 5.0):
        return clustered_values(n_hosts, tuple(cluster_means), std, seed=seed)


def _grid_dimensions(n_hosts: int, width: Optional[int], height: Optional[int]):
    """Resolve (width, height) for grid environments, defaulting to near-square."""
    if width is not None and height is not None:
        if width * height != n_hosts:
            raise ValueError(
                f"grid of {width}x{height} holds {width * height} hosts, "
                f"but the scenario declares n_hosts={n_hosts}"
            )
        return int(width), int(height)
    if width is not None or height is not None:
        known = width if width is not None else height
        other, remainder = divmod(n_hosts, int(known))
        if remainder:
            raise ValueError(f"n_hosts={n_hosts} is not divisible by grid dimension {known}")
        return (int(known), other) if width is not None else (other, int(known))
    side = int(round(n_hosts ** 0.5))
    for candidate in range(side, 0, -1):
        if n_hosts % candidate == 0:
            return candidate, n_hosts // candidate
    return 1, n_hosts  # pragma: no cover - every n has divisor 1


_register_builtins()
