"""Scenario grids: declarative sweeps and a serial/parallel runner.

The paper's evaluation is a grid — {protocol × environment × failure ×
population × seed} — and :class:`Sweep` writes that grid down directly:

>>> from repro.api import ScenarioSpec, Sweep, SweepRunner
>>> base = ScenarioSpec(protocol="push-sum-revert", n_hosts=120, rounds=10)
>>> sweep = Sweep.over(base, **{
...     "protocol_params.reversion": [0.0, 0.1],
...     "seed": range(3),
... })
>>> len(sweep.specs())
6
>>> result = SweepRunner(parallel=False).run(sweep)
>>> len(result.rows)
6

Axis keys are :class:`~repro.api.spec.ScenarioSpec` field names
(``protocol``, ``n_hosts``, ``seed``, …) or dotted paths into the
parameter dicts (``protocol_params.reversion``,
``environment_params.dataset``).  Expansion is a deterministic cross
product in axis-declaration order, so run *k* of a sweep is the same
scenario on every machine.

:class:`SweepRunner` executes the expanded grid serially or across
processes (``concurrent.futures.ProcessPoolExecutor``).  Specs are shipped
to workers as plain dicts (see :meth:`ScenarioSpec.to_dict`), rows are
reassembled into grid order by cell index regardless of completion order,
and every scenario carries its own seed — so parallel and serial execution
produce identical :class:`SweepResult` tables that diff cleanly in CI.

With a :class:`repro.store.ResultStore` the runner is *incremental*: the
grid is partitioned into cached hits and pending cells, only the pending
cells execute, and every completed cell is written back immediately by the
parent process (a single writer, even when a pool computes the results).
That write-as-completed discipline is what makes sweeps resumable — a
sweep killed after N cells re-runs as N hits plus the remainder.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.render import render_table
from repro.api.spec import ScenarioSpec, run_scenario
from repro.obs.probe import NULL_PROBE, Probe
from repro.simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ResultStore

__all__ = ["Sweep", "SweepRunner", "SweepResult"]

#: Summary statistics reported for every run in a sweep table.
METRIC_COLUMNS = ("final_error", "plateau_error", "final_truth", "mean_estimate", "n_alive")


_PARAM_CONTAINERS = (
    "protocol_params",
    "environment_params",
    "workload_params",
    "network_params",
)
_SPEC_FIELDS = frozenset(spec_field.name for spec_field in dataclasses.fields(ScenarioSpec))


def _validate_axis_name(axis: str) -> None:
    """Reject unknown axis names eagerly (at :meth:`Sweep.over`, not expansion)."""
    if "." in axis:
        container, key = axis.split(".", 1)
        if "." in key:
            raise ValueError(f"axis {axis!r} nests too deep; one dot maximum")
        if container not in _PARAM_CONTAINERS:
            raise ValueError(
                f"axis {axis!r} must dot into one of {', '.join(_PARAM_CONTAINERS)}"
            )
    elif axis not in _SPEC_FIELDS:
        raise ValueError(
            f"unknown axis {axis!r}; expected a ScenarioSpec field "
            f"({', '.join(sorted(_SPEC_FIELDS))}) or a dotted parameter path "
            "like 'protocol_params.reversion'"
        )


def _set_axis(spec_kwargs: Dict[str, Any], axis: str, value: Any) -> None:
    """Apply one axis assignment to a spec's keyword dict (dotted paths ok)."""
    if "." in axis:
        container, key = axis.split(".", 1)
        params = dict(spec_kwargs.get(container) or {})
        params[key] = value
        spec_kwargs[container] = params
    else:
        spec_kwargs[axis] = value


@dataclass(frozen=True)
class Sweep:
    """A base scenario crossed with one or more named axes."""

    base: ScenarioSpec
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    @classmethod
    def over(cls, base: Optional[ScenarioSpec] = None, **axes: Iterable) -> "Sweep":
        """Build a sweep over the cross product of ``axes``.

        ``base`` supplies every field the axes don't touch; it defaults to
        a plain Push-Sum-Revert scenario.  Axis values may be any iterable
        (lists, tuples, ``range``); they are materialised eagerly so the
        sweep is reusable.
        """
        if base is None:
            base = ScenarioSpec(protocol="push-sum-revert")
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        materialised = tuple((name, tuple(values)) for name, values in axes.items())
        for name, values in materialised:
            _validate_axis_name(name)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        return cls(base=base, axes=materialised)

    # ---------------------------------------------------------------- expansion
    def axis_names(self) -> List[str]:
        """The axis names in declaration order."""
        return [name for name, _values in self.axes]

    def points(self) -> List[Tuple[Dict[str, Any], ScenarioSpec]]:
        """The expanded grid as (axis assignment, spec) pairs, in grid order."""
        names = self.axis_names()
        value_lists = [values for _name, values in self.axes]
        expanded: List[Tuple[Dict[str, Any], ScenarioSpec]] = []
        base_kwargs = self.base.to_dict()
        for combination in itertools.product(*value_lists):
            assignment = dict(zip(names, combination))
            spec_kwargs = {key: value for key, value in base_kwargs.items()}
            for axis, value in assignment.items():
                _set_axis(spec_kwargs, axis, value)
            spec_kwargs["events"] = tuple(spec_kwargs.get("events") or ())
            label = ", ".join(f"{axis}={value}" for axis, value in assignment.items())
            spec_kwargs["name"] = label if not self.base.name else f"{self.base.name}: {label}"
            expanded.append((assignment, ScenarioSpec(**spec_kwargs)))
        return expanded

    def specs(self) -> List[ScenarioSpec]:
        """Just the expanded specs, in grid order."""
        return [spec for _assignment, spec in self.points()]

    def __len__(self) -> int:
        size = 1
        for _name, values in self.axes:
            size *= len(values)
        return size

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly representation (``{"base": ..., "axes": ...}``)."""
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Sweep":
        """Rebuild a sweep from :meth:`to_dict` output (or a hand-written dict)."""
        if not isinstance(payload, Mapping) or "base" not in payload or "axes" not in payload:
            raise ValueError("sweep dicts need 'base' (a scenario) and 'axes' (name -> values)")
        base = ScenarioSpec.from_dict(payload["base"])
        axes = payload["axes"]
        if not isinstance(axes, Mapping) or not axes:
            raise ValueError("'axes' must be a non-empty mapping of axis name -> values")
        return cls.over(base, **{name: list(values) for name, values in axes.items()})

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        return cls.from_dict(json.loads(text))


def _execute_spec_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Process-pool worker: rebuild the spec from its dict and run it."""
    return run_scenario(ScenarioSpec.from_dict(payload))


def _execute_payload_batch(payloads: Sequence[Dict[str, Any]]) -> List[SimulationResult]:
    """Process-pool worker: run a chunk of specs in one task.

    Workers never touch the result store — they only compute.  Results
    travel back to the parent, which is the sweep's single writer.
    """
    return [_execute_spec_payload(payload) for payload in payloads]


def _summarise(assignment: Dict[str, Any], spec: ScenarioSpec, result: SimulationResult) -> Dict[str, Any]:
    """One tidy row: the axis assignment plus the run's summary metrics."""
    final = result.final_record()
    row: Dict[str, Any] = dict(assignment)
    row.update(
        {
            "scenario": spec.label(),
            "final_error": final.stddev_error,
            "plateau_error": result.plateau_error(),
            "final_truth": final.truth,
            "mean_estimate": final.mean_estimate,
            "n_alive": final.n_alive,
        }
    )
    return row


@dataclass
class SweepResult:
    """The outcome of one executed sweep: tidy rows plus the full results.

    ``rows`` is a list of flat dicts (axis values + summary metrics) ready
    for :mod:`repro.analysis`; ``results`` holds the complete
    :class:`~repro.simulator.SimulationResult` trajectories in the same
    (grid) order.  ``cached`` records, per cell, whether the result came
    out of a :class:`repro.store.ResultStore` instead of being executed —
    deliberately *not* part of ``rows`` or :meth:`render`, so a warm re-run
    of a sweep is bit-identical to the cold run that populated the store.
    """

    axis_names: List[str]
    specs: List[ScenarioSpec] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    parallel: bool = False
    cached: List[bool] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def cache_hits(self) -> int:
        """How many cells were served from the result store."""
        return sum(1 for hit in self.cached if hit)

    def executed(self) -> int:
        """How many cells actually ran a simulation."""
        return len(self.cached) - self.cache_hits() if self.cached else len(self.rows)

    def to_records(self) -> List[Dict[str, Any]]:
        """The tidy rows (copies), one dict per executed scenario."""
        return [dict(row) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """One column across every row (axis value or metric)."""
        return [row[name] for row in self.rows]

    def best(self, metric: str = "final_error") -> Dict[str, Any]:
        """The row minimising ``metric``."""
        if not self.rows:
            raise ValueError("sweep produced no rows")
        return dict(min(self.rows, key=lambda row: row[metric]))

    def render(self, *, metrics: Sequence[str] = METRIC_COLUMNS) -> str:
        """The sweep as an aligned text table, one row per scenario."""
        header = [*self.axis_names, *metrics]
        body = [[row.get(column, "") for column in header] for row in self.rows]
        mode = "parallel" if self.parallel else "serial"
        title = f"Sweep over {{{' x '.join(self.axis_names) or 'nothing'}}} — {len(self.rows)} runs ({mode})\n"
        return title + render_table(header, body)


@dataclass
class SweepRunner:
    """Execute a :class:`Sweep` (or an explicit spec list) into a :class:`SweepResult`.

    Parameters
    ----------
    parallel:
        Run scenarios across processes with
        ``concurrent.futures.ProcessPoolExecutor``.  Every scenario seeds
        all of its own randomness from the spec, so parallel and serial
        execution return identical results, in identical (grid) order.
    max_workers:
        Process count (default: ``os.cpu_count()``, capped at the grid size).
    chunksize:
        Scenarios shipped to a worker per task; raise it for large grids of
        short runs to amortise the pickling round-trips.
    store:
        An optional :class:`repro.store.ResultStore`.  The grid is then
        partitioned into cached hits and pending cells; only pending cells
        execute, and each completed cell is written back immediately by
        this (parent) process — the pool workers never open the store —
        so an interrupted sweep resumes from the cells it finished.
    refresh:
        Re-execute every cell even on a hit (results are still written
        back); use to overwrite suspect store entries.
    progress:
        Print one line per completed cell to stderr — cell index,
        ``cached``/``executed``, and wall time — so long sweeps show a
        live heartbeat.  Parallel cells report their batch's mean wall
        time (individual timings stay in the workers).
    probe:
        An optional :class:`repro.obs.Probe`.  On the serial path it is
        threaded into every :func:`run_scenario` call (full phase spans);
        on the parallel path workers run unprobed and the parent records
        per-cell completion events and timings only.
    """

    parallel: bool = False
    max_workers: Optional[int] = None
    chunksize: int = 1
    store: Optional["ResultStore"] = None
    refresh: bool = False
    progress: bool = False
    probe: Optional[Probe] = None

    def __post_init__(self):
        if self.chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.probe is None:
            self.probe = NULL_PROBE

    def _cell_done(
        self, index: int, total: int, spec: ScenarioSpec, status: str, seconds: float
    ) -> None:
        """One completed cell: optional stderr heartbeat plus probe record."""
        if self.progress:
            print(
                f"[sweep {index + 1}/{total}] {status} {spec.label()} in {seconds:.3f}s",
                file=sys.stderr,
                flush=True,
            )
        if self.probe.enabled:
            self.probe.event("cell", index=index, status=status, seconds=seconds)
            self.probe.count(f"sweep.{status}")

    def run(self, sweep: Union[Sweep, Sequence[ScenarioSpec]]) -> SweepResult:
        """Execute every scenario in ``sweep`` and return the collected result."""
        if isinstance(sweep, Sweep):
            points = sweep.points()
            axis_names = sweep.axis_names()
        else:
            specs = list(sweep)
            for spec in specs:
                if not isinstance(spec, ScenarioSpec):
                    raise TypeError(f"expected ScenarioSpec items, got {type(spec).__name__}")
            points = [({"scenario": spec.label()}, spec) for spec in specs]
            axis_names = []
        specs = [spec for _assignment, spec in points]

        # ---------------------------------------------- store partitioning
        results: List[Optional[SimulationResult]] = [None] * len(specs)
        cached = [False] * len(specs)
        total = len(specs)
        if self.store is not None and not self.refresh:
            for index, spec in enumerate(specs):
                started = time.perf_counter()
                hit = self.store.get(spec)
                if hit is not None:
                    results[index] = hit
                    cached[index] = True
                    self._cell_done(index, total, spec, "cached", time.perf_counter() - started)
        pending = [index for index, result in enumerate(results) if result is None]

        # -------------------------------------------------------- execution
        # The reported mode follows the runner's configuration, not the
        # pending count, so a fully-cached re-run renders the same table
        # header as the cold run that populated the store.
        ran_parallel = self.parallel and len(specs) > 1
        if self.parallel and len(pending) > 1:
            workers = min(self.max_workers or (os.cpu_count() or 1), len(pending))
            batches = [
                pending[start : start + self.chunksize]
                for start in range(0, len(pending), self.chunksize)
            ]
            with ProcessPoolExecutor(max_workers=workers) as executor:
                submitted = time.perf_counter()
                future_to_batch = {
                    executor.submit(
                        _execute_payload_batch, [specs[index].to_dict() for index in batch]
                    ): batch
                    for batch in batches
                }
                # Harvest as batches complete (not in submission order) so
                # every finished cell reaches the store before the next
                # wait — the property that makes a killed sweep resumable.
                outstanding = set(future_to_batch)
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        batch = future_to_batch[future]
                        batch_seconds = (time.perf_counter() - submitted) / max(len(batch), 1)
                        for index, result in zip(batch, future.result()):
                            if self.store is not None:
                                self.store.put(specs[index], result)
                            results[index] = result
                            self._cell_done(index, total, specs[index], "executed", batch_seconds)
        else:
            for index in pending:
                started = time.perf_counter()
                result = run_scenario(specs[index], probe=self.probe)
                if self.store is not None:
                    self.store.put(specs[index], result)
                results[index] = result
                self._cell_done(index, total, specs[index], "executed", time.perf_counter() - started)

        # Rows are assembled from the index-addressed slots, so they are in
        # grid order by construction — regardless of worker count, batch
        # completion order, or which cells came from the store.
        rows = [
            _summarise(assignment, spec, result)
            for (assignment, spec), result in zip(points, results)
        ]
        return SweepResult(
            axis_names=axis_names or ["scenario"],
            specs=specs,
            results=results,
            rows=rows,
            parallel=ran_parallel,
            cached=cached,
        )
