"""Execution plans: the structured engine×backend capability layer.

Before this module, backend eligibility was an ad-hoc
``supports() -> Optional[str]`` string check inside
:mod:`repro.api.backends` — enough for a one-axis "vectorized or not"
decision, but unable to express the two-axis choice the event engine
introduced (engine ``rounds``/``events`` × backend ``agent``/
``vectorized``).  This module is the replacement:

* :func:`vectorized_rejections` — every reason the vectorised backend
  cannot realise a spec, as structured :class:`Rejection` records
  ``(axis, feature, reason)`` instead of a single string;
* :func:`resolve_plan` — the :class:`ExecutionPlan` a spec will run on:
  the concrete (engine, backend) pair with the full rejection list
  attached, so ``auto`` dispatch, eager validation, the sweep runner and
  the CLI all consult one function;
* :func:`capability_matrix` — the full engine×backend support matrix,
  derived by probing :func:`resolve_plan` per registered protocol (no
  hand-maintained table; rendered by ``repro-aggregate list
  --capabilities``).

The old ``VectorizedBackend.supports()`` survives as a thin deprecated
shim over :func:`vectorized_rejections` (it returns the first rejection's
reason), so external callers keep working; everything in-tree dispatches
through plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.spec import ScenarioSpec

__all__ = [
    "AUTO",
    "ExecutionPlan",
    "PlanRejectionError",
    "Rejection",
    "capability_matrix",
    "resolve_plan",
    "vectorized_rejections",
]

#: The pseudo-backend resolved per scenario at run time.
AUTO = "auto"

#: Failure models the vectorised event loop can apply.
_VECTOR_FAILURE_MODELS = ("uncorrelated", "correlated", "explicit")

#: Environments with a vectorised peer sampler: uniform gossip, the
#: static graph topologies realised by :mod:`repro.simulator.sparse`, and
#: contact traces compiled into a per-round time-varying CSR
#: (neighbourhood environments built from raw adjacency maps stay
#: agent-only).
_VECTOR_ENVIRONMENTS = (
    "uniform",
    "ring",
    "grid",
    "random-geometric",
    "erdos-renyi",
    "spatial-grid",
    "trace",
)

#: Protocols whose kernels take a Bernoulli ``loss`` probability, so the
#: common lossy case still resolves to the fast path under ``"auto"``.
_LOSSY_KERNEL_PROTOCOLS = frozenset({"push-sum-revert", "push-sum-revert-full-transfer"})

#: Network models the vectorised *event calendar* can realise (the
#: bucketed runner of :mod:`repro.events.vectorized`): instant networks
#: run whole-bucket or subset kernel steps, ``latency`` defers matured
#: parcels/exchanges into later buckets.
_EVENTS_VECTOR_NETWORKS = ("perfect", "bernoulli-loss", "latency")

#: The one protocol with a bucketed event-calendar realisation today:
#: Push-Sum-Revert, whose subset steps and scatter-add deliveries map
#: directly onto the mass arrays (DESIGN.md §14).
_EVENTS_VECTOR_PROTOCOLS = ("push-sum-revert",)

#: Per-protocol kernel capabilities: accepted constructor parameters, the
#: engine modes the kernel can realise, whether the kernel carries
#: per-host values (needed by correlated failures and value changes), and
#: whether it accepts a :mod:`~repro.simulator.sparse` topology (only
#: Full-Transfer's multi-parcel fan-out is uniform-only).
_KERNEL_TABLE: Dict[str, Dict[str, object]] = {
    "push-sum-revert": {
        "params": frozenset({"reversion", "adaptive"}),
        "modes": ("exchange", "push"),
        "has_values": True,
        "topology": True,
    },
    "push-sum-revert-full-transfer": {
        "params": frozenset({"reversion", "parcels", "history"}),
        "modes": ("push",),
        "has_values": True,
        "topology": False,
    },
    "count-sketch-reset": {
        "params": frozenset({"bins", "bits", "cutoff", "identifiers_per_host"}),
        "modes": ("exchange", "push"),
        "has_values": False,
        "topology": True,
    },
    "sketch-count": {
        "params": frozenset({"bins", "bits", "identifiers_per_host"}),
        "modes": ("exchange", "push"),
        "has_values": False,
        "topology": True,
    },
    "extrema-gossip": {
        "params": frozenset({"maximum"}),
        "modes": ("exchange",),
        "has_values": True,
        "topology": True,
    },
    "extrema-reset": {
        "params": frozenset({"maximum", "cutoff"}),
        "modes": ("exchange",),
        "has_values": True,
        "topology": True,
    },
}


@dataclass(frozen=True)
class Rejection:
    """One reason a (spec, backend) pairing cannot run.

    ``axis`` names the capability dimension (``"engine"``,
    ``"environment"``, ``"protocol"``, ``"mode"``, ``"network"``,
    ``"accounting"``, ``"events"``), ``feature`` the offending value on
    that axis, and ``reason`` the human sentence the old ``supports()``
    protocol used to return.
    """

    axis: str
    feature: str
    reason: str


@dataclass(frozen=True)
class ExecutionPlan:
    """The concrete (engine, backend) pair a spec resolves to.

    ``rejections`` lists why the vectorised backend cannot (or, for an
    explicit ``backend="vectorized"`` request, could not) realise the
    spec; an empty tuple means the fast path is available.  The plan for
    an ``auto`` spec is always runnable; an explicit-vectorized plan with
    rejections is the *requested* plan, and :attr:`runnable` is False.
    """

    engine: str
    backend: str
    rejections: Tuple[Rejection, ...] = field(default_factory=tuple)

    @property
    def reasons(self) -> List[str]:
        """The rejection sentences, in check order."""
        return [rejection.reason for rejection in self.rejections]

    @property
    def runnable(self) -> bool:
        """Whether this exact (engine, backend) pair can execute."""
        return self.backend != "vectorized" or not self.rejections

    def nearest_runnable(self) -> "ExecutionPlan":
        """The closest plan that *can* execute (the agent fallback)."""
        if self.runnable:
            return self
        return ExecutionPlan(engine=self.engine, backend="agent", rejections=self.rejections)


class PlanRejectionError(ValueError):
    """An explicit backend request the capability layer cannot honour.

    Subclasses :class:`ValueError` (the error type the old string
    protocol raised) so existing ``except ValueError`` callers keep
    working, while carrying the structured :attr:`rejections` and the
    :attr:`nearest` runnable plan for rendering.
    """

    def __init__(self, message: str, *, rejections: Tuple[Rejection, ...] = (),
                 nearest: "ExecutionPlan" = None):
        super().__init__(message)
        self.rejections = tuple(rejections)
        self.nearest = nearest


def _events_rejections(spec: "ScenarioSpec") -> List[Rejection]:
    """Rejections for the vectorised *event calendar* (engine='events')."""
    rejections: List[Rejection] = []
    if spec.protocol not in _EVENTS_VECTOR_PROTOCOLS:
        supported = ", ".join(repr(name) for name in _EVENTS_VECTOR_PROTOCOLS)
        rejections.append(Rejection(
            "protocol", spec.protocol,
            f"the event calendar is only vectorised for {supported}; "
            f"protocol {spec.protocol!r} under engine='events' requires the agent engine",
        ))
    if spec.environment != "uniform":
        rejections.append(Rejection(
            "environment", spec.environment,
            "the vectorised event calendar runs uniform gossip only; "
            f"environment {spec.environment!r} under engine='events' requires the agent engine",
        ))
    if spec.group_relative and spec.environment == "uniform":
        rejections.append(Rejection(
            "accounting", "group_relative",
            "group-relative error accounting needs an environment that defines "
            "groups (ring, grid, random-geometric, erdos-renyi or spatial-grid)",
        ))
    if spec.network not in _EVENTS_VECTOR_NETWORKS:
        known = ", ".join(repr(name) for name in _EVENTS_VECTOR_NETWORKS)
        rejections.append(Rejection(
            "network", spec.network,
            f"network model {spec.network!r} is not vectorised under engine='events' "
            f"(the event calendar supports {known})",
        ))
    if spec.protocol in _EVENTS_VECTOR_PROTOCOLS:
        entry = _KERNEL_TABLE[spec.protocol]
        if bool(spec.protocol_params.get("adaptive", False)):
            rejections.append(Rejection(
                "protocol", "adaptive",
                "indegree-adaptive reversion is not vectorised under engine='events' "
                "(the bucketed calendar has no per-tick indegree); it requires the "
                "agent engine",
            ))
        unknown = set(spec.protocol_params) - entry["params"]
        if unknown:
            rejections.append(Rejection(
                "protocol", ",".join(sorted(unknown)),
                f"protocol parameter(s) {sorted(unknown)} are not supported by the "
                f"vectorised {spec.protocol!r} kernel",
            ))
        rejections.extend(_event_schedule_rejections(spec, entry))
    return rejections


def _event_schedule_rejections(spec: "ScenarioSpec", entry) -> List[Rejection]:
    """Rejections from the spec's scheduled membership events (both engines)."""
    rejections: List[Rejection] = []
    for event in spec.events:
        kind = event["event"]
        if kind == "failure":
            if event["model"] not in _VECTOR_FAILURE_MODELS:
                models = ", ".join(_VECTOR_FAILURE_MODELS)
                rejections.append(Rejection(
                    "events", event["model"],
                    f"failure model {event['model']!r} is not vectorised "
                    f"(supported models: {models})",
                ))
        elif kind == "value-change":
            if entry is not None and not entry["has_values"]:
                rejections.append(Rejection(
                    "events", "value-change",
                    f"value-change events need a value-carrying kernel; "
                    f"{spec.protocol!r} aggregates counts",
                ))
        elif kind == "join":
            if spec.environment != "uniform":
                rejections.append(Rejection(
                    "events", "join",
                    "'join' events are only vectorised under uniform gossip "
                    "(a static or trace topology has no slots for new hosts); "
                    f"environment {spec.environment!r} requires the agent engine",
                ))
        elif kind == "churn":
            if event["model"] not in _VECTOR_FAILURE_MODELS:
                models = ", ".join(_VECTOR_FAILURE_MODELS)
                rejections.append(Rejection(
                    "events", event["model"],
                    f"churn failure model {event['model']!r} is not vectorised "
                    f"(supported models: {models})",
                ))
            if int(event.get("arrivals_per_round", 0)) > 0 and spec.environment != "uniform":
                rejections.append(Rejection(
                    "events", "churn",
                    "churn with arrivals is only vectorised under uniform gossip "
                    "(a static or trace topology has no slots for new hosts); "
                    f"environment {spec.environment!r} requires the agent engine",
                ))
        else:
            rejections.append(Rejection(
                "events", kind, f"{kind!r} events require the agent engine",
            ))
    return rejections


def vectorized_rejections(spec: "ScenarioSpec") -> List[Rejection]:
    """Every reason the vectorised backend cannot realise ``spec``.

    An empty list means the spec has a fast path (on either engine).  The
    checks preserve the order — and the reason sentences — of the legacy
    ``VectorizedBackend.supports()`` string protocol for the round
    engine, so the first rejection's ``reason`` is exactly what the old
    API returned; ``engine="events"`` gets its own capability set (the
    bucketed calendar of :mod:`repro.events.vectorized`).
    """
    if spec.engine == "events":
        return _events_rejections(spec)
    rejections: List[Rejection] = []
    entry = _KERNEL_TABLE.get(spec.protocol)
    if spec.environment not in _VECTOR_ENVIRONMENTS:
        known = ", ".join(repr(name) for name in _VECTOR_ENVIRONMENTS)
        rejections.append(Rejection(
            "environment", spec.environment,
            f"environment {spec.environment!r} is not vectorised "
            f"(vectorised environments: {known})",
        ))
    if spec.environment != "uniform" and entry is not None and not entry["topology"]:
        rejections.append(Rejection(
            "environment", spec.environment,
            f"protocol {spec.protocol!r} is only vectorised under uniform gossip "
            f"(its kernel takes no topology); environment {spec.environment!r} "
            "requires the agent engine",
        ))
    if spec.environment == "trace" and bool(spec.environment_params.get("broadcast", False)):
        rejections.append(Rejection(
            "environment", "broadcast",
            "broadcast trace gossip (every in-range neighbour hears each send) "
            "is not vectorised; it requires the agent engine",
        ))
    if spec.group_relative and spec.environment == "uniform":
        rejections.append(Rejection(
            "accounting", "group_relative",
            "group-relative error accounting needs an environment that defines "
            "groups (ring, grid, random-geometric, erdos-renyi or spatial-grid)",
        ))
    if spec.network != "perfect":
        if spec.network != "bernoulli-loss":
            rejections.append(Rejection(
                "network", spec.network,
                f"network model {spec.network!r} is not vectorised "
                "(kernels support 'perfect' and 'bernoulli-loss' only)",
            ))
        elif spec.protocol not in _LOSSY_KERNEL_PROTOCOLS:
            lossy = ", ".join(sorted(_LOSSY_KERNEL_PROTOCOLS))
            rejections.append(Rejection(
                "network", spec.network,
                f"Bernoulli message loss is only vectorised for {lossy}; "
                f"protocol {spec.protocol!r} under a lossy network requires "
                "the agent engine",
            ))
    if entry is None:
        supported = ", ".join(sorted(_KERNEL_TABLE))
        rejections.append(Rejection(
            "protocol", spec.protocol,
            f"protocol {spec.protocol!r} has no vectorised kernel (kernels: {supported})",
        ))
    else:
        if spec.mode not in entry["modes"]:
            modes = " or ".join(repr(mode) for mode in entry["modes"])
            rejections.append(Rejection(
                "mode", spec.mode,
                f"protocol {spec.protocol!r} is only vectorised in mode {modes}",
            ))
        unknown = set(spec.protocol_params) - entry["params"]
        if unknown:
            rejections.append(Rejection(
                "protocol", ",".join(sorted(unknown)),
                f"protocol parameter(s) {sorted(unknown)} are not supported by the "
                f"vectorised {spec.protocol!r} kernel",
            ))
    rejections.extend(_event_schedule_rejections(spec, entry))
    return rejections


def resolve_plan(spec: "ScenarioSpec") -> ExecutionPlan:
    """The :class:`ExecutionPlan` ``spec`` resolves to.

    ``backend="auto"`` picks the vectorised backend exactly when
    :func:`vectorized_rejections` is empty; explicit backends are kept as
    requested (with the rejection list attached, so callers — and error
    messages — can explain an unrunnable request and name the nearest
    runnable plan).
    """
    rejections = tuple(vectorized_rejections(spec))
    if spec.backend == AUTO:
        backend = "agent" if rejections else "vectorized"
    else:
        backend = spec.backend
    return ExecutionPlan(engine=spec.engine, backend=backend, rejections=rejections)


def capability_matrix() -> Dict[str, object]:
    """The engine×backend support matrix, derived from the registries.

    For every registered protocol and both engines, a minimal probe spec
    is resolved through :func:`resolve_plan`; nothing here is
    hand-maintained, so a new kernel (or a new engine realisation) shows
    up in ``repro-aggregate list --capabilities`` automatically.  Cells
    are ``"yes"``, ``"no"`` (with the first rejection recorded in
    ``reasons``) or ``"n/a"`` (the probe spec itself does not validate).
    """
    from repro.api.registry import PROTOCOLS
    from repro.api.spec import ScenarioSpec

    engines = ("rounds", "events")
    rows: List[Dict[str, object]] = []
    for protocol in sorted(PROTOCOLS.keys()):
        entry = _KERNEL_TABLE.get(protocol)
        mode = entry["modes"][0] if entry else "exchange"
        cells: Dict[str, Dict[str, str]] = {}
        reasons: Dict[str, str] = {}
        for engine in engines:
            try:
                probe = ScenarioSpec(
                    protocol=protocol, n_hosts=8, rounds=2, mode=mode,
                    engine=engine, backend=AUTO,
                )
            except (ValueError, KeyError, TypeError):
                cells[engine] = {"agent": "n/a", "vectorized": "n/a"}
                continue
            plan = resolve_plan(probe)
            cells[engine] = {
                "agent": "yes",
                "vectorized": "yes" if not plan.rejections else "no",
            }
            if plan.rejections:
                reasons[engine] = plan.rejections[0].reason
        rows.append({"protocol": protocol, "cells": cells, "reasons": reasons})
    kernels = [
        {
            "kernel": name,
            "modes": "/".join(entry["modes"]),
            "parameters": ",".join(sorted(entry["params"])),
            "topology": "yes" if entry["topology"] else "uniform-only",
        }
        for name, entry in sorted(_KERNEL_TABLE.items())
    ]
    notes = [
        f"vectorised environments: {', '.join(_VECTOR_ENVIRONMENTS)}",
        f"vectorised failure models: {', '.join(_VECTOR_FAILURE_MODELS)}",
        f"lossy-network kernels: {', '.join(sorted(_LOSSY_KERNEL_PROTOCOLS))}",
        "event-calendar (engine='events') vectorisation: "
        f"{', '.join(_EVENTS_VECTOR_PROTOCOLS)} over uniform gossip on "
        f"{', '.join(_EVENTS_VECTOR_NETWORKS)} networks",
    ]
    return {"engines": engines, "backends": ("agent", "vectorized"),
            "rows": rows, "kernels": kernels, "notes": notes}
