"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, validated, JSON-serialisable
description of one simulation run — every component referred to by its
registry name (:mod:`repro.api.registry`) plus plain-data parameters.  The
spec is the single front door to the simulator:

>>> from repro.api import ScenarioSpec, run_scenario
>>> spec = ScenarioSpec(
...     protocol="push-sum-revert",
...     protocol_params={"reversion": 0.1},
...     environment="uniform",
...     workload="uniform",
...     n_hosts=200,
...     rounds=30,
...     seed=7,
...     events=({"event": "failure", "round": 15, "model": "correlated",
...              "fraction": 0.5, "highest": True},),
... )
>>> result = run_scenario(spec)
>>> result.final_error() < 15.0
True

Validation is eager: unknown registry names, bad constructor parameters,
malformed events and invalid engine options all raise at construction
time, not at the first ``build()`` on a worker process.  Specs round-trip
losslessly through :meth:`ScenarioSpec.to_dict` / :meth:`from_dict` and
:meth:`to_json` / :meth:`from_json`, which is what makes them cheap to
ship across process boundaries (see :mod:`repro.api.sweep`) and to commit
next to experiment outputs.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.registry import ENVIRONMENTS, FAILURES, NETWORKS, PROTOCOLS, WORKLOADS
from repro.core.cutoff import default_cutoff, linear_cutoff, no_decay_cutoff, scaled_cutoff
from repro.failures import ChurnProcess, FailureEvent, JoinEvent, ValueChangeEvent
from repro.simulator import Simulation, SimulationResult

__all__ = ["ScenarioSpec", "run_scenario", "NAMED_CUTOFFS"]

#: Names accepted for the ``cutoff`` protocol parameter of the sketch
#: protocols, so that JSON specs never need to reference callables.
NAMED_CUTOFFS: Dict[str, Any] = {
    "default": default_cutoff,
    "off": no_decay_cutoff,
    "none": no_decay_cutoff,
    "slow": scaled_cutoff(2.0),
}

_EVENT_KINDS = ("failure", "join", "value-change", "churn")

#: Protocols whose ``cutoff`` parameter is an integer age in rounds, not a
#: freshness *function* — :data:`NAMED_CUTOFFS` names do not apply to them.
_INTEGER_CUTOFF_PROTOCOLS = frozenset({"extrema-reset"})


def _jsonify(value: Any) -> Any:
    """Deep-copy ``value`` with tuples normalised to lists.

    JSON has no tuple type, so specs normalise containers at construction —
    that is what makes ``from_json(to_json(spec)) == spec`` hold even when a
    caller writes ``cluster_means=(35.0, 60.0, 85.0)``.
    """
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        return {key: _jsonify(item) for key, item in value.items()}
    return copy.deepcopy(value)


def _frozen_copy(params: Optional[Mapping]) -> Dict[str, Any]:
    """A private, JSON-normalised deep copy of a parameter mapping."""
    if params is None:
        return {}
    if not isinstance(params, Mapping):
        raise ValueError(f"expected a mapping of parameters, got {type(params).__name__}")
    return {key: _jsonify(value) for key, value in params.items()}


def _validate_event(entry: Mapping) -> Dict[str, Any]:
    """Validate one event dict and return a normalised copy."""
    if not isinstance(entry, Mapping):
        raise ValueError(f"events must be dicts, got {type(entry).__name__}")
    entry = _jsonify(dict(entry))
    kind = entry.get("event")
    if kind not in _EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}; expected one of {_EVENT_KINDS}")
    if kind == "churn":
        for bound in ("start", "stop"):
            if not isinstance(entry.get(bound), int) or entry[bound] < 0:
                raise ValueError(f"churn events need non-negative integer {bound!r} rounds")
    else:
        if not isinstance(entry.get("round"), int) or entry["round"] < 0:
            raise ValueError(f"{kind} events need a non-negative integer 'round'")
    if kind in ("failure", "churn"):
        model = entry.get("model")
        if not isinstance(model, str):
            raise ValueError(f"{kind} events need a 'model' registry name, got {model!r}")
        reserved = (
            ("event", "round", "model")
            if kind == "failure"
            else ("event", "start", "stop", "model", "arrivals_per_round")
        )
        params = {key: value for key, value in entry.items() if key not in reserved}
        FAILURES.validate_params(model, **params)
    elif kind == "join":
        if not isinstance(entry.get("count"), int) or entry["count"] < 1:
            raise ValueError("join events need a positive integer 'count'")
    else:  # value-change
        values = entry.get("values")
        if not isinstance(values, Mapping) or not values:
            raise ValueError("value-change events need a non-empty 'values' mapping")
        entry["values"] = {str(key): float(value) for key, value in values.items()}
    return entry


def _build_event(entry: Mapping) -> List[object]:
    """Instantiate the scheduled event(s) described by one event dict."""
    kind = entry["event"]
    if kind == "failure":
        params = {k: v for k, v in entry.items() if k not in ("event", "round", "model")}
        return [FailureEvent(round=entry["round"], model=FAILURES.create(entry["model"], **params))]
    if kind == "join":
        return [JoinEvent(round=entry["round"], count=entry["count"])]
    if kind == "value-change":
        new_values = {int(key): float(value) for key, value in entry["values"].items()}
        return [ValueChangeEvent(round=entry["round"], new_values=new_values)]
    # churn: expands into one failure (and optionally one join) per round
    params = {
        k: v
        for k, v in entry.items()
        if k not in ("event", "start", "stop", "model", "arrivals_per_round")
    }
    process = ChurnProcess(
        start=entry["start"],
        stop=entry["stop"],
        model=FAILURES.create(entry["model"], **params),
        arrivals_per_round=int(entry.get("arrivals_per_round", 0)),
    )
    return list(process.events())


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative description of one simulation run.

    Attributes
    ----------
    protocol / protocol_params:
        Registry name and constructor parameters of the aggregation
        protocol.  Sketch protocols may give ``cutoff`` as one of the
        names in :data:`NAMED_CUTOFFS` (``"default"``, ``"off"``,
        ``"slow"``) so the spec stays JSON-clean.
    environment / environment_params:
        Registry name and parameters of the gossip environment; every
        environment factory receives :attr:`n_hosts` automatically.
    workload / workload_params:
        Registry name and parameters of the value generator.  When
        ``workload_params`` carries no ``seed``, the workload is drawn
        with the scenario :attr:`seed` so one integer pins the whole run.
    network / network_params:
        Registry name and parameters of the network model
        (:mod:`repro.network`) deciding the fate of every message:
        ``"perfect"`` (the default — instant, reliable delivery,
        bit-identical to pre-network results), ``"bernoulli-loss"``,
        ``"latency"``, ``"bandwidth-cap"`` or ``"stacked"``.  Validation
        is eager: bad parameters fail here, and a latency-capable model
        combined with ``mode="exchange"`` is rejected at construction
        under the round engine (atomic push/pull exchanges cannot be
        deferred across a round barrier); ``engine="events"`` lifts the
        rejection by realising an exchange as a request event plus a
        timed reply event.
    engine / engine_params:
        Which simulation engine realises the scenario: ``"rounds"`` (the
        default — the lockstep :class:`repro.Simulation`) or ``"events"``
        (the continuous-time :class:`repro.events.EventSimulation`).
        ``engine_params`` configures the event engine and is rejected
        under ``engine="rounds"``; accepted keys are ``duration``
        (simulated seconds, default ``rounds * sample_interval``),
        ``sample_interval`` (metric cadence in simulated seconds, default
        ``1.0``), ``rates`` (per-host gossip-rate distribution —
        ``uniform``, ``heterogeneous`` or ``lognormal``; see
        :mod:`repro.events.clocks`), ``synchronized`` (host clocks on the
        global grid, default ``True``), ``mass_check`` (``"sample"`` /
        ``"event"`` / ``"off"``) and ``batch_quantum`` (bucket width in
        simulated seconds for the *vectorised* event calendar — default
        the tick grid; the agent event engine ignores it).  All
        validated eagerly.
    events:
        Scheduled membership events as plain dicts, e.g.
        ``{"event": "failure", "round": 20, "model": "uncorrelated",
        "fraction": 0.5}``; ``"join"``, ``"value-change"`` and ``"churn"``
        follow :mod:`repro.failures`.
    rounds / mode / seed / group_relative / store_estimates:
        Engine options, passed straight to :class:`repro.Simulation`.
    backend:
        Execution backend (:mod:`repro.api.backends`): ``"agent"`` (the
        per-host reference engine), ``"vectorized"`` (the NumPy kernels) or
        ``"auto"`` (default — vectorised whenever the scenario's protocol /
        environment / failure / workload combination has a kernel, agent
        otherwise).  An explicit backend is validated eagerly: requesting
        ``"vectorized"`` for an unsupported combination fails here, at
        construction, with the reason.
    name:
        Optional label used by sweep tables and reports.
    """

    protocol: str
    environment: str = "uniform"
    workload: str = "uniform"
    n_hosts: int = 1000
    rounds: int = 60
    mode: str = "exchange"
    seed: int = 0
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    environment_params: Dict[str, Any] = field(default_factory=dict)
    workload_params: Dict[str, Any] = field(default_factory=dict)
    network: str = "perfect"
    network_params: Dict[str, Any] = field(default_factory=dict)
    engine: str = "rounds"
    engine_params: Dict[str, Any] = field(default_factory=dict)
    events: Tuple[Dict[str, Any], ...] = ()
    group_relative: bool = False
    store_estimates: bool = False
    backend: str = "auto"
    name: str = ""

    # -------------------------------------------------------------- validation
    def __post_init__(self):
        object.__setattr__(self, "protocol_params", _frozen_copy(self.protocol_params))
        object.__setattr__(self, "environment_params", _frozen_copy(self.environment_params))
        object.__setattr__(self, "workload_params", _frozen_copy(self.workload_params))
        object.__setattr__(self, "network_params", _frozen_copy(self.network_params))
        object.__setattr__(self, "engine_params", _frozen_copy(self.engine_params))
        object.__setattr__(
            self, "events", tuple(_validate_event(entry) for entry in self.events)
        )
        if self.mode not in ("push", "exchange"):
            raise ValueError(f"unknown mode {self.mode!r}; expected 'push' or 'exchange'")
        if not isinstance(self.n_hosts, int) or self.n_hosts < 1:
            raise ValueError(f"n_hosts must be a positive integer, got {self.n_hosts!r}")
        if not isinstance(self.rounds, int) or self.rounds < 1:
            raise ValueError(f"rounds must be a positive integer, got {self.rounds!r}")
        if not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.engine not in ("rounds", "events"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected 'rounds' or 'events'"
            )
        self._validate_engine_params()
        PROTOCOLS.validate_params(self.protocol, **self.protocol_params)
        ENVIRONMENTS.validate_params(self.environment, self.n_hosts, **self.environment_params)
        WORKLOADS.validate_params(self.workload, self.n_hosts, **self._workload_call_params())
        NETWORKS.validate_params(self.network, **self.network_params)
        # Instantiating the model runs its constructor validation (loss
        # probabilities, delay bounds, stacked layer resolution) eagerly and
        # tells us whether it can defer delivery — which the round engine's
        # exchange mode cannot honour, since an atomic push/pull has no
        # "later" inside a lockstep round.  The event engine realises an
        # exchange as a request event plus a timed reply event, so the
        # combination is legal there.
        network_model = NETWORKS.create(self.network, **self.network_params)
        if self.mode == "exchange" and network_model.has_latency and self.engine == "rounds":
            raise ValueError(
                f"network {self.network!r} can delay message delivery, but "
                "mode='exchange' performs atomic push/pull exchanges the round "
                "engine cannot defer; use the event engine (engine='events'), "
                "mode='push', or a loss-only network model (e.g. 'bernoulli-loss')"
            )
        cutoff = self.protocol_params.get("cutoff")
        if self.protocol in _INTEGER_CUTOFF_PROTOCOLS:
            if cutoff is not None and (isinstance(cutoff, bool) or not isinstance(cutoff, int)):
                raise ValueError(
                    f"protocol {self.protocol!r} takes a positive integer 'cutoff' "
                    f"(a maximum age in rounds), got {cutoff!r}; named cutoff "
                    "functions apply to the sketch protocols only"
                )
            if cutoff is not None and cutoff < 1:
                raise ValueError(f"protocol {self.protocol!r} needs cutoff >= 1, got {cutoff}")
        elif isinstance(cutoff, str):
            if cutoff not in NAMED_CUTOFFS:
                raise ValueError(
                    f"unknown cutoff name {cutoff!r}; expected one of {sorted(NAMED_CUTOFFS)} "
                    "or a [intercept, slope] pair"
                )
        elif isinstance(cutoff, (list, tuple)):
            if len(cutoff) != 2 or not all(isinstance(item, (int, float)) for item in cutoff):
                raise ValueError(
                    f"cutoff pairs must be [intercept, slope] numbers, got {cutoff!r}"
                )
            linear_cutoff(float(cutoff[0]), float(cutoff[1]))  # bounds-checks eagerly
        # Backend validation runs last so its "cannot run this scenario"
        # messages only fire for otherwise-well-formed specs.
        from repro.api.backends import validate_backend

        validate_backend(self)

    def __hash__(self):
        # The generated frozen-dataclass hash chokes on the dict fields;
        # hash the canonical (key-sorted) JSON form instead so equal specs
        # hash equal regardless of parameter insertion order.
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def _validate_engine_params(self) -> None:
        """Eagerly validate :attr:`engine_params` against :attr:`engine`."""
        params = self.engine_params
        if self.engine == "rounds":
            if params:
                raise ValueError(
                    f"engine_params {sorted(params)} apply to engine='events' only; "
                    "the round engine is configured by 'rounds' and 'mode'"
                )
            return
        allowed = {
            "duration", "sample_interval", "rates", "synchronized", "mass_check",
            "batch_quantum",
        }
        unknown = set(params) - allowed
        if unknown:
            raise ValueError(
                f"unknown engine_params {sorted(unknown)}; expected a subset of {sorted(allowed)}"
            )
        sample_interval = params.get("sample_interval", 1.0)
        if isinstance(sample_interval, bool) or not isinstance(sample_interval, (int, float)) \
                or sample_interval <= 0:
            raise ValueError(
                f"engine_params['sample_interval'] must be a positive number of simulated "
                f"seconds, got {sample_interval!r}"
            )
        duration = params.get("duration", self.rounds * float(sample_interval))
        if isinstance(duration, bool) or not isinstance(duration, (int, float)) \
                or duration < sample_interval:
            raise ValueError(
                f"engine_params['duration'] must be a number >= the sample interval "
                f"({sample_interval}), got {duration!r}"
            )
        synchronized = params.get("synchronized", True)
        if not isinstance(synchronized, bool):
            raise ValueError(
                f"engine_params['synchronized'] must be a boolean, got {synchronized!r}"
            )
        mass_check = params.get("mass_check", "sample")
        if mass_check not in ("sample", "event", "off"):
            raise ValueError(
                f"engine_params['mass_check'] must be 'sample', 'event' or 'off', "
                f"got {mass_check!r}"
            )
        batch_quantum = params.get("batch_quantum")
        if batch_quantum is not None and (
            isinstance(batch_quantum, bool)
            or not isinstance(batch_quantum, (int, float))
            or batch_quantum <= 0
        ):
            raise ValueError(
                f"engine_params['batch_quantum'] must be a positive number of "
                f"simulated seconds (the vectorised calendar's bucket width), "
                f"got {batch_quantum!r}"
            )
        rates = params.get("rates")
        if rates is None:
            return
        if not isinstance(rates, Mapping):
            raise ValueError(
                f"engine_params['rates'] must be a mapping with a 'distribution', "
                f"got {type(rates).__name__}"
            )
        distribution = rates.get("distribution", "uniform")
        if distribution == "uniform":
            rate_keys = {"distribution", "rate"}
            rate = rates.get("rate", 1.0)
            if isinstance(rate, bool) or not isinstance(rate, (int, float)) or rate <= 0:
                raise ValueError(f"uniform rates need a positive 'rate', got {rate!r}")
        elif distribution == "heterogeneous":
            rate_keys = {"distribution", "fast", "slow", "fast_fraction"}
            for bound in ("fast", "slow"):
                value = rates.get(bound)
                if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"heterogeneous rates need a positive {bound!r} rate, got {value!r}"
                    )
            fraction = rates.get("fast_fraction", 0.5)
            if isinstance(fraction, bool) or not isinstance(fraction, (int, float)) \
                    or not 0.0 <= fraction <= 1.0:
                raise ValueError(
                    f"heterogeneous 'fast_fraction' must be in [0, 1], got {fraction!r}"
                )
        elif distribution == "lognormal":
            rate_keys = {"distribution", "mean", "sigma", "min_rate"}
            sigma = rates.get("sigma", 0.5)
            if isinstance(sigma, bool) or not isinstance(sigma, (int, float)) or sigma < 0:
                raise ValueError(f"lognormal 'sigma' must be non-negative, got {sigma!r}")
            minimum = rates.get("min_rate")
            if minimum is not None and (
                isinstance(minimum, bool) or not isinstance(minimum, (int, float)) or minimum <= 0
            ):
                raise ValueError(f"lognormal 'min_rate' must be positive, got {minimum!r}")
        else:
            from repro.events.clocks import RATE_DISTRIBUTIONS

            raise ValueError(
                f"unknown rate distribution {distribution!r}; "
                f"expected one of {RATE_DISTRIBUTIONS}"
            )
        unknown_rates = set(rates) - rate_keys
        if unknown_rates:
            raise ValueError(
                f"unknown keys {sorted(unknown_rates)} for {distribution!r} rates; "
                f"expected a subset of {sorted(rate_keys)}"
            )

    def engine_settings(self) -> Dict[str, Any]:
        """The event engine's normalised settings (defaults resolved).

        Only meaningful for ``engine="events"``; the default duration is
        :attr:`rounds` sample intervals, so a spec switched between
        engines covers the same number of recorded rounds.
        """
        params = self.engine_params
        sample_interval = float(params.get("sample_interval", 1.0))
        return {
            "duration": float(params.get("duration", self.rounds * sample_interval)),
            "sample_interval": sample_interval,
            "rates": dict(params.get("rates") or {"distribution": "uniform", "rate": 1.0}),
            "synchronized": bool(params.get("synchronized", True)),
            "mass_check": params.get("mass_check", "sample"),
            "batch_quantum": (
                float(params["batch_quantum"])
                if params.get("batch_quantum") is not None
                else None
            ),
        }

    # ------------------------------------------------------------- construction
    def _workload_call_params(self) -> Dict[str, Any]:
        params = dict(self.workload_params)
        params.setdefault("seed", self.seed)
        return params

    def _resolved_protocol_params(self) -> Dict[str, Any]:
        params = dict(self.protocol_params)
        if self.protocol in _INTEGER_CUTOFF_PROTOCOLS:
            return params  # integer age cutoff; nothing to resolve
        cutoff = params.get("cutoff")
        if isinstance(cutoff, str):
            params["cutoff"] = NAMED_CUTOFFS[cutoff]
        elif isinstance(cutoff, (list, tuple)):
            intercept, slope = cutoff
            params["cutoff"] = linear_cutoff(float(intercept), float(slope))
        elif cutoff is None and "cutoff" in params:
            # JSON ``"cutoff": null`` means "no decay" — the same as the
            # named "off" cutoff, and what the vectorised kernels accept;
            # resolving it here keeps the agent protocols (which expect a
            # callable) from crashing mid-run.
            params["cutoff"] = NAMED_CUTOFFS["off"]
        return params

    def build_protocol(self):
        """A fresh protocol instance."""
        return PROTOCOLS.create(self.protocol, **self._resolved_protocol_params())

    def build_environment(self):
        """A fresh environment instance (caches and registrations reset)."""
        return ENVIRONMENTS.create(self.environment, self.n_hosts, **self.environment_params)

    def build_values(self) -> List[float]:
        """The initial host values for this scenario."""
        return WORKLOADS.create(self.workload, self.n_hosts, **self._workload_call_params())

    def build_network(self):
        """A fresh network model instance (budgets reset).

        The agent engine takes ``None`` for the perfect network so its
        fast path — bit-identical to the pre-network-layer engine — stays
        in place; :meth:`build` performs that mapping.
        """
        return NETWORKS.create(self.network, **self.network_params)

    def build_events(self) -> List[object]:
        """Fresh scheduled-event instances."""
        built: List[object] = []
        for entry in self.events:
            built.extend(_build_event(entry))
        return built

    def build_event_simulation(self, *, probe=None):
        """A ready-to-run :class:`repro.events.EventSimulation`.

        The event-engine counterpart of :meth:`build`: constructs the
        continuous-time engine with this spec's components and
        :meth:`engine_settings`.  Useful directly in tests and notebooks;
        execution paths should go through :meth:`run` / :func:`run_scenario`,
        which dispatch on :attr:`engine` automatically.  ``probe`` is a
        runtime observer (:mod:`repro.obs`); it never enters :meth:`key`.
        """
        from repro.events import EventSimulation

        settings = self.engine_settings()
        return EventSimulation(
            self.build_protocol(),
            self.build_environment(),
            self.build_values(),
            seed=self.seed,
            mode=self.mode,
            events=self.build_events(),
            network=None if self.network == "perfect" else self.build_network(),
            group_relative=self.group_relative,
            store_estimates=self.store_estimates,
            duration=settings["duration"],
            sample_interval=settings["sample_interval"],
            rates=settings["rates"],
            synchronized=settings["synchronized"],
            mass_check=settings["mass_check"],
            probe=probe,
        )

    def build(self, *, probe=None) -> Simulation:
        """A ready-to-run :class:`repro.Simulation` (the *agent* realisation).

        This always constructs the per-host *round* engine regardless of
        :attr:`backend` / :attr:`engine`; use :meth:`run` /
        :func:`run_scenario` to dispatch through the backend layer (which
        routes ``engine="events"`` to :meth:`build_event_simulation`).
        ``probe`` is a runtime observer (:mod:`repro.obs`); it never enters
        :meth:`key`.
        """
        return Simulation(
            self.build_protocol(),
            self.build_environment(),
            self.build_values(),
            seed=self.seed,
            mode=self.mode,
            events=self.build_events(),
            network=None if self.network == "perfect" else self.build_network(),
            group_relative=self.group_relative,
            store_estimates=self.store_estimates,
            probe=probe,
        )

    def resolved_backend(self) -> str:
        """The concrete backend this scenario runs on (``"auto"`` resolved)."""
        from repro.api.backends import resolve_backend

        return resolve_backend(self)

    def key(self) -> str:
        """The spec's stable canonical hash (the result-store address).

        The key is the SHA-256 of the key-sorted JSON form of the spec —
        every field that can influence the simulation: components and their
        parameters, population, rounds, mode, seed, events, network,
        engine and its parameters, ``group_relative`` / ``store_estimates``
        — with two normalisations:

        * ``name`` is excluded (a label changes reports, never results), and
        * ``backend`` is replaced by :meth:`resolved_backend`, so an
          ``"auto"`` spec shares its cache entry with the explicit backend
          it resolves to — and changes address automatically when a new
          kernel makes ``"auto"`` resolve differently.

        Canonical JSON (sorted keys, fixed separators) makes the key
        independent of dict insertion order and of the process that
        computes it; ``tests/test_store.py`` pins both properties.
        """
        payload = self.to_dict()
        payload.pop("name", None)
        payload["backend"] = self.resolved_backend()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def run(self, *, store=None, refresh: bool = False, probe=None) -> SimulationResult:
        """Run the scenario for :attr:`rounds` rounds on its backend.

        With a :class:`repro.store.ResultStore` the store is consulted
        first (unless ``refresh`` forces re-execution) and executed results
        are written back — see :func:`run_scenario`.  ``probe`` attaches a
        :mod:`repro.obs` observer for the duration of the run.
        """
        from repro.api.backends import run_with_backend
        from repro.obs.probe import NULL_PROBE

        return run_with_backend(
            self, store=store, refresh=refresh, probe=probe if probe is not None else NULL_PROBE
        )

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict representation that :meth:`from_dict` restores exactly."""
        payload = dataclasses.asdict(self)
        payload["events"] = [copy.deepcopy(entry) for entry in self.events]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (validates eagerly)."""
        if not isinstance(payload, Mapping):
            raise TypeError(f"expected a mapping, got {type(payload).__name__}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields {sorted(unknown)}; expected a subset of {sorted(known)}"
            )
        if "protocol" not in payload:
            raise ValueError("scenario dicts must name a 'protocol'")
        kwargs = dict(payload)
        if "events" in kwargs:
            kwargs["events"] = tuple(kwargs["events"])
        return cls(**kwargs)

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ----------------------------------------------------------------- utility
    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (re-validates)."""
        return dataclasses.replace(self, **changes)

    def label(self) -> str:
        """A short human-readable label (the name, or a derived summary)."""
        if self.name:
            return self.name
        return f"{self.protocol}/{self.environment}/n={self.n_hosts}/seed={self.seed}"


def run_scenario(
    spec: ScenarioSpec, *, store=None, refresh: bool = False, probe=None
) -> SimulationResult:
    """Build and run ``spec``; equal specs produce identical results.

    Parameters
    ----------
    store:
        An optional :class:`repro.store.ResultStore`.  When given, the
        store is checked first — a hit returns the cached result without
        executing anything, bit-identical to the run that produced it —
        and a miss executes the scenario and writes the result back.
    refresh:
        Skip the store lookup (but still write the fresh result back);
        use to overwrite suspect entries.
    probe:
        An optional :class:`repro.obs.Probe` (e.g. a
        :class:`~repro.obs.TraceRecorder` or
        :class:`~repro.obs.MetricsRegistry`) that observes the run — phase
        spans, per-round counters, store hits/misses.  Probes only watch;
        they never draw from the RNG streams, so results stay bit-identical
        with or without one.
    """
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(f"run_scenario expects a ScenarioSpec, got {type(spec).__name__}")
    return spec.run(store=store, refresh=refresh, probe=probe)
