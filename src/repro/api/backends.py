"""Execution backends: one scenario, two engines.

A :class:`~repro.api.spec.ScenarioSpec` describes *what* to simulate; this
module decides *how*.  Two backends are registered:

* ``"agent"`` — the reference per-host engine (:class:`repro.Simulation`).
  Runs every protocol over every environment; the only backend for the
  event-driven engine and for joins on static graph topologies.
* ``"vectorized"`` — the NumPy kernels of :mod:`repro.simulator.vectorized`.
  Orders of magnitude faster (see ``BENCH_core.json``); covers uniform
  gossip, the static graph topologies (``ring``, ``grid``,
  ``random-geometric``, ``erdos-renyi``, ``spatial-grid``) *and* contact
  traces (``trace``, compiled into a per-round time-varying CSR) via the
  sparse-adjacency samplers of :mod:`repro.simulator.sparse`, plus the
  dynamic-membership scenarios (mid-run joins under uniform gossip and
  ``churn`` event schedules) for every protocol with a kernel; the
  backend of the paper's large population sweeps (Figs 6, 8, 9, 10), its
  Section IV-A spatial scenarios and its Fig 11 trace replays.

``backend="auto"`` (the spec default) picks the vectorised backend whenever
the scenario's (protocol, environment, failure, workload) combination is
supported and falls back to the agent engine otherwise, so callers get the
fast path for free without ever losing coverage.

Kernel semantics differ from the agent engine in documented, statistically
equivalent ways (random perfect matchings instead of collision-prone peer
selection — see DESIGN.md §7), so a vectorised run is *not* bit-identical
to an agent run of the same spec; ``tests/test_backends.py`` pins the two
to agree in distribution on every supported combination.
"""

from __future__ import annotations

import inspect
import json
from collections import OrderedDict
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.api.plan import (
    AUTO,
    _KERNEL_TABLE,
    _LOSSY_KERNEL_PROTOCOLS,
    _VECTOR_ENVIRONMENTS,
    _VECTOR_FAILURE_MODELS,
    ExecutionPlan,
    PlanRejectionError,
    resolve_plan,
    vectorized_rejections,
)
from repro.api.registry import ENVIRONMENTS, FAILURES, PROTOCOLS, Registry, _grid_dimensions
from repro.failures.models import CorrelatedFailure, ExplicitFailure, UncorrelatedFailure
from repro.metrics.recorder import SeriesRecorder
from repro.obs.probe import NULL_PROBE
from repro.simulator.result import RoundRecord, SimulationResult
from repro.simulator.sparse import CSRTopology, GridRingTopology, TraceCSRTopology
from repro.topology.graphs import erdos_renyi_edges, grid_edges, ring_lattice_edges
from repro.simulator.vectorized import (
    VectorizedCountSketchReset,
    VectorizedExtrema,
    VectorizedPushSumRevert,
    VectorizedSketchCount,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.spec import ScenarioSpec

__all__ = [
    "AgentBackend",
    "BACKENDS",
    "ExecutionBackend",
    "VectorizedBackend",
    "resolve_backend",
    "run_with_backend",
    "validate_backend",
]


@lru_cache(maxsize=None)
def _environment_default(environment: str, param: str):
    """The registered environment factory's default for ``param``.

    The factories in :mod:`repro.api.registry` are the single source of
    truth for parameter defaults; the edge fast paths below must resolve
    omitted parameters from the same place or the two backends would run
    different graphs for the same spec.
    """
    return inspect.signature(ENVIRONMENTS.get(environment)).parameters[param].default


#: Memoised static topologies keyed by (environment, params JSON, n_hosts).
#: Every topology environment is deterministic given its parameters (the
#: random generators take an explicit ``graph_seed``), so reuse is sound;
#: a multi-seed sweep over one graph then builds it exactly once.  The
#: samplers' internal caches are keyed by alive mask, so sharing one
#: topology across kernels is safe.
_TOPOLOGY_CACHE: "OrderedDict[Tuple[str, str, int], Tuple[object, str]]" = OrderedDict()
_TOPOLOGY_CACHE_SIZE = 8

# Capability constants (`_KERNEL_TABLE`, `_VECTOR_ENVIRONMENTS`, ...) moved
# to :mod:`repro.api.plan` with the structured ExecutionPlan layer; they are
# re-imported above so existing references keep resolving.


class ExecutionBackend:
    """How a :class:`~repro.api.spec.ScenarioSpec` gets executed.

    Backends expose two operations: :meth:`supports`, which reports *why* a
    scenario cannot run here (``None`` means it can), and :meth:`run`, which
    executes a supported scenario into the same
    :class:`~repro.simulator.SimulationResult` shape regardless of engine.
    """

    name: str = "abstract"

    def supports(self, spec: "ScenarioSpec") -> Optional[str]:
        """``None`` when the backend can run ``spec``, else a human reason."""
        raise NotImplementedError

    def run(self, spec: "ScenarioSpec", probe=NULL_PROBE) -> SimulationResult:
        """Execute ``spec`` for ``spec.rounds`` rounds.

        ``probe`` is an :mod:`repro.obs` instrumentation sink; the default
        null probe keeps the run bit-identical and effectively free.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class AgentBackend(ExecutionBackend):
    """The reference per-host engines; run everything a spec can describe.

    Both per-host realisations live here: the lockstep round engine
    (``engine="rounds"``) and the continuous-time event engine
    (``engine="events"`` — :class:`repro.events.EventSimulation`, which
    runs its configured simulated duration rather than a round count).
    """

    name = "agent"

    def supports(self, spec: "ScenarioSpec") -> Optional[str]:
        return None

    def run(self, spec: "ScenarioSpec", probe=NULL_PROBE) -> SimulationResult:
        if spec.engine == "events":
            with probe.span("build", backend=self.name, engine="events"):
                simulation = spec.build_event_simulation(probe=probe)
            with probe.span("execute", backend=self.name, engine="events"):
                result = simulation.run()
        else:
            with probe.span("build", backend=self.name, engine="rounds"):
                simulation = spec.build(probe=probe)
            with probe.span("execute", backend=self.name, engine="rounds"):
                result = simulation.run(spec.rounds)
        result.metadata["backend"] = self.name
        return result


class VectorizedBackend(ExecutionBackend):
    """The NumPy kernels, exposed through the declarative scenario surface."""

    name = "vectorized"

    # ------------------------------------------------------------ capability
    def supports(self, spec: "ScenarioSpec") -> Optional[str]:
        """Deprecated string shim over :func:`repro.api.plan.vectorized_rejections`.

        Kept so external callers of the old ``supports() -> Optional[str]``
        protocol keep working; in-tree dispatch goes through
        :func:`repro.api.plan.resolve_plan`, which exposes *all* rejections
        as structured ``(axis, feature, reason)`` records instead of just
        the first sentence returned here.
        """
        rejections = vectorized_rejections(spec)
        return rejections[0].reason if rejections else None

    # ---------------------------------------------------------- construction
    @staticmethod
    def build_topology(spec: "ScenarioSpec"):
        """``(topology, environment_class_name)`` for ``spec``.

        Ring, grid and Erdős–Rényi environments build straight from their
        edge enumerations (:func:`~repro.topology.graphs.ring_lattice_edges`
        / :func:`~repro.topology.graphs.grid_edges` /
        :func:`~repro.topology.graphs.erdos_renyi_edges` — the same arrays
        the adjacency-map factories are built from, with omitted parameters
        resolved from the registered factory signatures, so both backends
        see the identical graph); every other topology is constructed
        *through the registered environment factory*, which also keeps
        ``graph_seed``-style randomness identical across backends.  Static
        topologies are memoised per (environment, params, n_hosts) — a
        multi-seed sweep over one graph builds it once.  Uniform gossip
        needs no topology and returns ``(None, "UniformEnvironment")``
        without building anything.
        """
        if spec.environment == "uniform":
            return None, "UniformEnvironment"
        key = (
            spec.environment,
            json.dumps(spec.environment_params, sort_keys=True),
            spec.n_hosts,
        )
        cached = _TOPOLOGY_CACHE.get(key)
        if cached is not None:
            _TOPOLOGY_CACHE.move_to_end(key)
            return cached
        params = spec.environment_params

        def default(name):
            return params.get(name, _environment_default(spec.environment, name))

        if spec.environment == "ring":
            u, v = ring_lattice_edges(spec.n_hosts, k=int(default("k")))
            built = CSRTopology.from_edges(u, v, spec.n_hosts), "NeighborhoodEnvironment"
        elif spec.environment == "grid":
            width, height = _grid_dimensions(
                spec.n_hosts, params.get("width"), params.get("height")
            )
            u, v = grid_edges(width, height, diagonal=bool(default("diagonal")))
            built = CSRTopology.from_edges(u, v, spec.n_hosts), "NeighborhoodEnvironment"
        elif spec.environment == "erdos-renyi":
            u, v = erdos_renyi_edges(
                spec.n_hosts, float(default("p")), seed=int(default("graph_seed"))
            )
            built = CSRTopology.from_edges(u, v, spec.n_hosts), "NeighborhoodEnvironment"
        else:
            from repro.environments import SpatialGridEnvironment
            from repro.environments.trace import TraceEnvironment

            environment = spec.build_environment()
            if isinstance(environment, SpatialGridEnvironment):
                # The 1/d² long links are realised by the distance-ring
                # sampler (the environment's walk=False idealisation; the
                # hop-by-hop walk approximates it — DESIGN.md §10).
                topology = GridRingTopology(
                    environment.width,
                    environment.height,
                    max_distance=environment.max_distance,
                )
            elif isinstance(environment, TraceEnvironment):
                # Same trace, same per-round instants, same group window —
                # the compiled CSR replays exactly what the agent
                # environment would answer round by round (DESIGN.md §12).
                topology = TraceCSRTopology(
                    environment.trace,
                    round_seconds=environment.round_seconds,
                    group_window_seconds=environment.group_window_seconds,
                )
            else:
                topology = CSRTopology.from_adjacency(environment.adjacency, spec.n_hosts)
            built = topology, type(environment).__name__
        _TOPOLOGY_CACHE[key] = built
        while len(_TOPOLOGY_CACHE) > _TOPOLOGY_CACHE_SIZE:
            _TOPOLOGY_CACHE.popitem(last=False)
        return built

    def build_kernel(self, spec: "ScenarioSpec", topology=None):
        """The configured kernel for ``spec`` (validates support eagerly).

        Exposed publicly for experiments that need raw kernel state — the
        Figure 6 counter CDFs read ``counter_values_for_bit`` — while still
        routing construction through the backend's dispatch rules.
        ``topology`` short-circuits :meth:`build_topology` when the caller
        already built one (the run loop reuses it for group accounting).
        """
        rejections = tuple(vectorized_rejections(spec))
        if rejections:
            raise PlanRejectionError(
                f"backend 'vectorized' cannot run this scenario: {rejections[0].reason}",
                rejections=rejections,
                nearest=ExecutionPlan(engine=spec.engine, backend="agent", rejections=rejections),
            )
        if topology is None and spec.environment != "uniform":
            topology, _environment_name = self.build_topology(spec)
        params = spec._resolved_protocol_params()
        loss = _network_loss(spec)
        if spec.protocol == "push-sum-revert":
            return VectorizedPushSumRevert(
                spec.build_values(),
                float(params.get("reversion", 0.01)),
                mode="pushpull" if spec.mode == "exchange" else "push",
                adaptive=bool(params.get("adaptive", False)),
                loss=loss,
                topology=topology,
                seed=spec.seed,
            )
        if spec.protocol == "push-sum-revert-full-transfer":
            return VectorizedPushSumRevert(
                spec.build_values(),
                float(params.get("reversion", 0.1)),
                mode="full-transfer",
                parcels=int(params.get("parcels", 4)),
                history=int(params.get("history", 3)),
                loss=loss,
                seed=spec.seed,
            )
        if spec.protocol == "count-sketch-reset":
            kwargs = dict(
                bins=int(params.get("bins", 64)),
                bits=int(params.get("bits", 24)),
                identifiers_per_host=int(params.get("identifiers_per_host", 1)),
                pull=spec.mode == "exchange",
                topology=topology,
                seed=spec.seed,
            )
            if "cutoff" in params:
                kwargs["cutoff"] = params["cutoff"]
            return VectorizedCountSketchReset(spec.n_hosts, **kwargs)
        if spec.protocol == "sketch-count":
            # Defaults mirror the agent SketchCount (64 x 32) so one spec
            # means one sketch geometry on either backend.
            return VectorizedSketchCount(
                spec.n_hosts,
                bins=int(params.get("bins", 64)),
                bits=int(params.get("bits", 32)),
                identifiers_per_host=int(params.get("identifiers_per_host", 1)),
                pull=spec.mode == "exchange",
                topology=topology,
                seed=spec.seed,
            )
        # extrema-gossip / extrema-reset (reset defaults to the agent cutoff of 15)
        cutoff = int(params.get("cutoff", 15)) if spec.protocol == "extrema-reset" else None
        return VectorizedExtrema(
            spec.build_values(),
            maximum=bool(params.get("maximum", True)),
            cutoff=cutoff,
            topology=topology,
            seed=spec.seed,
        )

    # -------------------------------------------------------------- execution
    def run(self, spec: "ScenarioSpec", probe=NULL_PROBE) -> SimulationResult:
        rejections = tuple(vectorized_rejections(spec))
        if rejections:
            raise PlanRejectionError(
                f"backend 'vectorized' cannot run this scenario: {rejections[0].reason}",
                rejections=rejections,
                nearest=ExecutionPlan(engine=spec.engine, backend="agent", rejections=rejections),
            )
        if spec.engine == "events":
            # The bucketed event-calendar runner; lives in repro.events to
            # keep the continuous-time machinery together.  It reuses this
            # backend's kernel construction, event application and round
            # recording, so it takes the backend instance rather than
            # re-importing (which would cycle).
            from repro.events.vectorized import run_vectorized_events

            return run_vectorized_events(self, spec, probe=probe)
        with probe.span("build", backend=self.name):
            topology, environment_name = self.build_topology(spec)
            kernel = self.build_kernel(spec, topology=topology)
        values = getattr(kernel, "initial", getattr(kernel, "own", None))
        if values is None and any(
            entry["event"] in ("failure", "churn") and entry["model"] == "correlated"
            for entry in spec.events
        ):
            # Counting kernels carry no values; rebuild the workload so a
            # correlated failure can still order hosts the way the agent does.
            values = spec.build_values()
        values_array = np.asarray(values, dtype=float) if values is not None else None
        events_by_round = _expand_events(spec)

        result = SimulationResult(
            protocol_name=spec.protocol,
            aggregate=_aggregate_kind(spec),
            seed=spec.seed,
            metadata={
                "mode": spec.mode,
                "environment": environment_name,
                "n_initial": spec.n_hosts,
                "protocol_params": dict(spec.protocol_params),
                "backend": self.name,
                "kernel": type(kernel).__name__,
            },
        )
        if spec.network != "perfect":
            result.metadata["network"] = {"name": spec.network, **dict(spec.network_params)}
        prev_delivered = prev_lost = prev_bytes = 0
        series = SeriesRecorder(name=spec.name)
        time_varying = isinstance(topology, TraceCSRTopology)
        # Kernels (and the cached, shared topologies) carry the probe as an
        # attribute so the hot phase spans need no per-call plumbing; restore
        # the null probe afterwards because topologies outlive this run.
        kernel.probe = probe
        if topology is not None:
            topology.probe = probe
        try:
            with probe.span("execute", backend=self.name):
                for t in range(spec.rounds):
                    with probe.span("round", round=t):
                        if time_varying:
                            topology.set_round(t)
                        for entry in events_by_round.get(t, ()):
                            values_array = self._apply_event(kernel, entry, values_array)
                            if probe.enabled and entry["event"] in ("join", "failure"):
                                probe.event(
                                    "membership",
                                    action="join" if entry["event"] == "join" else "fail",
                                    round=t,
                                )
                        kernel.step()
                        record = self._record_round(kernel, spec, t)
                    # Every kernel exposes cumulative delivery counters; the
                    # per-round deltas feed both the RoundRecord fields (agent
                    # parity) and the SeriesRecorder extra series.
                    delivered = int(kernel.messages_delivered)
                    lost = int(kernel.messages_lost)
                    bytes_sent = int(kernel.bytes_sent)
                    record.messages_delivered = delivered - prev_delivered
                    record.messages_lost = lost - prev_lost
                    record.bytes_sent = bytes_sent - prev_bytes
                    prev_delivered, prev_lost, prev_bytes = delivered, lost, bytes_sent
                    series.record_error(
                        t,
                        record.max_abs_error,
                        record.truth,
                        mean_estimate=record.mean_estimate,
                        population=record.n_alive,
                        messages_delivered=record.messages_delivered,
                        messages_lost=record.messages_lost,
                        bytes_sent=record.bytes_sent,
                    )
                    result.append(record)
                    if probe.enabled:
                        probe.event(
                            "round_end",
                            round=t,
                            n_alive=record.n_alive,
                            max_abs_error=record.max_abs_error,
                            messages_delivered=record.messages_delivered,
                            messages_lost=record.messages_lost,
                            bytes_sent=record.bytes_sent,
                        )
                        probe.gauge("n_alive", record.n_alive)
        finally:
            kernel.probe = NULL_PROBE
            if topology is not None:
                topology.probe = NULL_PROBE
        result.metadata["delivery_series"] = {
            key: list(values) for key, values in series.extra.items()
        }
        return result

    def _apply_event(
        self, kernel, entry: dict, values_array: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """Apply one per-round event; returns the (possibly grown) workload array."""
        kind = entry["event"]
        if kind == "value-change":
            kernel.change_values({int(key): float(value) for key, value in entry["values"].items()})
            return values_array
        if kind == "join":
            # New hosts draw the agent JoinEvent's default workload
            # (uniform 0..100 per host); the kernel grows its state arrays
            # and the correlated-failure ordering array grows with it.
            fresh = kernel.rng.uniform(0.0, 100.0, size=int(entry["count"]))
            kernel.join(fresh)
            if values_array is not None:
                values_array = np.concatenate([values_array, fresh])
            return values_array
        # failure — instantiate the registered model so parameter defaults
        # and validation stay identical to the agent path.
        params = {k: v for k, v in entry.items() if k not in ("event", "round", "model")}
        model = FAILURES.create(entry["model"], **params)
        if isinstance(model, UncorrelatedFailure):
            kernel.fail_random_fraction(model.fraction)
        elif isinstance(model, CorrelatedFailure):
            if hasattr(kernel, "fail_extreme_fraction"):
                kernel.fail_extreme_fraction(model.fraction, highest=model.highest)
            else:
                self._fail_correlated(kernel, values_array, model.fraction, model.highest)
        elif isinstance(model, ExplicitFailure):
            valid = [i for i in model.host_ids if 0 <= int(i) < kernel.n]
            if valid:
                kernel.fail(valid)
        else:  # pragma: no cover - supports() rejects everything else
            raise ValueError(f"failure model {entry['model']!r} is not vectorised")
        return values_array

    @staticmethod
    def _fail_correlated(
        kernel, values_array: Optional[np.ndarray], fraction: float, highest: bool
    ) -> None:
        """Correlated failure for kernels without per-host values.

        The counting kernels carry no values, but the backend built the
        workload, so it can reproduce the agent semantics (fail the hosts
        with the most extreme *workload* values) directly.
        """
        alive_idx = np.nonzero(kernel.alive)[0]
        count = int(round(fraction * alive_idx.size))
        if count == 0:
            return
        if values_array is None:
            values_array = np.zeros(kernel.n, dtype=float)
        order = alive_idx[np.argsort(values_array[alive_idx])]
        kernel.fail(order[-count:] if highest else order[:count])

    @staticmethod
    def _record_round(kernel, spec: "ScenarioSpec", t: int) -> RoundRecord:
        estimates = kernel.estimates()
        n_alive = int(kernel.alive.sum())
        group_sizes: Optional[float] = None
        if spec.group_relative:
            truth, deltas, group_sizes = VectorizedBackend._group_relative_errors(
                kernel, spec, estimates
            )
        else:
            truth = kernel.truth()
            deltas = estimates - truth if estimates.size else estimates
        if deltas.size:
            stddev_error = float(np.sqrt(np.mean(deltas**2)))
            max_abs_error = float(np.max(np.abs(deltas)))
            mean_abs_error = float(np.mean(np.abs(deltas)))
        else:
            stddev_error = max_abs_error = mean_abs_error = float("nan")
        mean_estimate = float(np.mean(estimates)) if estimates.size else float("nan")
        stored: Optional[Dict[int, float]] = None
        if spec.store_estimates:
            alive_idx = np.nonzero(kernel.alive)[0]
            stored = {int(host): float(value) for host, value in zip(alive_idx, estimates)}
        return RoundRecord(
            round_index=t,
            truth=truth,
            n_alive=n_alive,
            mean_estimate=mean_estimate,
            stddev_error=stddev_error,
            max_abs_error=max_abs_error,
            mean_abs_error=mean_abs_error,
            bytes_sent=0,
            estimates=stored,
            group_sizes=group_sizes,
        )

    @staticmethod
    def _group_relative_errors(kernel, spec: "ScenarioSpec", estimates: np.ndarray):
        """Per-host error against the host's *group* aggregate (Fig 11 rule).

        Groups are the connected components of the live-induced topology
        (:meth:`~repro.simulator.sparse._Topology.component_labels`, cached
        per alive mask, so steady-state rounds pay only array gathers).
        Mirrors the agent engine's accounting: each host is scored against
        its own component's aggregate, the recorded truth is the host-mean
        of those group truths, and ``group_sizes`` is the mean component
        size.
        """
        alive_idx = np.nonzero(kernel.alive)[0]
        if alive_idx.size == 0:
            return float("nan"), np.array([], dtype=float), 0.0
        labels, sizes = kernel.topology.component_labels(kernel.alive)
        live_labels = labels[alive_idx]
        kind = _aggregate_kind(spec)
        if kind == "count":
            group_truth = sizes.astype(float)
        else:
            values = np.asarray(kernel._host_values(), dtype=float)[alive_idx]
            if kind == "average":
                group_sums = np.bincount(live_labels, weights=values, minlength=sizes.size)
                group_truth = group_sums / np.maximum(sizes, 1)
            else:  # max / min (no kernel aggregates sums today)
                fill = -np.inf if kind == "max" else np.inf
                group_truth = np.full(sizes.size, fill, dtype=float)
                extremum = np.maximum if kind == "max" else np.minimum
                extremum.at(group_truth, live_labels, values)
        truth_per_host = group_truth[live_labels]
        deltas = estimates - truth_per_host
        truth = float(truth_per_host.mean())
        group_sizes = float(sizes.mean()) if sizes.size else 0.0
        return truth, deltas, group_sizes


def _expand_events(spec: "ScenarioSpec") -> Dict[int, List[dict]]:
    """Per-round event dicts for the vectorised run loop.

    One-shot events key on their ``"round"``; ``"churn"`` entries unroll
    exactly the way the agent engine's :class:`~repro.failures.ChurnProcess`
    does — one failure, then (with arrivals) one join, per round in
    ``range(start, stop)`` — so both backends apply the same membership
    schedule round by round.
    """
    events_by_round: Dict[int, List[dict]] = {}
    for entry in spec.events:
        if entry["event"] != "churn":
            events_by_round.setdefault(int(entry["round"]), []).append(entry)
            continue
        params = {
            k: v
            for k, v in entry.items()
            if k not in ("event", "start", "stop", "model", "arrivals_per_round")
        }
        arrivals = int(entry.get("arrivals_per_round", 0))
        for t in range(int(entry["start"]), min(int(entry["stop"]), spec.rounds)):
            per_round = events_by_round.setdefault(t, [])
            per_round.append({"event": "failure", "round": t, "model": entry["model"], **params})
            if arrivals > 0:
                per_round.append({"event": "join", "round": t, "count": arrivals})
    return events_by_round


def _network_loss(spec: "ScenarioSpec") -> float:
    """The Bernoulli loss probability a lossy kernel should apply."""
    if spec.network == "bernoulli-loss":
        return float(spec.network_params["p"])
    return 0.0


def _aggregate_kind(spec: "ScenarioSpec") -> str:
    """The aggregate the scenario's protocol computes (extrema depend on params)."""
    if spec.protocol in ("extrema-gossip", "extrema-reset"):
        return "max" if spec.protocol_params.get("maximum", True) else "min"
    return PROTOCOLS.get(spec.protocol).aggregate


BACKENDS = Registry("backend")
BACKENDS.register("agent", AgentBackend())
BACKENDS.register("vectorized", VectorizedBackend())


def resolve_backend(spec: "ScenarioSpec") -> str:
    """The concrete backend name ``spec`` will run on (``"auto"`` resolved)."""
    return resolve_plan(spec).backend


def validate_backend(spec: "ScenarioSpec") -> None:
    """Reject impossible backend requests at spec construction time.

    ``backend="auto"`` always validates (it can fall back to the agent
    engine); an explicit backend must exist and must support the scenario,
    so a typo or an unsupported combination fails with an actionable
    message instead of surfacing mid-run inside a process pool.  The
    error is a :class:`~repro.api.plan.PlanRejectionError` carrying every
    structured rejection plus the nearest runnable plan.
    """
    if spec.backend == AUTO:
        return
    if spec.backend not in BACKENDS:
        known = ", ".join(sorted([AUTO, *BACKENDS.keys()]))
        raise ValueError(f"unknown backend {spec.backend!r}; expected one of: {known}")
    plan = resolve_plan(spec)
    if not plan.runnable:
        raise PlanRejectionError(
            f"backend {spec.backend!r} cannot run this scenario: "
            f"{plan.rejections[0].reason}; "
            "use backend='agent' (or 'auto' to fall back automatically)",
            rejections=plan.rejections,
            nearest=plan.nearest_runnable(),
        )


def run_with_backend(
    spec: "ScenarioSpec", *, store=None, refresh: bool = False, probe=NULL_PROBE
) -> SimulationResult:
    """Execute ``spec`` on its resolved backend.

    This is the single point every execution path funnels through
    (:func:`~repro.api.spec.run_scenario`, :meth:`ScenarioSpec.run`, the
    sweep runner's serial path), so the result-store hook lives here: with
    a :class:`repro.store.ResultStore` the lookup happens before any
    engine is built, and a fresh result is written back after the run.
    ``refresh=True`` skips the lookup but keeps the write-back.

    ``probe`` (default the no-op :data:`~repro.obs.probe.NULL_PROBE`)
    observes store lookups, backend resolution, and the run itself; probes
    never touch the RNG streams, so any probe leaves results bit-identical.
    """
    if store is not None and not refresh:
        with probe.span("store_get"):
            cached = store.get(spec)
        # Hit/miss *counters* are the store's own job (ResultStore.probe),
        # so a store carrying this probe doesn't double-count; the events
        # here record the outcome per scenario either way.
        if cached is not None:
            if probe.enabled:
                probe.event("store", outcome="hit", spec=spec.name)
            return cached
        if probe.enabled:
            probe.event("store", outcome="miss", spec=spec.name)
    with probe.span("resolve"):
        plan = resolve_plan(spec)
    result = BACKENDS.get(plan.backend).run(spec, probe=probe)
    name = plan.backend
    result.metadata.setdefault("backend", name)
    if store is not None:
        with probe.span("store_put"):
            store.put(spec, result)
    return result
