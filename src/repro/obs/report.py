"""Turn a recorded JSONL trace back into human-readable tables.

This is the analysis half of :mod:`repro.obs`: given the flat record
list a :class:`~repro.obs.trace.TraceRecorder` wrote,
:func:`summarize_trace` folds it into per-phase wall-time aggregates,
counter totals, and the per-round series carried by ``round_end``
events, and :func:`render_report` renders the lot with
:mod:`repro.analysis.render` — the output of
``repro-aggregate obs report <trace.jsonl>``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.render import format_number, render_table

__all__ = ["summarize_trace", "render_report"]

#: ``round_end`` fields that are identity, not counters — everything else
#: becomes a column of the per-round table in first-seen order.
_ROUND_KEY_FIELDS = ("kind", "t", "name")


def summarize_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace record list (see :mod:`repro.obs.trace`).

    Returns a dict with:

    ``phases``
        ``{span name: {count, total, min, max}}`` wall-time aggregates;
    ``counters``
        ``{counter name: total}`` summed increments;
    ``events``
        ``{event name: occurrences}``;
    ``rounds``
        the ``round_end`` event records in order — the per-round
        counter series.
    """
    phases: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    events: Dict[str, int] = {}
    rounds: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name", "?")
            seconds = float(record.get("seconds", 0.0))
            phase = phases.get(name)
            if phase is None:
                phases[name] = {
                    "count": 1,
                    "total": seconds,
                    "min": seconds,
                    "max": seconds,
                }
            else:
                phase["count"] += 1
                phase["total"] += seconds
                phase["min"] = min(phase["min"], seconds)
                phase["max"] = max(phase["max"], seconds)
        elif kind == "count":
            name = record.get("name", "?")
            counters[name] = counters.get(name, 0) + float(record.get("value", 0))
        elif kind == "event":
            name = record.get("name", "?")
            events[name] = events.get(name, 0) + 1
            if name == "round_end":
                rounds.append(record)
    return {"phases": phases, "counters": counters, "events": events, "rounds": rounds}


def _phase_table(phases: Dict[str, Dict[str, float]]) -> str:
    total = sum(p["total"] for p in phases.values()) or 1.0
    rows = [
        [
            name,
            int(p["count"]),
            f"{p['total'] * 1000:.2f}",
            f"{p['total'] / p['count'] * 1000:.3f}",
            f"{p['max'] * 1000:.3f}",
            f"{100 * p['total'] / total:.1f}%",
        ]
        for name, p in sorted(phases.items(), key=lambda item: -item[1]["total"])
    ]
    return render_table(["phase", "calls", "total ms", "mean ms", "max ms", "share"], rows)


def _round_table(rounds: List[Dict[str, Any]], every: int = 1) -> str:
    columns: List[str] = []
    for record in rounds:
        for key in record:
            if key not in _ROUND_KEY_FIELDS and key not in columns:
                columns.append(key)
    rows = []
    for index, record in enumerate(rounds):
        if index % every != 0 and index != len(rounds) - 1:
            continue
        rows.append([format_number(record.get(key)) for key in columns])
    return render_table(columns, rows)


def render_report(records: Sequence[Dict[str, Any]], *, every: int = 1) -> str:
    """The full ``obs report`` rendering: phase breakdown, counters, rounds."""
    summary = summarize_trace(records)
    blocks: List[str] = []
    if summary["phases"]:
        blocks.append("Phase-time breakdown\n" + _phase_table(summary["phases"]))
    if summary["counters"]:
        rows = [[name, f"{value:g}"] for name, value in sorted(summary["counters"].items())]
        blocks.append("Counters\n" + render_table(["counter", "total"], rows))
    if summary["events"]:
        rows = [[name, count] for name, count in sorted(summary["events"].items())]
        blocks.append("Events\n" + render_table(["event", "occurrences"], rows))
    if summary["rounds"]:
        blocks.append(
            "Per-round counters\n" + _round_table(summary["rounds"], every=every)
        )
    if not blocks:
        return "(empty trace)"
    return "\n\n".join(blocks)
