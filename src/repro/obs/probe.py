"""The probe protocol: what instrumented code calls, and the null default.

Every execution layer (engines, kernels, backends, sweeps, the result
store) takes a :class:`Probe` and reports into it through four verbs:

``span(name, **attrs)``
    a wall-clock phase, used as a context manager —
    ``with probe.span("matching"): ...``;
``event(name, **fields)``
    a point-in-time structured record (a membership change, a mass-check
    result, a store hit);
``count(name, value)``
    increment a monotonic counter (messages delivered, events processed);
``gauge(name, value)``
    set a level (calendar depth, live-host count).

The default everywhere is :data:`NULL_PROBE`, whose methods do nothing
and whose ``enabled`` flag is ``False`` so hot loops can skip even the
call: ``if probe.enabled: probe.count(...)``.  Probes only *observe* —
they never touch an RNG stream or mutate simulation state — so a run
with any probe attached is bit-identical to a run with none.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, List, Sequence, Tuple

__all__ = ["Probe", "NullProbe", "MultiProbe", "NULL_PROBE"]


class _Span:
    """A timed phase; re-entrant-safe because each ``span()`` call makes one."""

    __slots__ = ("_probe", "name", "attrs", "started")

    def __init__(self, probe: "Probe", name: str, attrs: Tuple[Tuple[str, Any], ...]):
        self._probe = probe
        self.name = name
        self.attrs = attrs
        self.started = 0.0

    def __enter__(self) -> "_Span":
        self.started = time.perf_counter()
        self._probe._span_started(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._probe._span_finished(self, time.perf_counter() - self.started)


class _NullSpan:
    """A single shared no-op context manager (no per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Probe:
    """Base class for real probes; subclasses override the ``_on_*`` hooks.

    ``enabled`` is ``True`` for every real probe — hot paths use it to
    skip per-item accounting entirely under the null default.
    """

    enabled: bool = True

    # -------------------------------------------------------------- verbs
    def span(self, name: str, **attrs: Any) -> Any:
        """A wall-clock phase: ``with probe.span("matching"): ...``."""
        return _Span(self, name, tuple(sorted(attrs.items())))

    def event(self, name: str, **fields: Any) -> None:
        """A point-in-time structured record."""
        self._on_event(name, fields)

    def count(self, name: str, value: float = 1) -> None:
        """Increment the monotonic counter ``name`` by ``value``."""
        self._on_count(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set the level ``name`` to ``value``."""
        self._on_gauge(name, value)

    # ----------------------------------------------------- subclass hooks
    def _on_event(self, name: str, fields: dict) -> None:  # pragma: no cover
        pass

    def _on_span(self, name: str, seconds: float, attrs: Tuple) -> None:  # pragma: no cover
        pass

    def _span_started(self, span: _Span) -> None:
        pass

    def _span_finished(self, span: _Span, seconds: float) -> None:
        self._on_span(span.name, seconds, span.attrs)

    def _on_count(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def _on_gauge(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    # ------------------------------------------------------------- finish
    def close(self) -> None:
        """Flush/finalise; a no-op unless a subclass buffers."""


class NullProbe(Probe):
    """The zero-cost default: every verb is a no-op, ``enabled`` is False."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> Any:
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        return None

    def count(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None


#: The shared do-nothing probe every layer defaults to.
NULL_PROBE = NullProbe()


class MultiProbe(Probe):
    """Fan one instrumentation stream out to several probes at once.

    ``MultiProbe(TraceRecorder(...), MetricsRegistry())`` records the
    JSONL trace and the aggregate metrics from a single run.  Null
    members are dropped; an empty MultiProbe behaves like the null probe
    (``enabled`` is False).
    """

    def __init__(self, *probes: Probe):
        self.probes: List[Probe] = [p for p in probes if p is not None and p.enabled]
        self.enabled = bool(self.probes)

    def span(self, name: str, **attrs: Any) -> Any:
        if not self.probes:
            return _NULL_SPAN
        return _Span(self, name, tuple(sorted(attrs.items())))

    # Fan the start/finish hooks (not just ``_on_span``) so members that
    # track span nesting — the trace recorder's depth/parent stack — see
    # the same lifecycle they would when attached alone.
    def _span_started(self, span: _Span) -> None:
        for probe in self.probes:
            probe._span_started(span)

    def _span_finished(self, span: _Span, seconds: float) -> None:
        for probe in self.probes:
            probe._span_finished(span, seconds)

    def event(self, name: str, **fields: Any) -> None:
        for probe in self.probes:
            probe._on_event(name, fields)

    def count(self, name: str, value: float = 1) -> None:
        for probe in self.probes:
            probe._on_count(name, value)

    def gauge(self, name: str, value: float) -> None:
        for probe in self.probes:
            probe._on_gauge(name, value)

    def close(self) -> None:
        for probe in self.probes:
            probe.close()

    def __iter__(self) -> Iterator[Probe]:
        return iter(self.probes)


def compose(probes: Sequence[Probe]) -> Probe:
    """The cheapest probe covering ``probes``: null, the single member,
    or a :class:`MultiProbe`."""
    live = [p for p in probes if p is not None and p.enabled]
    if not live:
        return NULL_PROBE
    if len(live) == 1:
        return live[0]
    return MultiProbe(*live)
