"""Aggregate metrics: counters, gauges, and wall-time histograms.

:class:`MetricsRegistry` is the probe to attach when you want totals
rather than a record-per-call trace: every ``span`` folds into a
per-name wall-time histogram (count / total / min / max), every
``count`` into a running sum, every ``gauge`` into its latest value
(plus min/max seen).  Two exporters:

``render()``
    a human-readable summary table built with
    :func:`repro.analysis.render.render_table`;
``prometheus()``
    a Prometheus text-format dump (``# TYPE`` lines plus samples),
    suitable for a textfile collector.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.analysis.render import render_table
from repro.obs.probe import Probe

__all__ = ["MetricsRegistry"]


class MetricsRegistry(Probe):
    """Fold a probe stream into named aggregates."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Dict[str, float]] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    # -------------------------------------------------------------- hooks
    def _on_span(self, name: str, seconds: float, attrs: Tuple) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            self.histograms[name] = {
                "count": 1,
                "total": seconds,
                "min": seconds,
                "max": seconds,
            }
            return
        histogram["count"] += 1
        histogram["total"] += seconds
        if seconds < histogram["min"]:
            histogram["min"] = seconds
        if seconds > histogram["max"]:
            histogram["max"] = seconds

    def _on_event(self, name: str, fields: dict) -> None:
        # Events are trace-level detail; the registry only counts them.
        self.counters[f"events.{name}"] = self.counters.get(f"events.{name}", 0) + 1

    def _on_count(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def _on_gauge(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            self.gauges[name] = {"value": value, "min": value, "max": value}
            return
        gauge["value"] = value
        if value < gauge["min"]:
            gauge["min"] = value
        if value > gauge["max"]:
            gauge["max"] = value

    # ---------------------------------------------------------- exporters
    def as_dict(self) -> Dict[str, Any]:
        """The registry's full state as plain dicts (JSON-serialisable)."""
        return {
            "counters": dict(self.counters),
            "gauges": {name: dict(value) for name, value in self.gauges.items()},
            "histograms": {name: dict(value) for name, value in self.histograms.items()},
        }

    def render(self) -> str:
        """A three-block summary table: phase times, counters, gauges."""
        blocks = []
        if self.histograms:
            total = sum(h["total"] for h in self.histograms.values()) or 1.0
            rows = [
                [
                    name,
                    f"{int(h['count'])}",
                    f"{h['total'] * 1000:.2f}",
                    f"{h['total'] / h['count'] * 1000:.3f}",
                    f"{h['max'] * 1000:.3f}",
                    f"{100 * h['total'] / total:.1f}%",
                ]
                for name, h in sorted(
                    self.histograms.items(), key=lambda item: -item[1]["total"]
                )
            ]
            blocks.append(
                render_table(
                    ["phase", "calls", "total ms", "mean ms", "max ms", "share"], rows
                )
            )
        if self.counters:
            rows = [
                [name, f"{value:g}"] for name, value in sorted(self.counters.items())
            ]
            blocks.append(render_table(["counter", "total"], rows))
        if self.gauges:
            rows = [
                [name, f"{g['value']:g}", f"{g['min']:g}", f"{g['max']:g}"]
                for name, g in sorted(self.gauges.items())
            ]
            blocks.append(render_table(["gauge", "last", "min", "max"], rows))
        return "\n\n".join(blocks) if blocks else "(no metrics recorded)"

    def prometheus(self, prefix: str = "repro") -> str:
        """A Prometheus text-format dump of every aggregate."""

        def sanitize(name: str) -> str:
            return "".join(c if c.isalnum() or c == "_" else "_" for c in name)

        lines = []
        for name, value in sorted(self.counters.items()):
            metric = f"{prefix}_{sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value:g}")
        for name, gauge in sorted(self.gauges.items()):
            metric = f"{prefix}_{sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge['value']:g}")
        for name, histogram in sorted(self.histograms.items()):
            metric = f"{prefix}_{sanitize(name)}_seconds"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {int(histogram['count'])}")
            lines.append(f"{metric}_sum {histogram['total']:.9f}")
        return "\n".join(lines) + ("\n" if lines else "")
