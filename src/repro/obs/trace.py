"""Structured JSONL tracing.

:class:`TraceRecorder` turns a run's probe stream into a flat list of
dict records — one per span, event, counter increment, or gauge sample —
and writes them as JSON Lines when closed (or on demand).  Records are
buffered in memory so the per-call cost in a hot loop is a dict append,
not a file write; a 50-round smoke run produces a few thousand records,
well under a megabyte.

Record schema (every record carries ``kind`` and ``t``, seconds since
the recorder was created):

``{"kind": "span", "name": ..., "seconds": ..., "depth": ..., "parent": ..., ...attrs}``
    a finished phase, with its nesting depth and enclosing span name;
``{"kind": "event", "name": ..., ...fields}``
    a point-in-time record (membership change, mass check, store hit);
``{"kind": "count", "name": ..., "value": ...}``
    a counter increment;
``{"kind": "gauge", "name": ..., "value": ...}``
    a level sample.

:func:`read_trace` loads a JSONL file back into the same list of dicts,
which is what ``repro-aggregate obs report`` consumes.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.obs.probe import Probe

__all__ = ["TraceRecorder", "read_trace"]


class TraceRecorder(Probe):
    """Buffer every probe verb as a structured record; flush to JSONL.

    ``path`` names the output file written by :meth:`close` (and by
    :meth:`flush`).  Without a path the recorder is purely in-memory —
    useful in tests and for programmatic inspection via ``records``.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.records: List[Dict[str, Any]] = []
        self._stack: List[str] = []
        self._epoch = time.perf_counter()
        self._flushed = 0

    # -------------------------------------------------------------- hooks
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _span_started(self, span: Any) -> None:
        self._stack.append(span.name)

    def _span_finished(self, span: Any, seconds: float) -> None:
        # The span being closed is the top of the stack; everything under
        # it is its ancestry.  Pop first so `depth` counts enclosing spans.
        if self._stack and self._stack[-1] == span.name:
            self._stack.pop()
        record: Dict[str, Any] = {
            "kind": "span",
            "t": self._now(),
            "name": span.name,
            "seconds": seconds,
            "depth": len(self._stack),
            "parent": self._stack[-1] if self._stack else None,
        }
        for key, value in span.attrs:
            record[key] = value
        self.records.append(record)

    def _on_event(self, name: str, fields: dict) -> None:
        record: Dict[str, Any] = {"kind": "event", "t": self._now(), "name": name}
        record.update(fields)
        self.records.append(record)

    def _on_count(self, name: str, value: float) -> None:
        self.records.append(
            {"kind": "count", "t": self._now(), "name": name, "value": value}
        )

    def _on_gauge(self, name: str, value: float) -> None:
        self.records.append(
            {"kind": "gauge", "t": self._now(), "name": name, "value": value}
        )

    # ------------------------------------------------------------- output
    def flush(self) -> None:
        """Append any unwritten records to ``path`` (no-op when in-memory)."""
        if self.path is None or self._flushed >= len(self.records):
            return
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in self.records[self._flushed:]:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._flushed = len(self.records)

    def close(self) -> None:
        self.flush()

    def __len__(self) -> int:
        return len(self.records)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace written by :class:`TraceRecorder`."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
