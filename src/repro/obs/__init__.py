"""Observability: structured tracing, metrics, and phase profiling.

Every execution layer — the agent engine, the vectorised kernels and
their sparse topologies, the event engine, backend dispatch, the sweep
runner, and the result store — reports into a :class:`Probe` through
four verbs (``span``/``event``/``count``/``gauge``).  The default is
:data:`NULL_PROBE`, whose verbs are no-ops and whose ``enabled`` flag
lets hot loops skip instrumentation entirely, so an unprobed run is
bit-identical to (and as fast as) a run built before this module
existed.  Probes never touch an RNG stream, so the same holds with any
probe attached: probing changes what you *see*, never what happens.

Attach probes through the same funnel everything else uses::

    from repro import run_scenario
    from repro.obs import MetricsRegistry, TraceRecorder

    trace = TraceRecorder("run.jsonl")
    metrics = MetricsRegistry()
    result = run_scenario(spec, probe=MultiProbe(trace, metrics))
    trace.close()                 # flush the JSONL
    print(metrics.render())       # phase/counter/gauge summary table

or from the CLI: ``repro-aggregate run --config spec.json --trace
run.jsonl --metrics`` and then ``repro-aggregate obs report run.jsonl``
for the phase-time breakdown and per-round counter table.  See
DESIGN.md §13.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import NULL_PROBE, MultiProbe, NullProbe, Probe, compose
from repro.obs.report import render_report, summarize_trace
from repro.obs.trace import TraceRecorder, read_trace

__all__ = [
    "Probe",
    "NullProbe",
    "MultiProbe",
    "NULL_PROBE",
    "compose",
    "TraceRecorder",
    "read_trace",
    "MetricsRegistry",
    "summarize_trace",
    "render_report",
]
