"""Experiments for the extension features (DESIGN.md §6).

These are not figures from the paper; they quantify the behaviours the
extensions add so that their claims are as reproducible as the paper's:

* **Graceful versus silent departure** — how much error each protocol
  family carries after the same set of hosts leaves, with and without the
  chance to sign off.
* **Extrema freshness** — static gossip max versus the freshness-limited
  `ExtremaReset` after the host holding the maximum departs.
* **Loss-rate sweep** — plateau error of Push-Sum-Revert versus
  Count-Sketch-Reset as the Bernoulli message-loss rate grows, a figure
  the paper never ran (its evaluation assumes reliable delivery; the
  network models of :mod:`repro.network` lift that assumption).
* **Rate-heterogeneity sweep** — convergence time in *simulated seconds*
  as the host population splits into fast and slow gossipers, a question
  only the event engine (:mod:`repro.events`) can ask: the paper's
  lockstep rounds force every host onto the same clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.render import render_table
from repro.api.spec import ScenarioSpec, run_scenario
from repro.baselines import ExtremaGossip, ExtremaReset, PushSum
from repro.core import CountSketchReset, GracefulDepartureEvent, PushSumRevert
from repro.environments import UniformEnvironment
from repro.failures import CorrelatedFailure, ExplicitFailure, FailureEvent
from repro.simulator import Simulation
from repro.workloads import uniform_values

__all__ = [
    "DepartureComparisonResult",
    "run_departure_comparison",
    "render_departure_comparison",
    "ExtremaComparisonResult",
    "run_extrema_comparison",
    "render_extrema_comparison",
    "LossSweepResult",
    "DEFAULT_LOSS_RATES",
    "run_loss_sweep",
    "render_loss_sweep",
    "RateHeterogeneityResult",
    "DEFAULT_RATE_RATIOS",
    "run_rate_heterogeneity_sweep",
    "render_rate_heterogeneity_sweep",
]

#: Loss rates swept by :func:`run_loss_sweep`.
DEFAULT_LOSS_RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass
class DepartureComparisonResult:
    """Final errors after a correlated departure, graceful versus silent."""

    n_hosts: int
    rounds: int
    departure_round: int
    #: protocol label → {"silent": error, "graceful": error}
    final_errors: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run_departure_comparison(
    n_hosts: int = 400,
    *,
    rounds: int = 50,
    departure_round: int = 15,
    fraction: float = 0.5,
    seed: int = 0,
) -> DepartureComparisonResult:
    """Compare silent failure against graceful sign-off for three protocols."""
    values = uniform_values(n_hosts, seed=seed)
    model = CorrelatedFailure(fraction, highest=True)
    protocols = {
        "push-sum (static)": lambda: PushSum(),
        "push-sum-revert (lambda=0.1)": lambda: PushSumRevert(0.1),
        "count-sketch-reset": lambda: CountSketchReset(bins=16, bits=18),
    }
    result = DepartureComparisonResult(
        n_hosts=n_hosts, rounds=rounds, departure_round=departure_round
    )
    for label, factory in protocols.items():
        outcomes: Dict[str, float] = {}
        for mode, event in (
            ("silent", FailureEvent(round=departure_round, model=model)),
            ("graceful", GracefulDepartureEvent(round=departure_round, model=model)),
        ):
            protocol = factory()
            host_values = values if protocol.aggregate == "average" else [1.0] * n_hosts
            simulation = Simulation(
                protocol,
                UniformEnvironment(n_hosts),
                host_values,
                seed=seed,
                mode="exchange",
                events=[event],
            )
            outcomes[mode] = simulation.run(rounds).plateau_error(tail=5)
        result.final_errors[label] = outcomes
    return result


def render_departure_comparison(result: DepartureComparisonResult) -> str:
    """Render the graceful-versus-silent comparison as a table."""
    rows = [
        [label, round(errors["silent"], 3), round(errors["graceful"], 3)]
        for label, errors in result.final_errors.items()
    ]
    header = (
        f"Graceful vs silent departure: {result.n_hosts} hosts, highest-valued half "
        f"leaves at round {result.departure_round}; plateau error over the last 5 of "
        f"{result.rounds} rounds\n"
    )
    return header + render_table(["protocol", "silent failure", "graceful sign-off"], rows)


@dataclass
class ExtremaComparisonResult:
    """Error trajectories of static versus freshness-limited extrema gossip."""

    n_hosts: int
    rounds: int
    departure_round: int
    static_errors: List[float] = field(default_factory=list)
    reset_errors: List[float] = field(default_factory=list)

    def static_final(self) -> float:
        return self.static_errors[-1]

    def reset_final(self) -> float:
        return self.reset_errors[-1]


def run_extrema_comparison(
    n_hosts: int = 300,
    *,
    rounds: int = 60,
    departure_round: int = 15,
    cutoff: int = 12,
    seed: int = 0,
) -> ExtremaComparisonResult:
    """Fail the host holding the maximum and compare the two extrema protocols."""
    values = uniform_values(n_hosts, seed=seed)
    top_host = int(np.argmax(values))
    result = ExtremaComparisonResult(
        n_hosts=n_hosts, rounds=rounds, departure_round=departure_round
    )
    for label, protocol in (
        ("static", ExtremaGossip()),
        ("reset", ExtremaReset(cutoff=cutoff)),
    ):
        simulation = Simulation(
            protocol,
            UniformEnvironment(n_hosts),
            values,
            seed=seed,
            mode="exchange",
            events=[FailureEvent(round=departure_round, model=ExplicitFailure([top_host]))],
        )
        errors = simulation.run(rounds).errors()
        if label == "static":
            result.static_errors = errors
        else:
            result.reset_errors = errors
    return result


@dataclass
class LossSweepResult:
    """Plateau error versus Bernoulli loss rate, per dynamic protocol."""

    n_hosts: int
    rounds: int
    loss_rates: Tuple[float, ...]
    reversion: float
    #: protocol label → {loss rate → plateau error as a fraction of truth}
    relative_plateau: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: protocol label → execution backend the sweep resolved to
    backends: Dict[str, str] = field(default_factory=dict)


def run_loss_sweep(
    n_hosts: int = 400,
    *,
    rounds: int = 50,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    reversion: float = 0.05,
    bins: int = 16,
    bits: int = 18,
    cutoff: str = "slow",
    seed: int = 0,
    tail: int = 5,
) -> LossSweepResult:
    """Sweep the Bernoulli loss rate for the paper's two dynamic protocols.

    Both protocols run in push mode, where a lost message genuinely
    destroys its content: Push-Sum-Revert bleeds mass (the reversion step
    continuously re-mints it, which is why it tolerates loss at all) and
    Count-Sketch-Reset drops counter arrays — harmless until loss slows
    propagation past the freshness cutoff, at which point live hosts'
    counters start expiring and the estimate collapses.  The defaults
    reflect push-only gossip: λ = 0.05 (push mixes slower than push/pull,
    so the paper's λ = 0.1 leaves a large reversion noise floor) and the
    ``"slow"`` (2×) cutoff, without which the sketch cannot even converge
    losslessly one-way.  Plateau errors are reported relative to each
    protocol's truth so an averaging protocol over [0, 100) values and a
    counting protocol over ``n_hosts`` hosts are comparable.  ``loss=0``
    is the paper's (perfect-network) regime.  Backends are pinned per
    protocol — the lossy Push-Sum-Revert kernel and the agent engine for
    the sketch — so every row of a column comes from one engine.
    """
    base = {
        "push-sum-revert": ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": reversion},
            mode="push",
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            backend="vectorized",
            name="loss-sweep-push-sum-revert",
        ),
        "count-sketch-reset": ScenarioSpec(
            protocol="count-sketch-reset",
            protocol_params={"bins": bins, "bits": bits, "cutoff": cutoff},
            workload="constant",
            mode="push",
            n_hosts=n_hosts,
            rounds=rounds,
            seed=seed,
            backend="agent",
            name="loss-sweep-count-sketch-reset",
        ),
    }
    result = LossSweepResult(
        n_hosts=n_hosts,
        rounds=rounds,
        loss_rates=tuple(float(rate) for rate in loss_rates),
        reversion=reversion,
    )
    for label, spec in base.items():
        result.backends[label] = spec.backend
        per_rate: Dict[float, float] = {}
        for rate in result.loss_rates:
            lossy = spec if rate == 0.0 else spec.replace(
                network="bernoulli-loss", network_params={"p": rate}
            )
            run = run_scenario(lossy)
            truth = abs(run.final_truth()) or 1.0
            per_rate[rate] = run.plateau_error(tail=tail) / truth
        result.relative_plateau[label] = per_rate
    return result


def render_loss_sweep(result: LossSweepResult) -> str:
    """Render the loss-rate sweep as a table (plateau error in % of truth)."""
    labels = list(result.relative_plateau)
    rows = [
        [f"{rate:g}"] + [
            round(100.0 * result.relative_plateau[label][rate], 3) for label in labels
        ]
        for rate in result.loss_rates
    ]
    header = (
        f"Plateau error vs Bernoulli message-loss rate: {result.n_hosts} hosts, "
        f"push gossip, {result.rounds} rounds (plateau = mean error over the last "
        f"rounds, in % of the true aggregate).\n"
        f"Push-Sum-Revert (lambda={result.reversion:g}) re-mints lost mass through "
        "reversion; Count-Sketch-Reset re-announces identifiers every round.\n"
    )
    return header + render_table(
        ["loss rate"] + [f"{label} (% err)" for label in labels], rows
    )


#: Fast:slow gossip-rate ratios swept by :func:`run_rate_heterogeneity_sweep`.
DEFAULT_RATE_RATIOS = (1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass
class RateHeterogeneityResult:
    """Convergence time (simulated seconds) versus fast:slow rate ratio."""

    n_hosts: int
    duration: float
    ratios: Tuple[float, ...]
    threshold: float
    sustained: int
    #: protocol label → {ratio → simulated seconds to convergence, or None}
    convergence_seconds: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: protocol label → {ratio → final error as a fraction of truth}
    relative_final: Dict[str, Dict[float, float]] = field(default_factory=dict)


def _convergence_time(result, threshold: float, sustained: int):
    """Simulated time of the first record opening a sustained sub-threshold run.

    ``threshold`` is relative to each record's truth (mirrors
    :meth:`SimulationResult.convergence_round` with ``relative=True``)
    but the answer is the record's ``time`` — the axis rate heterogeneity
    distorts.  Returns ``None`` when the run never converges.
    """
    run_length = 0
    for index, record in enumerate(result.rounds):
        if record.stddev_error <= threshold * abs(record.truth):
            run_length += 1
            if run_length >= sustained:
                return result.rounds[index - sustained + 1].time
        else:
            run_length = 0
    return None


def run_rate_heterogeneity_sweep(
    n_hosts: int = 400,
    *,
    duration: float = 60.0,
    ratios: Sequence[float] = DEFAULT_RATE_RATIOS,
    reversion: float = 0.05,
    bins: int = 16,
    bits: int = 18,
    cutoff: str = "slow",
    threshold: float = 0.05,
    sustained: int = 3,
    seed: int = 0,
) -> RateHeterogeneityResult:
    """Sweep the fast:slow gossip-rate ratio on the event engine.

    Half the hosts gossip at 1 Hz, the other half at ``1/ratio`` Hz
    (``ratio=1`` is the homogeneous baseline), exchanging over a perfect
    network on the continuous-time calendar of :mod:`repro.events`.  The
    question is how unevenly-paced gossip stretches convergence *in
    simulated seconds*: slow hosts initiate exchanges rarely, but fast
    initiators still pull them toward the average when sampling them as
    responders, so time-to-converge should grow far slower than the slow
    hosts' period alone suggests.  Count-Sketch-Reset ages its sketches
    per *local* tick, so its freshness cutoff also dilates with the slow
    hosts' clocks — the sweep shows whether that keeps the estimate
    stable.  Convergence is the first time the error stays below
    ``threshold`` × truth for ``sustained`` consecutive one-second
    samples.
    """
    base = {
        "push-sum-revert": ScenarioSpec(
            protocol="push-sum-revert",
            protocol_params={"reversion": reversion},
            mode="exchange",
            n_hosts=n_hosts,
            rounds=int(duration),
            seed=seed,
            engine="events",
            backend="agent",
            name="rate-heterogeneity-push-sum-revert",
        ),
        "count-sketch-reset": ScenarioSpec(
            protocol="count-sketch-reset",
            protocol_params={"bins": bins, "bits": bits, "cutoff": cutoff},
            workload="constant",
            mode="exchange",
            n_hosts=n_hosts,
            rounds=int(duration),
            seed=seed,
            engine="events",
            backend="agent",
            name="rate-heterogeneity-count-sketch-reset",
        ),
    }
    result = RateHeterogeneityResult(
        n_hosts=n_hosts,
        duration=float(duration),
        ratios=tuple(float(ratio) for ratio in ratios),
        threshold=float(threshold),
        sustained=int(sustained),
    )
    for label, spec in base.items():
        per_ratio_time: Dict[float, float] = {}
        per_ratio_final: Dict[float, float] = {}
        for ratio in result.ratios:
            if ratio < 1.0:
                raise ValueError(f"rate ratios must be >= 1, got {ratio}")
            swept = spec.replace(
                engine_params={
                    "duration": float(duration),
                    "sample_interval": 1.0,
                    "synchronized": False,
                    "rates": {
                        "distribution": "heterogeneous",
                        "fast": 1.0,
                        "slow": 1.0 / ratio,
                        "fast_fraction": 0.5,
                    },
                },
            )
            run = run_scenario(swept)
            per_ratio_time[ratio] = _convergence_time(run, result.threshold, result.sustained)
            truth = abs(run.final_truth()) or 1.0
            per_ratio_final[ratio] = run.final_error() / truth
        result.convergence_seconds[label] = per_ratio_time
        result.relative_final[label] = per_ratio_final
    return result


def render_rate_heterogeneity_sweep(result: RateHeterogeneityResult) -> str:
    """Render the rate-heterogeneity sweep as a table (simulated seconds)."""
    labels = list(result.convergence_seconds)

    def _cell(value) -> str:
        return "-" if value is None else f"{value:g}"

    rows = [
        [f"{ratio:g}"]
        + [_cell(result.convergence_seconds[label][ratio]) for label in labels]
        + [round(100.0 * result.relative_final[label][ratio], 3) for label in labels]
        for ratio in result.ratios
    ]
    header = (
        f"Convergence time vs gossip-rate heterogeneity: {result.n_hosts} hosts on the "
        f"event engine, half at 1 Hz and half at 1/ratio Hz, exchange gossip for "
        f"{result.duration:g} simulated seconds.\n"
        f"Convergence = first time the error stays below {100 * result.threshold:g}% of "
        f"truth for {result.sustained} consecutive 1 s samples ('-' = never).\n"
    )
    return header + render_table(
        ["fast:slow"]
        + [f"{label} (s)" for label in labels]
        + [f"{label} (% err)" for label in labels],
        rows,
    )


def render_extrema_comparison(result: ExtremaComparisonResult) -> str:
    """Render final errors of the extrema comparison."""
    rows = [
        ["extrema-gossip (static)", round(result.static_final(), 3)],
        ["extrema-reset (freshness cutoff)", round(result.reset_final(), 3)],
    ]
    header = (
        f"Extrema after the maximum departs: {result.n_hosts} hosts, the host holding "
        f"the maximum leaves at round {result.departure_round}; error at round {result.rounds}\n"
    )
    return header + render_table(["protocol", "final error"], rows)
