"""Experiments for the extension features (DESIGN.md §6).

These are not figures from the paper; they quantify the behaviours the
extensions add so that their claims are as reproducible as the paper's:

* **Graceful versus silent departure** — how much error each protocol
  family carries after the same set of hosts leaves, with and without the
  chance to sign off.
* **Extrema freshness** — static gossip max versus the freshness-limited
  `ExtremaReset` after the host holding the maximum departs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.render import render_table
from repro.baselines import ExtremaGossip, ExtremaReset, PushSum
from repro.core import CountSketchReset, GracefulDepartureEvent, PushSumRevert
from repro.environments import UniformEnvironment
from repro.failures import CorrelatedFailure, ExplicitFailure, FailureEvent
from repro.simulator import Simulation
from repro.workloads import uniform_values

__all__ = [
    "DepartureComparisonResult",
    "run_departure_comparison",
    "render_departure_comparison",
    "ExtremaComparisonResult",
    "run_extrema_comparison",
    "render_extrema_comparison",
]


@dataclass
class DepartureComparisonResult:
    """Final errors after a correlated departure, graceful versus silent."""

    n_hosts: int
    rounds: int
    departure_round: int
    #: protocol label → {"silent": error, "graceful": error}
    final_errors: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run_departure_comparison(
    n_hosts: int = 400,
    *,
    rounds: int = 50,
    departure_round: int = 15,
    fraction: float = 0.5,
    seed: int = 0,
) -> DepartureComparisonResult:
    """Compare silent failure against graceful sign-off for three protocols."""
    values = uniform_values(n_hosts, seed=seed)
    model = CorrelatedFailure(fraction, highest=True)
    protocols = {
        "push-sum (static)": lambda: PushSum(),
        "push-sum-revert (lambda=0.1)": lambda: PushSumRevert(0.1),
        "count-sketch-reset": lambda: CountSketchReset(bins=16, bits=18),
    }
    result = DepartureComparisonResult(
        n_hosts=n_hosts, rounds=rounds, departure_round=departure_round
    )
    for label, factory in protocols.items():
        outcomes: Dict[str, float] = {}
        for mode, event in (
            ("silent", FailureEvent(round=departure_round, model=model)),
            ("graceful", GracefulDepartureEvent(round=departure_round, model=model)),
        ):
            protocol = factory()
            host_values = values if protocol.aggregate == "average" else [1.0] * n_hosts
            simulation = Simulation(
                protocol,
                UniformEnvironment(n_hosts),
                host_values,
                seed=seed,
                mode="exchange",
                events=[event],
            )
            outcomes[mode] = simulation.run(rounds).plateau_error(tail=5)
        result.final_errors[label] = outcomes
    return result


def render_departure_comparison(result: DepartureComparisonResult) -> str:
    """Render the graceful-versus-silent comparison as a table."""
    rows = [
        [label, round(errors["silent"], 3), round(errors["graceful"], 3)]
        for label, errors in result.final_errors.items()
    ]
    header = (
        f"Graceful vs silent departure: {result.n_hosts} hosts, highest-valued half "
        f"leaves at round {result.departure_round}; plateau error over the last 5 of "
        f"{result.rounds} rounds\n"
    )
    return header + render_table(["protocol", "silent failure", "graceful sign-off"], rows)


@dataclass
class ExtremaComparisonResult:
    """Error trajectories of static versus freshness-limited extrema gossip."""

    n_hosts: int
    rounds: int
    departure_round: int
    static_errors: List[float] = field(default_factory=list)
    reset_errors: List[float] = field(default_factory=list)

    def static_final(self) -> float:
        return self.static_errors[-1]

    def reset_final(self) -> float:
        return self.reset_errors[-1]


def run_extrema_comparison(
    n_hosts: int = 300,
    *,
    rounds: int = 60,
    departure_round: int = 15,
    cutoff: int = 12,
    seed: int = 0,
) -> ExtremaComparisonResult:
    """Fail the host holding the maximum and compare the two extrema protocols."""
    values = uniform_values(n_hosts, seed=seed)
    top_host = int(np.argmax(values))
    result = ExtremaComparisonResult(
        n_hosts=n_hosts, rounds=rounds, departure_round=departure_round
    )
    for label, protocol in (
        ("static", ExtremaGossip()),
        ("reset", ExtremaReset(cutoff=cutoff)),
    ):
        simulation = Simulation(
            protocol,
            UniformEnvironment(n_hosts),
            values,
            seed=seed,
            mode="exchange",
            events=[FailureEvent(round=departure_round, model=ExplicitFailure([top_host]))],
        )
        errors = simulation.run(rounds).errors()
        if label == "static":
            result.static_errors = errors
        else:
            result.reset_errors = errors
    return result


def render_extrema_comparison(result: ExtremaComparisonResult) -> str:
    """Render final errors of the extrema comparison."""
    rows = [
        ["extrema-gossip (static)", round(result.static_final(), 3)],
        ["extrema-reset (freshness cutoff)", round(result.reset_final(), 3)],
    ]
    header = (
        f"Extrema after the maximum departs: {result.n_hosts} hosts, the host holding "
        f"the maximum leaves at round {result.departure_round}; error at round {result.rounds}\n"
    )
    return header + render_table(["protocol", "final error"], rows)
