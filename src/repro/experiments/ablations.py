"""Ablations of the design choices called out in DESIGN.md §6.

These are not figures from the paper; they quantify the claims the paper
makes in passing (push/pull halves convergence, adaptive λ halves
reconvergence, Invert-Average is orders of magnitude cheaper than multiple
insertion) so that each claim has a reproducible measurement attached.
Every ablation returns an :class:`AblationResult` with labelled scalar
outcomes plus the raw series where relevant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.render import render_table
from repro.core.cutoff import linear_cutoff
from repro.metrics.bandwidth import protocol_cost_summary
from repro.metrics.convergence import convergence_round, plateau_error, reconvergence_round
from repro.simulator.vectorized import VectorizedCountSketchReset, VectorizedPushSumRevert
from repro.workloads.values import uniform_values

__all__ = [
    "AblationResult",
    "run_push_vs_pushpull_ablation",
    "run_adaptive_lambda_ablation",
    "run_full_transfer_parameter_ablation",
    "run_cutoff_slope_ablation",
    "run_summation_cost_ablation",
]


@dataclass
class AblationResult:
    """Labelled outcomes of one ablation."""

    name: str
    #: variant label → scalar outcome (convergence round, plateau error, bytes, ...)
    outcomes: Dict[str, float] = field(default_factory=dict)
    #: variant label → per-round series, when the ablation produces one.
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """A two-column table of the outcomes."""
        rows = [[label, value] for label, value in self.outcomes.items()]
        title = f"Ablation: {self.name}"
        if self.notes:
            title += f" — {self.notes}"
        return title + "\n" + render_table(["variant", "outcome"], rows)


def _error_series(
    kernel: VectorizedPushSumRevert, rounds: int, failure_round: Optional[int], correlated: bool
) -> List[float]:
    errors: List[float] = []
    for round_index in range(rounds):
        if failure_round is not None and round_index == failure_round:
            if correlated:
                kernel.fail_highest_fraction(0.5)
            else:
                kernel.fail_random_fraction(0.5)
        kernel.step()
        errors.append(kernel.error())
    return errors


def run_push_vs_pushpull_ablation(
    n_hosts: int = 2000, *, rounds: int = 40, threshold: float = 1.0, seed: int = 0
) -> AblationResult:
    """Push versus push/pull convergence time for static Push-Sum (λ=0).

    The paper (after Karp et al.) states push/pull roughly halves the
    initial convergence time; the outcome is the first round at which the
    error drops below ``threshold``.
    """
    values = uniform_values(n_hosts, seed=seed)
    result = AblationResult(
        name="push vs push/pull",
        notes=f"{n_hosts} hosts, rounds to error <= {threshold}",
    )
    for mode in ("push", "pushpull"):
        kernel = VectorizedPushSumRevert(values, 0.0, mode=mode, seed=seed)
        errors = _error_series(kernel, rounds, None, False)
        result.series[mode] = errors
        converged = convergence_round(errors, threshold)
        result.outcomes[mode] = float(converged) if converged is not None else float("nan")
    return result


def run_adaptive_lambda_ablation(
    n_hosts: int = 2000,
    *,
    rounds: int = 60,
    failure_round: int = 20,
    reversion: float = 0.05,
    threshold: float = 5.0,
    seed: int = 0,
) -> AblationResult:
    """Fixed λ versus indegree-adaptive λ/2-per-message reversion (push mode).

    Outcome per variant: rounds after the correlated failure needed to bring
    the error back under ``threshold`` (NaN = never within the horizon).
    """
    values = uniform_values(n_hosts, seed=seed)
    result = AblationResult(
        name="fixed vs adaptive reversion",
        notes=f"lambda={reversion}, correlated failure at round {failure_round}",
    )
    for label, adaptive in (("fixed", False), ("adaptive", True)):
        kernel = VectorizedPushSumRevert(
            values, reversion, mode="push", adaptive=adaptive, seed=seed
        )
        errors = _error_series(kernel, rounds, failure_round, True)
        result.series[label] = errors
        recovered = reconvergence_round(errors, threshold, disturbance_round=failure_round)
        result.outcomes[label] = float(recovered) if recovered is not None else float("nan")
    return result


def run_full_transfer_parameter_ablation(
    n_hosts: int = 2000,
    *,
    rounds: int = 60,
    failure_round: int = 20,
    reversion: float = 0.1,
    parcel_counts: Sequence[int] = (1, 2, 4, 8),
    history_lengths: Sequence[int] = (1, 3, 6),
    seed: int = 0,
) -> AblationResult:
    """Plateau error of Full-Transfer as a function of N (parcels) and T (history)."""
    values = uniform_values(n_hosts, seed=seed)
    result = AblationResult(
        name="full-transfer parcels/history sweep",
        notes=f"lambda={reversion}, plateau error after correlated failure",
    )
    for parcels in parcel_counts:
        for history in history_lengths:
            kernel = VectorizedPushSumRevert(
                values,
                reversion,
                mode="full-transfer",
                parcels=parcels,
                history=history,
                seed=seed,
            )
            errors = _error_series(kernel, rounds, failure_round, True)
            label = f"N={parcels}, T={history}"
            result.series[label] = errors
            result.outcomes[label] = plateau_error(errors, tail=5)
    return result


def run_cutoff_slope_ablation(
    n_hosts: int = 2000,
    *,
    rounds: int = 40,
    failure_round: int = 20,
    intercepts: Sequence[float] = (4.0, 7.0, 12.0),
    slopes: Sequence[float] = (0.25,),
    bins: int = 32,
    bits: int = 18,
    seed: int = 0,
) -> AblationResult:
    """Count-Sketch-Reset recovery and stability versus the cutoff parameters.

    Too small an intercept expires bits that are still being sourced
    (underestimation before any failure); too large an intercept delays
    recovery after the failure.  Outcomes are the post-failure plateau
    errors; the pre-failure plateau is recorded in the series.
    """
    result = AblationResult(
        name="freshness cutoff sweep",
        notes=f"{n_hosts} hosts, 50% random failure at round {failure_round}",
    )
    for intercept in intercepts:
        for slope in slopes:
            cutoff = linear_cutoff(intercept, slope)
            kernel = VectorizedCountSketchReset(
                n_hosts, bins=bins, bits=bits, cutoff=cutoff, seed=seed
            )
            errors: List[float] = []
            for round_index in range(rounds):
                if round_index == failure_round:
                    kernel.fail_random_fraction(0.5)
                kernel.step()
                errors.append(kernel.error())
            label = f"f(k)={intercept:g}+{slope:g}k"
            result.series[label] = errors
            result.outcomes[label] = plateau_error(errors, tail=5)
    return result


def run_summation_cost_ablation(
    *,
    value_range: int = 1000,
    bins: int = 64,
    bits: int = 24,
    counter_bytes: int = 2,
    simultaneous_sums: int = 10,
) -> AblationResult:
    """Per-round bandwidth of Invert-Average versus multiple-insertion summation.

    Multiple insertion needs a sketch wide enough for the *sum* (its bit
    width grows with log2 of the value range) and ships the whole sketch for
    every summation; Invert-Average ships one sketch (amortised over all
    simultaneous sums) plus two floats per sum.
    """
    # A *dynamic* multiple-insertion summation needs the same freshness
    # counters as Count-Sketch-Reset, over a sketch wide enough for the sum
    # (log2(value_range) extra bit positions), and it ships that full width
    # for every summation being maintained.
    sum_bits = bits + int(np.ceil(np.log2(max(2, value_range))))
    multiple_insertion = protocol_cost_summary(
        name="multiple-insertion summation",
        bins=bins,
        bits=sum_bits,
        counter_bytes=counter_bytes,
    )
    sketch_half = protocol_cost_summary(
        name="count-sketch-reset (shared)",
        bins=bins,
        bits=bits,
        counter_bytes=counter_bytes,
    )
    average_half = protocol_cost_summary(name="push-sum-revert", mass_values=2)
    result = AblationResult(
        name="summation bandwidth",
        notes=f"{simultaneous_sums} simultaneous sums, values up to {value_range}",
    )
    result.outcomes["multiple insertion (per sum)"] = float(multiple_insertion.bytes_per_round)
    invert_per_sum = sketch_half.amortized_bytes(simultaneous_sums) + average_half.bytes_per_round
    result.outcomes["invert-average (per sum, sketch amortised)"] = float(invert_per_sum)
    result.outcomes["ratio"] = float(multiple_insertion.bytes_per_round / invert_per_sum)
    return result
