"""Run every experiment and render a combined text report.

Two profiles are provided:

* ``quick`` — small populations and truncated traces; finishes in a couple
  of minutes and is what the benchmark suite and CI exercise;
* ``full`` — larger populations (still below the paper's 100 000 hosts; see
  DESIGN.md §4) and full-length traces for all three datasets.

Since the declarative scenario API landed, the profiles are defined as
:class:`~repro.api.ScenarioSpec` grids (:data:`SCENARIO_PROFILES`): each
figure's engine-level scenario is written down once as plain data, and the
keyword dicts the vectorised figure runners consume (:data:`PROFILES`)
derive their shared numbers — population, rounds, sketch geometry — from
those specs.  :func:`scenario_specs` and :func:`lambda_sweep` expose the
same definitions to the CLI's ``run``/``sweep`` subcommands and to tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.sweep import Sweep
from repro.experiments.ablations import (
    run_adaptive_lambda_ablation,
    run_cutoff_slope_ablation,
    run_full_transfer_parameter_ablation,
    run_push_vs_pushpull_ablation,
    run_summation_cost_ablation,
)
from repro.experiments.fig6_counter_cdf import render_fig6, run_fig6
from repro.experiments.fig8_uncorrelated import DEFAULT_LAMBDAS, render_fig8, run_fig8
from repro.experiments.fig9_counting_failure import render_fig9, run_fig9
from repro.experiments.fig10_correlated import render_fig10, run_fig10
from repro.experiments.fig11_traces import render_fig11, run_fig11

__all__ = [
    "ExperimentReport",
    "run_all_experiments",
    "PROFILES",
    "SCENARIO_PROFILES",
    "scenario_specs",
    "lambda_sweep",
]

#: The round at which the paper's failure figures remove half the hosts.
FAILURE_ROUND = 20

_HALF_UNCORRELATED = {
    "event": "failure",
    "round": FAILURE_ROUND,
    "model": "uncorrelated",
    "fraction": 0.5,
}
_HALF_CORRELATED = {
    "event": "failure",
    "round": FAILURE_ROUND,
    "model": "correlated",
    "fraction": 0.5,
    "highest": True,
}

#: Engine-level scenario definitions per profile — the declarative source of
#: truth for the population sizes and round counts used everywhere below.
SCENARIO_PROFILES: Dict[str, Dict[str, ScenarioSpec]] = {
    "quick": {
        "fig8": ScenarioSpec(
            name="fig8-uncorrelated-failure",
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.01},
            n_hosts=2000,
            rounds=60,
            events=(_HALF_UNCORRELATED,),
        ),
        "fig9": ScenarioSpec(
            name="fig9-counting-failure",
            protocol="count-sketch-reset",
            protocol_params={"bins": 16, "bits": 20, "cutoff": "default"},
            workload="constant",
            n_hosts=2000,
            rounds=40,
            events=(_HALF_UNCORRELATED,),
        ),
        "fig10": ScenarioSpec(
            name="fig10-correlated-failure",
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=2000,
            rounds=60,
            events=(_HALF_CORRELATED,),
        ),
        "fig11": ScenarioSpec(
            name="fig11-trace-dataset-1",
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.01},
            environment="trace",
            environment_params={"dataset": 1},
            workload_params={"seed": 1},
            n_hosts=9,
            rounds=12 * 120,  # 12 hours of 30-second rounds
            group_relative=True,
        ),
    },
    "full": {
        "fig8": ScenarioSpec(
            name="fig8-uncorrelated-failure",
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.01},
            n_hosts=50000,
            rounds=60,
            events=(_HALF_UNCORRELATED,),
        ),
        "fig9": ScenarioSpec(
            name="fig9-counting-failure",
            protocol="count-sketch-reset",
            protocol_params={"bins": 32, "bits": 20, "cutoff": "default"},
            workload="constant",
            n_hosts=20000,
            rounds=40,
            events=(_HALF_UNCORRELATED,),
        ),
        "fig10": ScenarioSpec(
            name="fig10-correlated-failure",
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.1},
            n_hosts=50000,
            rounds=60,
            events=(_HALF_CORRELATED,),
        ),
        "fig11": ScenarioSpec(
            name="fig11-trace-dataset-1",
            protocol="push-sum-revert",
            protocol_params={"reversion": 0.01},
            environment="trace",
            environment_params={"dataset": 1},
            workload_params={"seed": 1},
            n_hosts=9,
            rounds=90 * 120,  # the full 90-hour dataset-1 trace
            group_relative=True,
        ),
    },
}

#: Keyword dicts consumed by the vectorised figure runners.  Populations and
#: round counts come from the scenario specs above so the two views of each
#: profile cannot drift apart; sketch-CDF (fig6) and multi-dataset trace
#: (fig11) settings have no engine-level counterpart and stay literal.
PROFILES: Dict[str, Dict[str, dict]] = {
    "quick": {
        "fig6": {"sizes": (500, 2000), "bins": 16, "bits": 18, "convergence_rounds": 25},
        "fig8": {
            "n_hosts": SCENARIO_PROFILES["quick"]["fig8"].n_hosts,
            "rounds": SCENARIO_PROFILES["quick"]["fig8"].rounds,
        },
        "fig9": {
            "n_hosts": SCENARIO_PROFILES["quick"]["fig9"].n_hosts,
            "rounds": SCENARIO_PROFILES["quick"]["fig9"].rounds,
            "bins": SCENARIO_PROFILES["quick"]["fig9"].protocol_params["bins"],
        },
        "fig10": {
            "n_hosts": SCENARIO_PROFILES["quick"]["fig10"].n_hosts,
            "rounds": SCENARIO_PROFILES["quick"]["fig10"].rounds,
        },
        "fig11": {"datasets": (1,), "max_hours": 12.0, "bins": 16, "bits": 14},
    },
    "full": {
        "fig6": {"sizes": (1000, 10000, 50000), "bins": 32, "bits": 22, "convergence_rounds": 35},
        "fig8": {
            "n_hosts": SCENARIO_PROFILES["full"]["fig8"].n_hosts,
            "rounds": SCENARIO_PROFILES["full"]["fig8"].rounds,
        },
        "fig9": {
            "n_hosts": SCENARIO_PROFILES["full"]["fig9"].n_hosts,
            "rounds": SCENARIO_PROFILES["full"]["fig9"].rounds,
            "bins": SCENARIO_PROFILES["full"]["fig9"].protocol_params["bins"],
        },
        "fig10": {
            "n_hosts": SCENARIO_PROFILES["full"]["fig10"].n_hosts,
            "rounds": SCENARIO_PROFILES["full"]["fig10"].rounds,
        },
        "fig11": {"datasets": (1, 2, 3), "max_hours": None, "bins": 64, "bits": 16},
    },
}


def scenario_specs(profile: str = "quick") -> Dict[str, ScenarioSpec]:
    """The engine-level scenario specs of ``profile`` (figure name → spec)."""
    if profile not in SCENARIO_PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of {sorted(SCENARIO_PROFILES)}"
        )
    return dict(SCENARIO_PROFILES[profile])


def lambda_sweep(profile: str = "quick", *, figure: str = "fig10", seeds: int = 1) -> Sweep:
    """The paper's reversion-constant sweep for a failure figure, as a grid.

    Expands ``figure``'s scenario over λ ∈ {0, 0.001, 0.01, 0.1, 0.5} (and
    optionally several seeds), ready for
    :class:`~repro.api.SweepRunner`.
    """
    specs = scenario_specs(profile)
    if figure not in ("fig8", "fig10"):
        raise ValueError(f"lambda_sweep supports fig8 and fig10, got {figure!r}")
    axes = {"protocol_params.reversion": list(DEFAULT_LAMBDAS)}
    if seeds > 1:
        axes["seed"] = list(range(seeds))
    return Sweep.over(specs[figure], **axes)


_FIGURE_SECTION = re.compile(r"^fig(\d+)$")


def _section_order(name: str):
    """Sort key placing figure sections in numeric order, then the rest."""
    match = _FIGURE_SECTION.match(name)
    if match:
        return (0, int(match.group(1)), name)
    return (1, 0, name)


@dataclass
class ExperimentReport:
    """Results and rendered text for every experiment that was run."""

    profile: str
    results: Dict[str, object] = field(default_factory=dict)
    rendered: Dict[str, str] = field(default_factory=dict)

    def section_names(self) -> List[str]:
        """Rendered section names, figures in numeric order (fig6 before fig10)."""
        return sorted(self.rendered, key=_section_order)

    def text(self) -> str:
        """The full report as one string (what the CLI prints)."""
        sections: List[str] = [f"# Experiment report (profile: {self.profile})"]
        for name in self.section_names():
            sections.append(f"\n## {name}\n\n{self.rendered[name]}")
        return "\n".join(sections)


def run_all_experiments(
    profile: str = "quick",
    *,
    seed: int = 0,
    only: Optional[List[str]] = None,
    include_ablations: bool = True,
    backend: str = "vectorized",
    store=None,
) -> ExperimentReport:
    """Run the selected experiments and return their results plus rendered text.

    Parameters
    ----------
    profile:
        ``"quick"`` or ``"full"`` (see :data:`PROFILES`).
    only:
        Restrict to a subset of experiment names (e.g. ``["fig8", "fig10"]``).
    include_ablations:
        Also run the DESIGN.md §6 ablations (cheap; included by default).
    backend:
        Execution backend for the uniform-gossip figures (fig8/9/10):
        ``"vectorized"`` (default), ``"agent"`` or ``"auto"``.  Fig 6 reads
        raw kernel state and always runs vectorised; Fig 11 replays contact
        traces and always runs on the agent engine.
    store:
        Optional :class:`repro.store.ResultStore`; the scenario-backed
        figures (fig8/9/10) then serve unchanged curves from the cache, so
        regenerating the report after touching one protocol re-simulates
        only the affected figures.  Fig 6 (raw kernel state) and Fig 11
        (trace replay outside the spec layer) always execute.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}")
    config = PROFILES[profile]
    selected = set(only) if only else None

    def wanted(name: str) -> bool:
        return selected is None or name in selected

    report = ExperimentReport(profile=profile)

    if wanted("fig6"):
        result = run_fig6(seed=seed, **config["fig6"])
        report.results["fig6"] = result
        report.rendered["fig6"] = render_fig6(result)
    if wanted("fig8"):
        result = run_fig8(seed=seed, backend=backend, store=store, **config["fig8"])
        report.results["fig8"] = result
        report.rendered["fig8"] = render_fig8(result)
    if wanted("fig9"):
        result = run_fig9(seed=seed, backend=backend, store=store, **config["fig9"])
        report.results["fig9"] = result
        report.rendered["fig9"] = render_fig9(result)
    if wanted("fig10"):
        result = run_fig10(seed=seed, backend=backend, store=store, **config["fig10"])
        report.results["fig10"] = result
        report.rendered["fig10"] = render_fig10(result)
    if wanted("fig11"):
        result = run_fig11(seed=seed, **config["fig11"])
        report.results["fig11"] = result
        report.rendered["fig11"] = render_fig11(result)

    if include_ablations and (selected is None or "ablations" in selected):
        ablations = {
            "push-vs-pushpull": run_push_vs_pushpull_ablation(seed=seed),
            "adaptive-lambda": run_adaptive_lambda_ablation(seed=seed),
            "full-transfer-parameters": run_full_transfer_parameter_ablation(seed=seed),
            "cutoff-slope": run_cutoff_slope_ablation(seed=seed),
            "summation-cost": run_summation_cost_ablation(),
        }
        report.results["ablations"] = ablations
        report.rendered["ablations"] = "\n\n".join(
            ablation.render() for ablation in ablations.values()
        )
    return report
