"""Run every experiment and render a combined text report.

Two profiles are provided:

* ``quick`` — small populations and truncated traces; finishes in a couple
  of minutes and is what the benchmark suite and CI exercise;
* ``full`` — larger populations (still below the paper's 100 000 hosts; see
  DESIGN.md §4) and full-length traces for all three datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.ablations import (
    run_adaptive_lambda_ablation,
    run_cutoff_slope_ablation,
    run_full_transfer_parameter_ablation,
    run_push_vs_pushpull_ablation,
    run_summation_cost_ablation,
)
from repro.experiments.fig6_counter_cdf import render_fig6, run_fig6
from repro.experiments.fig8_uncorrelated import render_fig8, run_fig8
from repro.experiments.fig9_counting_failure import render_fig9, run_fig9
from repro.experiments.fig10_correlated import render_fig10, run_fig10
from repro.experiments.fig11_traces import render_fig11, run_fig11

__all__ = ["ExperimentReport", "run_all_experiments", "PROFILES"]

#: Named configuration profiles.
PROFILES: Dict[str, Dict[str, dict]] = {
    "quick": {
        "fig6": {"sizes": (500, 2000), "bins": 16, "bits": 18, "convergence_rounds": 25},
        "fig8": {"n_hosts": 2000, "rounds": 60},
        "fig9": {"n_hosts": 2000, "rounds": 40, "bins": 16},
        "fig10": {"n_hosts": 2000, "rounds": 60},
        "fig11": {"datasets": (1,), "max_hours": 12.0, "bins": 16, "bits": 14},
    },
    "full": {
        "fig6": {"sizes": (1000, 10000, 50000), "bins": 32, "bits": 22, "convergence_rounds": 35},
        "fig8": {"n_hosts": 50000, "rounds": 60},
        "fig9": {"n_hosts": 20000, "rounds": 40, "bins": 32},
        "fig10": {"n_hosts": 50000, "rounds": 60},
        "fig11": {"datasets": (1, 2, 3), "max_hours": None, "bins": 64, "bits": 16},
    },
}


@dataclass
class ExperimentReport:
    """Results and rendered text for every experiment that was run."""

    profile: str
    results: Dict[str, object] = field(default_factory=dict)
    rendered: Dict[str, str] = field(default_factory=dict)

    def text(self) -> str:
        """The full report as one string (what the CLI prints)."""
        sections: List[str] = [f"# Experiment report (profile: {self.profile})"]
        for name in sorted(self.rendered):
            sections.append(f"\n## {name}\n\n{self.rendered[name]}")
        return "\n".join(sections)


def run_all_experiments(
    profile: str = "quick",
    *,
    seed: int = 0,
    only: Optional[List[str]] = None,
    include_ablations: bool = True,
) -> ExperimentReport:
    """Run the selected experiments and return their results plus rendered text.

    Parameters
    ----------
    profile:
        ``"quick"`` or ``"full"`` (see :data:`PROFILES`).
    only:
        Restrict to a subset of experiment names (e.g. ``["fig8", "fig10"]``).
    include_ablations:
        Also run the DESIGN.md §6 ablations (cheap; included by default).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}")
    config = PROFILES[profile]
    selected = set(only) if only else None

    def wanted(name: str) -> bool:
        return selected is None or name in selected

    report = ExperimentReport(profile=profile)

    if wanted("fig6"):
        result = run_fig6(seed=seed, **config["fig6"])
        report.results["fig6"] = result
        report.rendered["fig6"] = render_fig6(result)
    if wanted("fig8"):
        result = run_fig8(seed=seed, **config["fig8"])
        report.results["fig8"] = result
        report.rendered["fig8"] = render_fig8(result)
    if wanted("fig9"):
        result = run_fig9(seed=seed, **config["fig9"])
        report.results["fig9"] = result
        report.rendered["fig9"] = render_fig9(result)
    if wanted("fig10"):
        result = run_fig10(seed=seed, **config["fig10"])
        report.results["fig10"] = result
        report.rendered["fig10"] = render_fig10(result)
    if wanted("fig11"):
        result = run_fig11(seed=seed, **config["fig11"])
        report.results["fig11"] = result
        report.rendered["fig11"] = render_fig11(result)

    if include_ablations and (selected is None or "ablations" in selected):
        ablations = {
            "push-vs-pushpull": run_push_vs_pushpull_ablation(seed=seed),
            "adaptive-lambda": run_adaptive_lambda_ablation(seed=seed),
            "full-transfer-parameters": run_full_transfer_parameter_ablation(seed=seed),
            "cutoff-slope": run_cutoff_slope_ablation(seed=seed),
            "summation-cost": run_summation_cost_ablation(),
        }
        report.results["ablations"] = ablations
        report.rendered["ablations"] = "\n\n".join(
            ablation.render() for ablation in ablations.values()
        )
    return report
