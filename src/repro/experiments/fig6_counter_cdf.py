"""Figure 6: distribution of Count-Sketch-Reset freshness counters.

The paper simulates fully converged Count-Sketch-Reset networks of 1 000,
10 000 and 100 000 hosts and plots, for each bit index k, the CDF of the
counter values N[·][k] across the network.  Two observations drive the
protocol design:

* the distributions are essentially independent of the network size (so a
  counter cutoff need not know n);
* the high-probability upper bound of the distribution grows linearly in
  the bit index, fitted as f(k) ≈ 7 + k/4.

This experiment reproduces both: it collects the per-bit counter CDFs for
several network sizes and fits the linear bound, reporting the fitted
intercept and slope next to the paper's 7 and 0.25.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import cdf_at
from repro.analysis.cutoff_fit import CutoffFit, fit_linear_cutoff
from repro.analysis.render import render_table
from repro.api.backends import BACKENDS
from repro.api.spec import ScenarioSpec

__all__ = ["Fig6Result", "run_fig6", "render_fig6"]


@dataclass
class Fig6Result:
    """Per-size, per-bit counter distributions plus the fitted linear cutoff."""

    sizes: Tuple[int, ...]
    bins: int
    bits: int
    convergence_rounds: int
    seed: int
    #: size → bit index → observed finite counter values.
    counters: Dict[int, Dict[int, np.ndarray]] = field(default_factory=dict)
    #: size → fitted linear bound for that size.
    fits: Dict[int, CutoffFit] = field(default_factory=dict)
    #: fit pooled over all sizes (the analogue of the paper's single f(k)).
    pooled_fit: CutoffFit = None  # type: ignore[assignment]

    def cdf(self, size: int, bit_index: int, points: Sequence[float]) -> np.ndarray:
        """The CDF of counter values for ``bit_index`` at network size ``size``."""
        return cdf_at(self.counters[size][bit_index], points)

    def observed_bits(self, size: int) -> List[int]:
        """Bit indices with any finite counter observations at ``size``."""
        return sorted(self.counters[size])


def run_fig6(
    sizes: Sequence[int] = (500, 2000, 8000),
    *,
    bins: int = 32,
    bits: int = 20,
    convergence_rounds: int = 30,
    min_samples: int = 10,
    quantile: float = 0.99,
    seed: int = 0,
) -> Fig6Result:
    """Collect converged counter distributions for several network sizes.

    The per-size kernels are built through the vectorised execution backend
    (:mod:`repro.api.backends`) — this experiment reads raw counter state
    (:meth:`~repro.simulator.vectorized.VectorizedCountSketchReset.counter_values_for_bit`),
    which only the vectorised realisation exposes.
    """
    result = Fig6Result(
        sizes=tuple(int(size) for size in sizes),
        bins=bins,
        bits=bits,
        convergence_rounds=convergence_rounds,
        seed=seed,
    )
    pooled: Dict[int, List[int]] = {}
    vectorized = BACKENDS.get("vectorized")
    for size in result.sizes:
        spec = ScenarioSpec(
            protocol="count-sketch-reset",
            protocol_params={"bins": bins, "bits": bits},
            workload="constant",
            n_hosts=size,
            rounds=convergence_rounds,
            seed=seed,
            backend="vectorized",
            name=f"fig6 n={size}",
        )
        kernel = vectorized.build_kernel(spec)
        kernel.step_many(convergence_rounds)
        per_bit: Dict[int, np.ndarray] = {}
        for bit_index in range(bits):
            values = kernel.counter_values_for_bit(bit_index)
            if values.size:
                per_bit[bit_index] = values
                pooled.setdefault(bit_index, []).extend(int(v) for v in values)
        result.counters[size] = per_bit
        fit_input = {bit: values for bit, values in per_bit.items() if values.size >= min_samples}
        if len(fit_input) >= 2:
            result.fits[size] = fit_linear_cutoff(
                fit_input, probability=quantile, min_samples=min_samples
            )
    result.pooled_fit = fit_linear_cutoff(
        pooled, probability=quantile, min_samples=min_samples
    )
    return result


def render_fig6(result: Fig6Result, *, max_counter: int = 12) -> str:
    """Render per-bit CDFs (one block per network size) plus the fitted cutoff."""
    points = list(range(max_counter + 1))
    blocks: List[str] = []
    for size in result.sizes:
        rows = []
        for bit_index in result.observed_bits(size):
            cdf_values = result.cdf(size, bit_index, points)
            rows.append([f"bit {bit_index}"] + [round(float(p), 3) for p in cdf_values])
        headers = [f"{size} hosts"] + [f"<= {point}" for point in points]
        blocks.append(render_table(headers, rows))
    fit_rows = []
    for size, fit in result.fits.items():
        fit_rows.append([f"{size} hosts", round(fit.intercept, 2), round(fit.slope, 3)])
    fit_rows.append(
        ["pooled", round(result.pooled_fit.intercept, 2), round(result.pooled_fit.slope, 3)]
    )
    fit_rows.append(["paper f(k)=7+k/4", 7.0, 0.25])
    blocks.append(
        "Fitted high-probability counter bound f(k) = intercept + slope*k:\n"
        + render_table(["network", "intercept", "slope"], fit_rows)
    )
    header = (
        "Figure 6 — bit-counter CDFs of converged Count-Sketch-Reset networks "
        f"({result.bins} bins x {result.bits} bits, {result.convergence_rounds} rounds)\n"
    )
    return header + "\n\n".join(blocks)
