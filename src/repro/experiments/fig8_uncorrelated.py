"""Figure 8: dynamic averaging under uncorrelated failures.

Setup (paper): 100 000 hosts, values uniform on [0, 100), push/pull uniform
gossip; after 20 rounds half the hosts — chosen uniformly at random — are
silently removed; the standard deviation of the hosts' estimates from the
correct average is plotted per round for reversion constants
λ ∈ {0, 0.001, 0.01, 0.1, 0.5}.

Expected shape: because random failures barely move the true average and
remove mass proportionally, *every* λ (including the static protocol λ=0)
converges and stays converged; reversion does no harm when it is not
needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.render import render_series_table
from repro.simulator.vectorized import VectorizedPushSumRevert
from repro.workloads.values import uniform_values

__all__ = ["Fig8Result", "run_fig8", "render_fig8", "DEFAULT_LAMBDAS"]

#: Reversion constants swept in the paper's figure.
DEFAULT_LAMBDAS: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.1, 0.5)


@dataclass
class Fig8Result:
    """Per-λ error series for the uncorrelated-failure experiment."""

    n_hosts: int
    rounds: int
    failure_round: int
    failure_fraction: float
    seed: int
    #: λ → per-round standard deviation from the correct (current) average.
    errors: Dict[float, List[float]] = field(default_factory=dict)
    #: per-round correct average (same for every λ; recorded once).
    truths: List[float] = field(default_factory=list)

    def final_error(self, reversion: float) -> float:
        """Error at the last round for the given λ."""
        return self.errors[reversion][-1]

    def error_at(self, reversion: float, round_index: int) -> float:
        """Error at a specific round for the given λ."""
        return self.errors[reversion][round_index]


def run_fig8(
    n_hosts: int = 4000,
    *,
    rounds: int = 60,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    mode: str = "pushpull",
    seed: int = 0,
) -> Fig8Result:
    """Run the Figure 8 experiment (scaled to ``n_hosts``)."""
    if failure_round >= rounds:
        raise ValueError("failure_round must fall inside the simulated rounds")
    values = uniform_values(n_hosts, seed=seed)
    result = Fig8Result(
        n_hosts=n_hosts,
        rounds=rounds,
        failure_round=failure_round,
        failure_fraction=failure_fraction,
        seed=seed,
    )
    for index, reversion in enumerate(lambdas):
        kernel = VectorizedPushSumRevert(values, reversion, mode=mode, seed=seed)
        errors: List[float] = []
        truths: List[float] = []
        for round_index in range(rounds):
            if round_index == failure_round:
                kernel.fail_random_fraction(failure_fraction)
            kernel.step()
            errors.append(kernel.error())
            truths.append(kernel.truth())
        result.errors[float(reversion)] = errors
        if index == 0:
            result.truths = truths
    return result


def render_fig8(result: Fig8Result, *, every: int = 5) -> str:
    """Render the per-λ error series as an aligned table (one row per round)."""
    rounds_axis = list(range(1, result.rounds + 1))
    series = {f"lambda={reversion:g}": errors for reversion, errors in sorted(result.errors.items())}
    header = (
        f"Figure 8 — uncorrelated failures: {result.n_hosts} hosts, "
        f"{result.failure_fraction:.0%} random hosts removed at round {result.failure_round}\n"
        "Standard deviation from the correct average per gossip round:\n"
    )
    return header + render_series_table("round", rounds_axis, series, every=every)
