"""Figure 8: dynamic averaging under uncorrelated failures.

Setup (paper): 100 000 hosts, values uniform on [0, 100), push/pull uniform
gossip; after 20 rounds half the hosts — chosen uniformly at random — are
silently removed; the standard deviation of the hosts' estimates from the
correct average is plotted per round for reversion constants
λ ∈ {0, 0.001, 0.01, 0.1, 0.5}.

Expected shape: because random failures barely move the true average and
remove mass proportionally, *every* λ (including the static protocol λ=0)
converges and stays converged; reversion does no harm when it is not
needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.render import render_series_table
from repro.api.spec import ScenarioSpec, run_scenario

__all__ = ["Fig8Result", "run_fig8", "render_fig8", "DEFAULT_LAMBDAS", "push_sum_spec"]

#: Reversion constants swept in the paper's figure.
DEFAULT_LAMBDAS: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.1, 0.5)

#: Kernel gossip modes expressed as (protocol, engine-mode) spec fields.
_MODE_TABLE = {
    "pushpull": ("push-sum-revert", "exchange"),
    "push": ("push-sum-revert", "push"),
    "full-transfer": ("push-sum-revert-full-transfer", "push"),
}


def push_sum_spec(
    n_hosts: int,
    rounds: int,
    reversion: float,
    *,
    mode: str = "pushpull",
    parcels: int = 4,
    history: int = 3,
    events: Tuple[dict, ...] = (),
    seed: int = 0,
    backend: str = "vectorized",
    name: str = "",
) -> ScenarioSpec:
    """The declarative scenario behind one Push-Sum(-Revert) figure curve.

    Shared by the Figure 8 and Figure 10 runners so both execute through the
    backend layer (:mod:`repro.api.backends`) instead of instantiating
    kernels by hand.
    """
    if mode not in _MODE_TABLE:
        raise ValueError(f"unknown mode {mode!r}; expected one of {sorted(_MODE_TABLE)}")
    protocol, engine_mode = _MODE_TABLE[mode]
    params: Dict[str, object] = {"reversion": float(reversion)}
    if mode == "full-transfer":
        params.update({"parcels": int(parcels), "history": int(history)})
    return ScenarioSpec(
        protocol=protocol,
        protocol_params=params,
        n_hosts=n_hosts,
        rounds=rounds,
        mode=engine_mode,
        seed=seed,
        events=events,
        backend=backend,
        name=name,
    )


@dataclass
class Fig8Result:
    """Per-λ error series for the uncorrelated-failure experiment."""

    n_hosts: int
    rounds: int
    failure_round: int
    failure_fraction: float
    seed: int
    #: λ → per-round standard deviation from the correct (current) average.
    errors: Dict[float, List[float]] = field(default_factory=dict)
    #: per-round correct average (same for every λ; recorded once).
    truths: List[float] = field(default_factory=list)

    def final_error(self, reversion: float) -> float:
        """Error at the last round for the given λ."""
        return self.errors[reversion][-1]

    def error_at(self, reversion: float, round_index: int) -> float:
        """Error at a specific round for the given λ."""
        return self.errors[reversion][round_index]


def run_fig8(
    n_hosts: int = 4000,
    *,
    rounds: int = 60,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    mode: str = "pushpull",
    seed: int = 0,
    backend: str = "vectorized",
    store=None,
) -> Fig8Result:
    """Run the Figure 8 experiment (scaled to ``n_hosts``).

    Each λ curve is one declarative scenario executed through the backend
    layer (``backend="vectorized"`` by default; pass ``"agent"`` to
    cross-check against the per-host engine at small populations).  With a
    :class:`repro.store.ResultStore`, curves whose spec is unchanged come
    out of the cache instead of re-simulating.
    """
    if failure_round >= rounds:
        raise ValueError("failure_round must fall inside the simulated rounds")
    failure = {
        "event": "failure",
        "round": failure_round,
        "model": "uncorrelated",
        "fraction": failure_fraction,
    }
    result = Fig8Result(
        n_hosts=n_hosts,
        rounds=rounds,
        failure_round=failure_round,
        failure_fraction=failure_fraction,
        seed=seed,
    )
    for index, reversion in enumerate(lambdas):
        spec = push_sum_spec(
            n_hosts,
            rounds,
            float(reversion),
            mode=mode,
            events=(failure,),
            seed=seed,
            backend=backend,
            name=f"fig8 lambda={reversion:g}",
        )
        run = run_scenario(spec, store=store)
        result.errors[float(reversion)] = run.errors()
        if index == 0:
            result.truths = run.truths()
    return result


def render_fig8(result: Fig8Result, *, every: int = 5) -> str:
    """Render the per-λ error series as an aligned table (one row per round)."""
    rounds_axis = list(range(1, result.rounds + 1))
    series = {f"lambda={reversion:g}": errors for reversion, errors in sorted(result.errors.items())}
    header = (
        f"Figure 8 — uncorrelated failures: {result.n_hosts} hosts, "
        f"{result.failure_fraction:.0%} random hosts removed at round {result.failure_round}\n"
        "Standard deviation from the correct average per gossip round:\n"
    )
    return header + render_series_table("round", rounds_axis, series, every=every)
