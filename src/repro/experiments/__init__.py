"""Experiment harness: one module per figure in the paper's evaluation.

Each ``figN_*`` module exposes a ``run_*`` function returning a small
result dataclass (plain series, no plotting dependencies) and a
``render_*`` function that formats the same rows/series the paper's figure
plots as an aligned text table.  :mod:`repro.experiments.runner` ties them
together (and backs the ``python -m repro`` command line), and
:mod:`repro.experiments.ablations` covers the design-choice ablations
called out in DESIGN.md.

Default problem sizes are scaled down from the paper's 100 000-host runs
so that the full suite finishes in minutes on a laptop; every size is a
parameter, and EXPERIMENTS.md records the scaled configuration used for
the committed results.
"""

from repro.experiments.ablations import (
    AblationResult,
    run_adaptive_lambda_ablation,
    run_cutoff_slope_ablation,
    run_full_transfer_parameter_ablation,
    run_push_vs_pushpull_ablation,
    run_summation_cost_ablation,
)
from repro.experiments.fig6_counter_cdf import Fig6Result, render_fig6, run_fig6
from repro.experiments.fig8_uncorrelated import Fig8Result, render_fig8, run_fig8
from repro.experiments.fig9_counting_failure import Fig9Result, render_fig9, run_fig9
from repro.experiments.fig10_correlated import Fig10Result, render_fig10, run_fig10
from repro.experiments.fig11_traces import Fig11Result, render_fig11, run_fig11
from repro.experiments.runner import run_all_experiments

__all__ = [
    "AblationResult",
    "Fig10Result",
    "Fig11Result",
    "Fig6Result",
    "Fig8Result",
    "Fig9Result",
    "render_fig10",
    "render_fig11",
    "render_fig6",
    "render_fig8",
    "render_fig9",
    "run_adaptive_lambda_ablation",
    "run_all_experiments",
    "run_cutoff_slope_ablation",
    "run_fig10",
    "run_fig11",
    "run_fig6",
    "run_fig8",
    "run_fig9",
    "run_full_transfer_parameter_ablation",
    "run_push_vs_pushpull_ablation",
    "run_summation_cost_ablation",
]
