"""Figure 11: dynamic averaging and summation on contact traces.

The paper replays the three CRAWDAD Cambridge/Haggle traces (9, 12 and 41
devices carried by people over several days), with one gossip round every
30 seconds of simulated time.  A host's error is measured against the
aggregate of its *group* — everybody reachable from it over the union of
the edges seen in the last 10 minutes — and plotted hour by hour, with the
average group size overlaid for reference.  Two aggregates are shown per
dataset:

* **dynamic average** — Push-Sum-Revert with λ ∈ {0, 0.001, 0.01}; the
  reversion-enabled variants track the changing group average, while λ = 0
  (static Push-Sum) drifts whenever groups change;
* **dynamic sum (group size)** — Count-Sketch-Reset with 100 identifiers
  per device and the freshness cutoff off / on / slowed; with the cutoff
  the estimate tracks the running group size within roughly half its value,
  while the cutoff-free (static) sketch only ever grows.

This module replays *synthetic* Haggle-like traces (see
:mod:`repro.mobility.synthetic_haggle` and DESIGN.md §4) with the same
device counts and the same experimental procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.render import render_series_table
from repro.core.count_sketch_reset import CountSketchReset
from repro.core.cutoff import default_cutoff, no_decay_cutoff, scaled_cutoff
from repro.core.push_sum_revert import PushSumRevert
from repro.environments.trace import TraceEnvironment
from repro.mobility.synthetic_haggle import haggle_dataset
from repro.mobility.traces import ContactTrace
from repro.simulator.engine import Simulation
from repro.simulator.sparse import TraceCSRTopology
from repro.simulator.vectorized import VectorizedCountSketchReset, VectorizedPushSumRevert
from repro.workloads.values import uniform_values

__all__ = ["Fig11DatasetResult", "Fig11Result", "run_fig11", "render_fig11"]

#: Reversion constants used for the averaging panels.
DEFAULT_AVERAGE_LAMBDAS: Tuple[float, ...] = (0.0, 0.001, 0.01)


def _default_size_variants() -> Dict[str, Callable[[int], float]]:
    """The three cutoff settings of the "dynamic sum" panels."""
    return {
        "reversion off": no_decay_cutoff,
        "reversion on": default_cutoff,
        "reversion slow": scaled_cutoff(2.0),
    }


@dataclass
class Fig11DatasetResult:
    """Hourly series for one dataset (one row of the paper's figure)."""

    dataset: int
    n_devices: int
    trace_name: str
    rounds: int
    round_seconds: float
    hours: List[float] = field(default_factory=list)
    #: hourly mean group size ("Avg Group Size" reference series).
    group_size: List[float] = field(default_factory=list)
    #: label (e.g. "lambda=0.01") → hourly group-relative error of the average.
    average_errors: Dict[str, List[float]] = field(default_factory=dict)
    #: label (e.g. "reversion on") → hourly group-relative error of the size estimate.
    size_errors: Dict[str, List[float]] = field(default_factory=dict)

    def mean_error(self, label: str, *, size: bool = False) -> float:
        """Mean hourly error over the whole trace for one variant."""
        series = self.size_errors[label] if size else self.average_errors[label]
        return float(np.nanmean(series))


@dataclass
class Fig11Result:
    """Results for every dataset replayed."""

    round_seconds: float
    group_window_seconds: float
    identifiers_per_host: int
    bins: int
    bits: int
    seed: int
    datasets: Dict[int, Fig11DatasetResult] = field(default_factory=dict)


def _hourly(series: Sequence[float], rounds_per_hour: int) -> List[float]:
    """Aggregate a per-round series into hourly means (NaN-safe)."""
    values = np.asarray(list(series), dtype=float)
    hourly: List[float] = []
    for start in range(0, values.size, rounds_per_hour):
        block = values[start : start + rounds_per_hour]
        finite = block[np.isfinite(block)]
        hourly.append(float(finite.mean()) if finite.size else float("nan"))
    return hourly


def _run_protocol(
    protocol,
    trace: ContactTrace,
    values: Sequence[float],
    *,
    rounds: int,
    round_seconds: float,
    group_window_seconds: float,
    seed: int,
) -> Tuple[List[float], List[float]]:
    """Run one protocol over the trace; returns per-round (errors, group sizes)."""
    environment = TraceEnvironment(
        trace, round_seconds=round_seconds, group_window_seconds=group_window_seconds
    )
    simulation = Simulation(
        protocol,
        environment,
        values,
        seed=seed,
        mode="exchange",
        group_relative=True,
    )
    result = simulation.run(rounds)
    group_sizes = [
        record.group_sizes if record.group_sizes is not None else float("nan")
        for record in result.rounds
    ]
    return result.errors(), group_sizes


def _run_kernel(
    kernel,
    topology: TraceCSRTopology,
    values: np.ndarray,
    *,
    rounds: int,
    count_aggregate: bool,
) -> Tuple[List[float], List[float]]:
    """Vectorised replay: per-round (group-relative errors, group sizes).

    Mirrors the agent engine's Fig 11 accounting (and the backend's
    ``_group_relative_errors``): each live host is scored against its own
    group's aggregate, groups being the components of the trace's
    10-minute union window intersected with the alive set.
    """
    errors: List[float] = []
    group_sizes: List[float] = []
    for t in range(rounds):
        topology.set_round(t)
        kernel.step()
        alive_idx = np.nonzero(kernel.alive)[0]
        if alive_idx.size == 0:
            errors.append(float("nan"))
            group_sizes.append(float("nan"))
            continue
        labels, sizes = topology.component_labels(kernel.alive)
        live_labels = labels[alive_idx]
        if count_aggregate:
            group_truth = sizes.astype(float)
        else:
            sums = np.bincount(live_labels, weights=values[alive_idx], minlength=sizes.size)
            group_truth = sums / np.maximum(sizes, 1)
        deltas = kernel.estimates() - group_truth[live_labels]
        errors.append(float(np.sqrt(np.mean(deltas**2))))
        group_sizes.append(float(sizes.mean()) if sizes.size else float("nan"))
    return errors, group_sizes


def run_fig11(
    datasets: Sequence[int] = (1, 2),
    *,
    average_lambdas: Sequence[float] = DEFAULT_AVERAGE_LAMBDAS,
    size_variants: Optional[Dict[str, Callable[[int], float]]] = None,
    max_hours: Optional[float] = 24.0,
    round_seconds: float = 30.0,
    group_window_seconds: float = 600.0,
    bins: int = 32,
    bits: int = 16,
    identifiers_per_host: int = 100,
    seed: int = 0,
    backend: str = "agent",
) -> Fig11Result:
    """Replay the trace-driven experiment for the requested datasets.

    ``max_hours`` truncates each trace (``None`` replays it in full — the
    configuration used for the committed EXPERIMENTS.md numbers is recorded
    there).  ``backend="vectorized"`` replays the same traces on the NumPy
    kernels over a :class:`~repro.simulator.sparse.TraceCSRTopology` —
    statistically equivalent but not bit-identical to the agent default
    (DESIGN.md §7, §12), and the route for large synthetic device counts.
    """
    if backend not in ("agent", "vectorized"):
        raise ValueError(f"unknown fig11 backend {backend!r}; expected 'agent' or 'vectorized'")
    variants = size_variants if size_variants is not None else _default_size_variants()
    result = Fig11Result(
        round_seconds=round_seconds,
        group_window_seconds=group_window_seconds,
        identifiers_per_host=identifiers_per_host,
        bins=bins,
        bits=bits,
        seed=seed,
    )
    rounds_per_hour = max(1, int(round(3600.0 / round_seconds)))
    for dataset in datasets:
        trace = haggle_dataset(dataset)
        total_rounds = int(trace.duration // round_seconds) + 1
        if max_hours is not None:
            total_rounds = min(total_rounds, int(max_hours * rounds_per_hour))
        values = uniform_values(trace.n_devices, seed=seed + dataset)
        dataset_result = Fig11DatasetResult(
            dataset=dataset,
            n_devices=trace.n_devices,
            trace_name=trace.name,
            rounds=total_rounds,
            round_seconds=round_seconds,
        )

        topology: Optional[TraceCSRTopology] = None
        if backend == "vectorized":
            topology = TraceCSRTopology(
                trace,
                round_seconds=round_seconds,
                group_window_seconds=group_window_seconds,
            )
        values_array = np.asarray(list(values), dtype=float)

        group_size_series: Optional[List[float]] = None
        for reversion in average_lambdas:
            if topology is not None:
                kernel = VectorizedPushSumRevert(
                    values_array,
                    float(reversion),
                    mode="pushpull",
                    topology=topology,
                    seed=seed,
                )
                errors, group_sizes = _run_kernel(
                    kernel, topology, values_array, rounds=total_rounds, count_aggregate=False
                )
            else:
                errors, group_sizes = _run_protocol(
                    PushSumRevert(float(reversion)),
                    trace,
                    values,
                    rounds=total_rounds,
                    round_seconds=round_seconds,
                    group_window_seconds=group_window_seconds,
                    seed=seed,
                )
            dataset_result.average_errors[f"lambda={reversion:g}"] = _hourly(
                errors, rounds_per_hour
            )
            if group_size_series is None:
                group_size_series = group_sizes

        for label, cutoff in variants.items():
            if topology is not None:
                kernel = VectorizedCountSketchReset(
                    trace.n_devices,
                    bins=bins,
                    bits=bits,
                    cutoff=cutoff,
                    identifiers_per_host=identifiers_per_host,
                    pull=True,
                    topology=topology,
                    seed=seed,
                )
                errors, group_sizes = _run_kernel(
                    kernel, topology, values_array, rounds=total_rounds, count_aggregate=True
                )
            else:
                protocol = CountSketchReset(
                    bins,
                    bits,
                    cutoff=cutoff,
                    identifiers_per_host=identifiers_per_host,
                )
                errors, group_sizes = _run_protocol(
                    protocol,
                    trace,
                    values,
                    rounds=total_rounds,
                    round_seconds=round_seconds,
                    group_window_seconds=group_window_seconds,
                    seed=seed,
                )
            dataset_result.size_errors[label] = _hourly(errors, rounds_per_hour)
            if group_size_series is None:
                group_size_series = group_sizes

        dataset_result.group_size = _hourly(group_size_series or [], rounds_per_hour)
        dataset_result.hours = [float(hour) for hour in range(len(dataset_result.group_size))]
        result.datasets[int(dataset)] = dataset_result
    return result


def render_fig11(result: Fig11Result, *, every: int = 2) -> str:
    """Render one averaging table and one size table per dataset."""
    blocks: List[str] = []
    for dataset, data in sorted(result.datasets.items()):
        average_series = {"avg group size": data.group_size}
        average_series.update(data.average_errors)
        blocks.append(
            (
                f"Figure 11 — dataset {dataset} ({data.n_devices} devices, "
                f"{data.trace_name}): dynamic average, hourly std-dev from the group average\n"
            )
            + render_series_table("hour", data.hours, average_series, every=every)
        )
        size_series = {"avg group size": data.group_size}
        size_series.update(data.size_errors)
        blocks.append(
            (
                f"\nFigure 11 — dataset {dataset}: dynamic size/sum "
                f"({result.identifiers_per_host} identifiers per device), hourly std-dev from the group size\n"
            )
            + render_series_table("hour", data.hours, size_series, every=every)
        )
    return "\n\n".join(blocks)
